"""Advanced attack pattern library.

Beyond the paper's S1-S4 and Fig. 7 patterns, the motivation section
leans on two attack families from its citations that any Row Hammer
defense must face:

* **Many-sided hammering** (TRRespass, Frigo et al. S&P 2020 -- the
  paper's reference [16], source of the 50K threshold): instead of one
  or two aggressors, N aggressors are cycled so that in-DRAM TRR
  samplers with few tracking slots are overwhelmed.  Against Graphene
  this is exactly the regime Inequality 1 is sized for: as long as
  N <= N_entry the table tracks every aggressor.  The sized attack
  :func:`graphene_saturation_rows` pushes this to the limit --
  ``N_entry + 1`` aggressors -- which still cannot win because each
  aggressor then gets at most ``W/(N_entry+1) < T`` ACTs.
* **Assisted/non-adjacent patterns** (Kim et al. ISCA 2020, reference
  [28]): aggressor pairs at distance 2 from the victim combined with
  adjacent pairs ("half-double"-style), defeating defenses that only
  refresh +-1 neighborhoods.  :func:`assisted_double_sided_rows`
  produces the pattern; the non-adjacent experiment shows +-1 Graphene
  losing and +-2 Graphene winning.

All generators yield plain row iterators for
:func:`repro.workloads.synthetic.synthetic_events` pacing.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator

from ..core.config import GrapheneConfig

__all__ = [
    "many_sided_rows",
    "graphene_saturation_rows",
    "assisted_double_sided_rows",
    "decoy_flood_rows",
]


def many_sided_rows(
    sides: int,
    victim: int | None = None,
    rows_per_bank: int = 65536,
    seed: int = 0,
) -> Iterator[int]:
    """TRRespass-style N-sided pattern around one victim region.

    Picks ``sides`` aggressors as the rows sandwiching ``sides // 2``
    victims (a..v1..a..v2..a layout) and cycles them at full rate.
    ``sides=2`` degenerates to the classic double-sided hammer.
    """
    if sides < 1:
        raise ValueError("sides must be >= 1")
    if victim is None:
        victim = random.Random(seed).randrange(
            2 * sides + 2, rows_per_bank - 2 * sides - 2
        )
    # Aggressors at even offsets around the victim: v-1, v+1, v-3, ...
    aggressors = []
    for index in range(sides):
        offset = (index // 2 + 1) * 2 - 1
        aggressors.append(victim - offset if index % 2 == 0 else victim + offset)
    for row in aggressors:
        if not 0 <= row < rows_per_bank:
            raise ValueError("pattern does not fit in the bank")
    return itertools.cycle(aggressors)


def graphene_saturation_rows(
    config: GrapheneConfig, extra: int = 1, seed: int = 0
) -> Iterator[int]:
    """Cycle ``N_entry + extra`` distinct aggressors (table saturation).

    The strongest tracking attack: more concurrent aggressors than
    Graphene has entries.  It cannot succeed -- with ``m > N_entry``
    aggressors sharing the window budget, each receives at most
    ``W/m < W/(N_entry+1) <= T`` ACTs -- but it maximizes table churn
    and spillover growth, making it the right stress test for the
    eviction path.
    """
    count = config.num_entries + extra
    spacing = max(4, config.rows_per_bank // (count + 1))
    rng = random.Random(seed)
    base = rng.randrange(1, max(2, config.rows_per_bank - count * spacing - 1))
    aggressors = [base + i * spacing for i in range(count)]
    if aggressors[-1] >= config.rows_per_bank:
        raise ValueError("bank too small for the saturation pattern")
    return itertools.cycle(aggressors)


def assisted_double_sided_rows(
    victim: int | None = None,
    rows_per_bank: int = 65536,
    near_weight: int = 1,
    far_weight: int = 1,
    seed: int = 0,
) -> Iterator[int]:
    """Adjacent + distance-2 aggressors on one victim (assisted attack).

    Per period the victim's +-1 neighbors fire ``near_weight`` times
    each and its +-2 neighbors ``far_weight`` times each.  Under a
    coupling model with mu_2 > 0 the far aggressors contribute real
    disturbance that +-1-only defenses neither see as dangerous nor
    refresh away.
    """
    if near_weight < 0 or far_weight < 0 or near_weight + far_weight == 0:
        raise ValueError("weights must be non-negative and not both zero")
    if victim is None:
        victim = random.Random(seed).randrange(3, rows_per_bank - 3)
    if not 2 <= victim < rows_per_bank - 2:
        raise ValueError("victim must have +-2 in-range neighbors")
    period = (
        [victim - 1, victim + 1] * near_weight
        + [victim - 2, victim + 2] * far_weight
    )
    return itertools.cycle(period)


def decoy_flood_rows(
    target: int,
    decoys: int = 64,
    target_every: int = 8,
    rows_per_bank: int = 65536,
    seed: int = 0,
) -> Iterator[int]:
    """Hide a hammer inside a flood of one-shot decoy activations.

    Every ``target_every``-th ACT hits the target; the rest are fresh
    decoy rows cycling through a pool of ``decoys``.  Defeats naive
    most-recent / most-frequent heuristics with small tables while the
    target still accrues ``W / target_every`` ACTs per window --
    Misra-Gries tracks it regardless because its guarantee is
    frequency-proportional, not recency-based.
    """
    if not 0 <= target < rows_per_bank:
        raise IndexError("target out of range")
    if target_every < 2:
        raise ValueError("target_every must be >= 2")
    rng = random.Random(seed)
    pool = [
        row
        for row in rng.sample(range(rows_per_bank), decoys + 2)
        if abs(row - target) > 2
    ][:decoys]

    def generate() -> Iterator[int]:
        decoy_cycle = itertools.cycle(pool)
        position = 0
        while True:
            position += 1
            if position % target_every == 0:
                yield target
            else:
                yield next(decoy_cycle)

    return generate()
