"""ACT-stream trace model.

Every workload in this package ultimately produces a time-ordered
stream of :class:`ActEvent` objects -- (time, bank, row) triples naming
DRAM row activations.  That is exactly the granularity every mitigation
scheme in the paper operates at (each is consulted per ACT command),
and the granularity the fault model is defined at, so traces are the
lingua franca between workloads, controller, mitigations and referee.

Helpers here cover pacing (turning abstract access sequences into
timed streams honoring DRAM's maximum per-bank ACT rate), merging
per-bank streams, serializing traces to a simple text format, and
computing the summary statistics that the realistic-workload
substitution is calibrated on (per-bank intensity, per-row maxima).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, NamedTuple, Sequence

from ..dram.timing import DDR4_2400, DramTimings

__all__ = [
    "ActEvent",
    "TraceStats",
    "pace",
    "merge_streams",
    "collect_stats",
    "write_trace",
    "read_trace",
    "take_until",
]


class ActEvent(NamedTuple):
    """One row activation: ``row`` of ``bank`` is opened at ``time_ns``."""

    time_ns: float
    bank: int
    row: int


def pace(
    rows: Iterable[int],
    interval_ns: float,
    bank: int = 0,
    start_ns: float = 0.0,
    timings: DramTimings = DDR4_2400,
    honor_refresh_gaps: bool = True,
) -> Iterator[ActEvent]:
    """Attach timestamps to a row sequence at a fixed ACT interval.

    Args:
        rows: The row addresses, in order.
        interval_ns: Time between consecutive ACTs; must be >= tRC.
        bank: Bank the stream targets.
        start_ns: Timestamp of the first ACT.
        timings: Timing bundle (validates the interval; provides the
            refresh schedule when ``honor_refresh_gaps`` is set).
        honor_refresh_gaps: When True, the stream skips over the tRFC
            blackout after each tREFI boundary, as real command streams
            must -- this is what limits a maximal attacker to ``W``
            ACTs per window rather than ``tREFW / tRC``.
    """
    if interval_ns < timings.trc:
        raise ValueError(
            f"interval {interval_ns}ns violates tRC={timings.trc}ns"
        )
    time_ns = start_ns
    for row in rows:
        if honor_refresh_gaps:
            # If this ACT would land inside the refresh blackout that
            # follows a tREFI boundary, push it past the blackout.
            since_boundary = time_ns % timings.trefi
            if since_boundary < timings.trfc:
                time_ns += timings.trfc - since_boundary
        yield ActEvent(time_ns, bank, row)
        time_ns += interval_ns


def merge_streams(*streams: Iterable[ActEvent]) -> Iterator[ActEvent]:
    """Merge time-sorted per-bank streams into one time-sorted stream."""
    return heapq.merge(*streams, key=lambda event: event.time_ns)


def take_until(
    events: Iterable[ActEvent], end_ns: float
) -> Iterator[ActEvent]:
    """Pass events through until the first one at or past ``end_ns``."""
    for event in events:
        if event.time_ns >= end_ns:
            return
        yield event


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of an ACT trace.

    These two numbers -- per-bank intensity and the per-row maximum
    within a window -- are the properties the paper's "no victim
    refreshes on realistic workloads" result depends on, and the ones
    the synthetic workload profiles are calibrated against.
    """

    total_acts: int
    duration_ns: float
    banks: int
    max_row_acts_per_window: int
    distinct_rows: int

    @property
    def acts_per_second_per_bank(self) -> float:
        if self.duration_ns <= 0 or self.banks == 0:
            return 0.0
        return self.total_acts / self.banks / (self.duration_ns / 1e9)


def collect_stats(
    events: Iterable[ActEvent],
    window_ns: float = DDR4_2400.trefw,
) -> TraceStats:
    """Compute :class:`TraceStats` in one pass (consumes the iterator)."""
    if window_ns <= 0:
        raise ValueError("window_ns must be positive")
    total = 0
    first_ns = None
    last_ns = 0.0
    banks: set[int] = set()
    rows: set[tuple[int, int]] = set()
    window_counts: dict[tuple[int, int, int], int] = {}
    max_row_acts = 0
    for event in events:
        total += 1
        if first_ns is None:
            first_ns = event.time_ns
        last_ns = event.time_ns
        banks.add(event.bank)
        rows.add((event.bank, event.row))
        key = (event.bank, event.row, int(event.time_ns // window_ns))
        count = window_counts.get(key, 0) + 1
        window_counts[key] = count
        if count > max_row_acts:
            max_row_acts = count
    duration = 0.0 if first_ns is None else last_ns - first_ns
    return TraceStats(
        total_acts=total,
        duration_ns=duration,
        banks=len(banks),
        max_row_acts_per_window=max_row_acts,
        distinct_rows=len(rows),
    )


def write_trace(events: Iterable[ActEvent], path: str) -> int:
    """Serialize a trace as ``time_ns bank row`` lines; returns count."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        handle.write("# graphene-repro ACT trace v1: time_ns bank row\n")
        for event in events:
            handle.write(f"{event.time_ns:.3f} {event.bank} {event.row}\n")
            count += 1
    return count


def read_trace(path: str) -> Iterator[ActEvent]:
    """Parse a trace produced by :func:`write_trace`."""
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 'time bank row', "
                    f"got {line!r}"
                )
            yield ActEvent(float(parts[0]), int(parts[1]), int(parts[2]))
