"""Trace validation: check ACT streams against the DRAM contract.

Traces come from generators, files, or external tools; before feeding
one to the simulator it pays to know whether it is *physically
realizable*: time-sorted, per-bank ACT spacing >= tRC, rows within the
bank, and ACT rates within the per-bank and per-rank (tFAW) envelopes.
:func:`validate_trace` streams through once and returns a structured
report; :func:`assert_valid` raises on the first violation (useful in
tests and at CLI trace-load time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..dram.timing import DDR4_2400, DramTimings
from .trace import ActEvent

__all__ = ["TraceViolation", "TraceReport", "validate_trace", "assert_valid"]


@dataclass(frozen=True)
class TraceViolation:
    """One detected contract violation."""

    kind: str
    event_index: int
    detail: str


@dataclass
class TraceReport:
    """Outcome of a validation pass."""

    events: int = 0
    banks: set = field(default_factory=set)
    violations: list[TraceViolation] = field(default_factory=list)
    #: Tightest observed per-bank ACT spacing (ns).
    min_bank_spacing_ns: float = float("inf")

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return (
                f"OK: {self.events} events, {len(self.banks)} banks, "
                f"min bank spacing {self.min_bank_spacing_ns:.1f} ns"
            )
        first = self.violations[0]
        return (
            f"INVALID: {len(self.violations)} violations, first: "
            f"{first.kind} at event {first.event_index} ({first.detail})"
        )


def validate_trace(
    events: Iterable[ActEvent],
    rows_per_bank: int = 65536,
    timings: DramTimings = DDR4_2400,
    max_violations: int = 20,
    tolerance_ns: float = 1e-6,
) -> TraceReport:
    """Stream through a trace collecting contract violations.

    Checks, per event: non-decreasing timestamps, row bounds, per-bank
    tRC spacing, and the rank-level tFAW envelope (at most 4 ACTs in
    any tFAW window across banks).  Stops recording after
    ``max_violations`` (the pass still completes for the counters).
    """
    report = TraceReport()
    last_time = float("-inf")
    last_per_bank: dict[int, float] = {}
    recent: list[float] = []  # last 4 ACT times (rank tFAW window)

    def record(kind: str, index: int, detail: str) -> None:
        if len(report.violations) < max_violations:
            report.violations.append(TraceViolation(kind, index, detail))

    for index, event in enumerate(events):
        report.events += 1
        report.banks.add(event.bank)
        if event.time_ns < last_time - tolerance_ns:
            record(
                "unsorted", index,
                f"t={event.time_ns} after t={last_time}",
            )
        last_time = max(last_time, event.time_ns)
        if not 0 <= event.row < rows_per_bank:
            record("row-range", index, f"row={event.row}")
        previous = last_per_bank.get(event.bank)
        if previous is not None:
            spacing = event.time_ns - previous
            if spacing < report.min_bank_spacing_ns:
                report.min_bank_spacing_ns = spacing
            if spacing < timings.trc - tolerance_ns:
                record(
                    "trc", index,
                    f"bank {event.bank} spacing {spacing:.1f} ns",
                )
        last_per_bank[event.bank] = event.time_ns
        # Rank-level tFAW: the 4th-previous ACT must be >= tFAW ago.
        if len(recent) == 4:
            if event.time_ns - recent[0] < timings.tfaw - tolerance_ns:
                record(
                    "tfaw", index,
                    f"5 ACTs within {event.time_ns - recent[0]:.1f} ns",
                )
            recent.pop(0)
        recent.append(event.time_ns)
    if report.min_bank_spacing_ns == float("inf"):
        report.min_bank_spacing_ns = 0.0
    return report


def assert_valid(
    events: Iterable[ActEvent],
    rows_per_bank: int = 65536,
    timings: DramTimings = DDR4_2400,
) -> TraceReport:
    """Validate and raise ``ValueError`` on any violation."""
    report = validate_trace(events, rows_per_bank, timings)
    if not report.ok:
        raise ValueError(report.summary())
    return report
