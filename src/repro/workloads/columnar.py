"""Columnar ACT traces: the array-backed twin of :mod:`.trace`.

The iterator world (:class:`~repro.workloads.trace.ActEvent` streams)
is the package's lingua franca, but a Python object per ACT is exactly
what makes full-tREFW runs minutes-long.  This module keeps the same
*semantics* in a columnar layout -- one :class:`TraceArray` holds three
parallel numpy arrays (``time_ns``/``bank``/``row``) -- and provides
vectorized versions of the :mod:`.trace` helpers:

* :meth:`TraceArray.from_events` / :meth:`TraceArray.__iter__` convert
  to and from the iterator world losslessly;
* :func:`pace_array` is :func:`~repro.workloads.trace.pace`;
* :func:`merge_arrays` is :func:`~repro.workloads.trace.merge_streams`;
* :func:`collect_stats_array` is
  :func:`~repro.workloads.trace.collect_stats`.

**Equivalence is bit-exact, not approximate.**  The iterator helpers
accumulate timestamps with sequential float64 additions (``time +=
interval``), so the vectorized versions reproduce the *same sequence
of floating-point operations*: running sums use ``np.cumsum`` seeded
with the live accumulator value (numpy's accumulate is sequential
left-to-right, unlike ``np.sum``'s pairwise reduction), and the tRFC
blackout push of :func:`pace` is applied with the identical scalar
expression at each affected element.  The tests in
``tests/test_columnar.py`` pin this down element-for-element.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..dram.timing import DDR4_2400, DramTimings
from .trace import ActEvent, TraceStats

__all__ = [
    "TraceArray",
    "SharedTraceMeta",
    "export_shared_trace",
    "attach_shared_trace",
    "iter_chunk_arrays",
    "pace_array",
    "merge_arrays",
    "collect_stats_array",
]


@dataclass
class TraceArray:
    """A time-sorted ACT trace as three parallel numpy arrays.

    Attributes:
        time_ns: float64 activation timestamps (nondecreasing).
        bank: int64 flat bank indices.
        row: int64 row addresses.
    """

    time_ns: np.ndarray
    bank: np.ndarray
    row: np.ndarray

    def __post_init__(self) -> None:
        self.time_ns = np.asarray(self.time_ns, dtype=np.float64)
        self.bank = np.asarray(self.bank, dtype=np.int64)
        self.row = np.asarray(self.row, dtype=np.int64)
        if not (len(self.time_ns) == len(self.bank) == len(self.row)):
            raise ValueError(
                f"column lengths differ: {len(self.time_ns)} times, "
                f"{len(self.bank)} banks, {len(self.row)} rows"
            )

    # ------------------------------------------------------------------
    # Conversions to/from the iterator world
    # ------------------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[ActEvent]) -> "TraceArray":
        """Materialize an event iterable into columns (consumes it)."""
        if isinstance(events, cls):
            return events
        times: list[float] = []
        banks: list[int] = []
        rows: list[int] = []
        for event in events:
            times.append(event.time_ns)
            banks.append(event.bank)
            rows.append(event.row)
        return cls(
            time_ns=np.array(times, dtype=np.float64),
            bank=np.array(banks, dtype=np.int64),
            row=np.array(rows, dtype=np.int64),
        )

    @classmethod
    def empty(cls) -> "TraceArray":
        return cls(
            time_ns=np.empty(0, dtype=np.float64),
            bank=np.empty(0, dtype=np.int64),
            row=np.empty(0, dtype=np.int64),
        )

    def __len__(self) -> int:
        return len(self.time_ns)

    def __iter__(self) -> Iterator[ActEvent]:
        """Yield native :class:`ActEvent` objects (lossless round-trip)."""
        for t, b, r in zip(self.time_ns, self.bank, self.row):
            yield ActEvent(float(t), int(b), int(r))

    def to_events(self) -> list[ActEvent]:
        """The whole trace as a list of :class:`ActEvent`."""
        return list(self)

    # ------------------------------------------------------------------
    # Chunked access
    # ------------------------------------------------------------------

    def slice(self, start: int, stop: int) -> "TraceArray":
        """Zero-copy view of events ``[start, stop)``."""
        return TraceArray(
            time_ns=self.time_ns[start:stop],
            bank=self.bank[start:stop],
            row=self.row[start:stop],
        )

    def chunks(self, size: int) -> Iterator["TraceArray"]:
        """Yield consecutive views of at most ``size`` events."""
        if size < 1:
            raise ValueError("chunk size must be >= 1")
        for start in range(0, len(self), size):
            yield self.slice(start, start + size)

    def bank_runs(self) -> Iterator[tuple[int, int, int]]:
        """Yield maximal same-bank runs as ``(start, stop, bank)``.

        Processing runs in order preserves the global event order
        per bank *and* across banks, which is what lets the fast-path
        controller dispatch whole runs while reproducing the reference
        engine's directive order exactly.
        """
        n = len(self)
        if n == 0:
            return
        boundaries = np.flatnonzero(np.diff(self.bank)) + 1
        start = 0
        for stop in boundaries:
            yield int(start), int(stop), int(self.bank[start])
            start = int(stop)
        yield int(start), n, int(self.bank[start])

    def bank_partition(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(bank, indices)`` with the global indices of every
        event on that bank, in ascending (= time) order.

        Unlike :meth:`bank_runs` -- which yields maximal *contiguous*
        same-bank runs and therefore degenerates to length-1 runs on a
        round-robin interleave -- this partitions the whole trace, so a
        consumer that treats banks as independent lanes (the fast-path
        controller does, between blocking events) gets each bank's full
        event sequence in one slab regardless of interleaving.  The
        stable argsort keeps each lane's indices strictly increasing,
        which is what lets per-lane outputs be merged back into exact
        global order.
        """
        n = len(self)
        if n == 0:
            return
        order = np.argsort(self.bank, kind="stable")
        grouped = self.bank[order]
        boundaries = np.flatnonzero(np.diff(grouped)) + 1
        for lane in np.split(order, boundaries):
            yield int(self.bank[lane[0]]), lane

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def is_time_sorted(self) -> bool:
        if len(self) < 2:
            return True
        return bool(np.all(np.diff(self.time_ns) >= 0.0))


# ----------------------------------------------------------------------
# Zero-copy trace shipping via POSIX shared memory
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SharedTraceMeta:
    """Pickle-cheap handle describing one exported trace segment.

    The three columns live back to back in a single
    :class:`multiprocessing.shared_memory.SharedMemory` segment:
    ``time_ns`` (float64) at byte offset 0, ``bank`` (int64) at
    ``8 * events``, ``row`` (int64) at ``16 * events``.  Only this
    24-byte-ish handle crosses the IPC channel; the event payload is
    mapped, never copied.
    """

    name: str
    events: int


def export_shared_trace(
    trace: TraceArray,
) -> tuple[SharedTraceMeta, shared_memory.SharedMemory]:
    """Copy ``trace`` into a fresh shared-memory segment.

    Returns the meta handle plus the segment object.  The caller owns
    the segment's lifetime: ``close()`` *and* ``unlink()`` it once every
    attached worker is done with the chunk(s) it covers (the shard pool
    tracks this; on Linux an unlink with live attachments is safe --
    the mapping survives until the last ``close()``).
    """
    n = len(trace)
    name = f"repro-trace-{secrets.token_hex(8)}"
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(1, 24 * n)
    )
    if n:
        time_view = np.ndarray(n, dtype=np.float64, buffer=segment.buf)
        bank_view = np.ndarray(
            n, dtype=np.int64, buffer=segment.buf, offset=8 * n
        )
        row_view = np.ndarray(
            n, dtype=np.int64, buffer=segment.buf, offset=16 * n
        )
        np.copyto(time_view, trace.time_ns)
        np.copyto(bank_view, trace.bank)
        np.copyto(row_view, trace.row)
    return SharedTraceMeta(name=name, events=n), segment


def attach_shared_trace(
    meta: SharedTraceMeta,
) -> tuple[TraceArray, shared_memory.SharedMemory]:
    """Map an exported trace inside a worker process (zero-copy).

    Returns a :class:`TraceArray` whose columns are views into the
    mapping plus the segment object the caller must keep alive while
    the views are in use and ``close()`` (never ``unlink()`` -- the
    exporting side owns destruction) afterwards.
    """
    # Attaching must not register the segment with the resource
    # tracker: the parent is the sole owner (bpo-38119), and a forked
    # worker usually *shares* the parent's tracker process, so the
    # register/unregister pair this side would emit cancels the
    # parent's claim in the shared cache -- the parent's eventual
    # unlink then hits a tracker KeyError and, between the two, a
    # crashed parent would leak the segment.  Python 3.13 grows
    # ``track=False`` for exactly this; below that, suppressing the
    # register call during attach is the documented workaround.  The
    # attach side never touches other trackable resources here, and
    # shard workers are single-threaded, so the swap cannot swallow an
    # unrelated registration.
    register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        segment = shared_memory.SharedMemory(name=meta.name)
    finally:
        resource_tracker.register = register
    n = meta.events
    if n == 0:
        return TraceArray.empty(), segment
    trace = TraceArray(
        time_ns=np.ndarray(n, dtype=np.float64, buffer=segment.buf),
        bank=np.ndarray(n, dtype=np.int64, buffer=segment.buf, offset=8 * n),
        row=np.ndarray(n, dtype=np.int64, buffer=segment.buf, offset=16 * n),
    )
    return trace, segment


def iter_chunk_arrays(
    events: "TraceArray | Iterable[ActEvent]", chunk_events: int
) -> Iterator[TraceArray]:
    """Yield consecutive :class:`TraceArray` chunks of at most
    ``chunk_events`` events.

    The streaming entry point of the fast path's chunked execution
    mode: a :class:`TraceArray` input yields zero-copy views (no extra
    memory at all), while *any other* event iterable -- including a
    lazy generator that never materializes the full trace -- is
    buffered one chunk at a time, so peak memory is bounded by the
    chunk size regardless of trace length.  Chunk boundaries carry no
    semantic weight: consumers (``FastMemoryController.run``) keep all
    kernel/bank state across chunks, so a chunked run is bit-identical
    to an unchunked one.
    """
    if chunk_events < 1:
        raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
    if isinstance(events, TraceArray):
        yield from events.chunks(chunk_events)
        return
    times: list[float] = []
    banks: list[int] = []
    rows: list[int] = []
    for event in events:
        times.append(event.time_ns)
        banks.append(event.bank)
        rows.append(event.row)
        if len(times) == chunk_events:
            yield TraceArray(
                time_ns=np.array(times, dtype=np.float64),
                bank=np.array(banks, dtype=np.int64),
                row=np.array(rows, dtype=np.int64),
            )
            times, banks, rows = [], [], []
    if times:
        yield TraceArray(
            time_ns=np.array(times, dtype=np.float64),
            bank=np.array(banks, dtype=np.int64),
            row=np.array(rows, dtype=np.int64),
        )


def _sequential_cumsum(base: float, increments: np.ndarray) -> np.ndarray:
    """Running sum ``((base + inc0) + inc1) + ...`` with scalar-loop
    rounding: numpy's accumulate is sequential left-to-right, so seeding
    it with ``base`` as element zero reproduces the exact partial sums a
    ``time += interval`` loop would produce."""
    seeded = np.empty(len(increments) + 1, dtype=np.float64)
    seeded[0] = base
    seeded[1:] = increments
    return np.cumsum(seeded)[1:]


def pace_array(
    rows: Sequence[int] | np.ndarray,
    interval_ns: float,
    bank: int = 0,
    start_ns: float = 0.0,
    timings: DramTimings = DDR4_2400,
    honor_refresh_gaps: bool = True,
) -> TraceArray:
    """Vectorized :func:`~repro.workloads.trace.pace` (bit-identical).

    The iterator version advances a scalar accumulator and, when an ACT
    would land inside the tRFC blackout after a tREFI boundary, pushes
    it past the blackout (``time += trfc - time % trefi``).  Here the
    accumulator runs as a seeded ``cumsum`` segment; the first element
    flagged inside a blackout is pushed with the identical scalar
    expression and becomes the seed of the next segment, so every
    emitted timestamp matches the iterator's float64 value exactly.
    """
    if interval_ns < timings.trc:
        raise ValueError(
            f"interval {interval_ns}ns violates tRC={timings.trc}ns"
        )
    row_array = np.asarray(rows, dtype=np.int64)
    n = len(row_array)
    if n == 0:
        return TraceArray.empty()
    times = np.empty(n, dtype=np.float64)
    trefi = timings.trefi
    trfc = timings.trfc
    anchor = start_ns
    emitted = 0
    while emitted < n:
        remaining = n - emitted
        # Candidate timestamps if no blackout intervened: the anchor,
        # then one sequential +interval per ACT.
        candidates = _sequential_cumsum(
            anchor, np.full(remaining - 1, interval_ns, dtype=np.float64)
        )
        candidates = np.concatenate(([anchor], candidates))
        if honor_refresh_gaps:
            blocked = np.mod(candidates, trefi) < trfc
            first = int(np.argmax(blocked)) if blocked.any() else remaining
        else:
            first = remaining
        # Everything before the first blackout hit is final.
        times[emitted:emitted + first] = candidates[:first]
        emitted += first
        if emitted >= n:
            break
        # Push the blocked ACT past the blackout with the iterator's
        # exact scalar arithmetic, then restart the accumulator there.
        time_ns = float(candidates[first])
        since_boundary = time_ns % trefi
        time_ns += trfc - since_boundary
        times[emitted] = time_ns
        emitted += 1
        anchor = time_ns + interval_ns
    return TraceArray(
        time_ns=times,
        bank=np.full(n, bank, dtype=np.int64),
        row=row_array,
    )


def merge_arrays(*traces: TraceArray) -> TraceArray:
    """Vectorized :func:`~repro.workloads.trace.merge_streams`.

    ``heapq.merge`` is stable: on equal timestamps the earlier input
    stream wins.  Concatenating in argument order and stable-sorting by
    time reproduces that order exactly.
    """
    parts = [t for t in traces if len(t)]
    if not parts:
        return TraceArray.empty()
    time_ns = np.concatenate([t.time_ns for t in parts])
    bank = np.concatenate([t.bank for t in parts])
    row = np.concatenate([t.row for t in parts])
    order = np.argsort(time_ns, kind="stable")
    return TraceArray(
        time_ns=time_ns[order], bank=bank[order], row=row[order]
    )


def collect_stats_array(
    trace: TraceArray,
    window_ns: float = DDR4_2400.trefw,
) -> TraceStats:
    """Vectorized :func:`~repro.workloads.trace.collect_stats`."""
    if window_ns <= 0:
        raise ValueError("window_ns must be positive")
    n = len(trace)
    if n == 0:
        return TraceStats(
            total_acts=0,
            duration_ns=0.0,
            banks=0,
            max_row_acts_per_window=0,
            distinct_rows=0,
        )
    # int(t // w) in the scalar loop: both operands positive, and
    # numpy's floor_divide matches Python's float floor division.
    windows = np.floor_divide(trace.time_ns, window_ns).astype(np.int64)
    keys = np.stack([trace.bank, trace.row, windows], axis=1)
    _, window_counts = np.unique(keys, axis=0, return_counts=True)
    pairs = np.stack([trace.bank, trace.row], axis=1)
    distinct_rows = len(np.unique(pairs, axis=0))
    return TraceStats(
        total_acts=n,
        duration_ns=float(trace.time_ns[-1] - trace.time_ns[0]),
        banks=len(np.unique(trace.bank)),
        max_row_acts_per_window=int(window_counts.max()),
        distinct_rows=distinct_rows,
    )
