"""Synthetic adversarial access patterns (paper Section V-B).

The paper evaluates four synthetic attack families, all issuing ACTs at
the maximum rate DRAM timing allows:

* **S1(N)** -- repeats N arbitrarily selected rows (N = 10, 20);
* **S2** -- the repeating rows of S1 with occasional random rows mixed
  in between;
* **S3** -- the classic single-row hammer: one row repeatedly;
* **S4** -- a mixture of S3 and random row accesses.

Plus the *worst-case* pattern for Graphene used by Fig. 6 and the
"0.34%" bound: cycling through exactly ``floor(W / T)`` rows so that
every table entry climbs to the threshold ``T`` as many times as the
window allows, maximizing victim-refresh triggers.

All generators emit plain row sequences; use
:func:`repro.workloads.trace.pace` (or the convenience wrappers here)
to timestamp them at the maximum ACT rate.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator

from ..core.config import GrapheneConfig
from ..dram.timing import DDR4_2400, DramTimings
from .trace import ActEvent, pace

__all__ = [
    "s1_rows",
    "s2_rows",
    "s3_rows",
    "s4_rows",
    "graphene_worst_case_rows",
    "synthetic_events",
    "SYNTHETIC_PATTERNS",
]


def _spread_rows(count: int, rows_per_bank: int, rng: random.Random) -> list[int]:
    """Pick ``count`` distinct rows spaced > 2 apart (distinct victims)."""
    if count * 4 > rows_per_bank:
        raise ValueError("bank too small to spread that many aggressors")
    base = rng.sample(range(rows_per_bank // 4), count)
    return sorted(r * 4 + 1 for r in base)


def s1_rows(
    n: int = 10, rows_per_bank: int = 65536, seed: int = 0
) -> Iterator[int]:
    """S1: repeat ``n`` arbitrarily selected rows forever."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = random.Random(seed)
    targets = _spread_rows(n, rows_per_bank, rng)
    return itertools.cycle(targets)


def s2_rows(
    n: int = 10,
    random_every: int = 5,
    rows_per_bank: int = 65536,
    seed: int = 0,
) -> Iterator[int]:
    """S2: S1's repeating rows with a random row every ``random_every``."""
    if random_every < 2:
        raise ValueError("random_every must be >= 2")
    rng = random.Random(seed)
    targets = _spread_rows(n, rows_per_bank, rng)
    cycler = itertools.cycle(targets)

    def generate() -> Iterator[int]:
        position = 0
        while True:
            position += 1
            if position % random_every == 0:
                yield rng.randrange(rows_per_bank)
            else:
                yield next(cycler)

    return generate()


def s3_rows(
    target: int | None = None, rows_per_bank: int = 65536, seed: int = 0
) -> Iterator[int]:
    """S3: the straightforward single-row hammer."""
    if target is None:
        target = random.Random(seed).randrange(2, rows_per_bank - 2)
    return itertools.repeat(target)


def s4_rows(
    target: int | None = None,
    random_fraction: float = 0.5,
    rows_per_bank: int = 65536,
    seed: int = 0,
) -> Iterator[int]:
    """S4: mixture of the single-row hammer and random rows."""
    if not 0.0 <= random_fraction < 1.0:
        raise ValueError("random_fraction must be in [0, 1)")
    rng = random.Random(seed)
    if target is None:
        target = rng.randrange(2, rows_per_bank - 2)

    def generate() -> Iterator[int]:
        while True:
            if rng.random() < random_fraction:
                yield rng.randrange(rows_per_bank)
            else:
                yield target

    return generate()


def graphene_worst_case_rows(
    config: GrapheneConfig, seed: int = 0
) -> Iterator[int]:
    """The refresh-maximizing pattern for a Graphene configuration.

    Cycles through ``floor(W / T)`` spread-out rows; at the maximum ACT
    rate every one of them reaches the tracking threshold ``T`` (and
    its multiples) as often as the window's ACT budget allows, which is
    the worst case Fig. 6 plots and the "refresh energy +0.34% at most"
    abstract claim is computed from.
    """
    aggressors = max(1, config.max_refresh_events_per_window)
    rng = random.Random(seed)
    targets = _spread_rows(
        min(aggressors, config.rows_per_bank // 4),
        config.rows_per_bank,
        rng,
    )
    return itertools.cycle(targets)


def synthetic_events(
    rows: Iterator[int],
    duration_ns: float,
    bank: int = 0,
    timings: DramTimings = DDR4_2400,
    start_ns: float = 0.0,
) -> Iterator[ActEvent]:
    """Timestamp a row sequence at the maximum legal ACT rate.

    The attacker issues back-to-back ACTs (interval tRC) and loses the
    tRFC blackout after every tREFI like any real agent, so a full
    refresh window carries exactly ~``W`` ACTs.
    """
    events = pace(
        rows,
        interval_ns=timings.trc,
        bank=bank,
        start_ns=start_ns,
        timings=timings,
        honor_refresh_gaps=True,
    )
    for event in events:
        if event.time_ns - start_ns >= duration_ns:
            return
        yield event


#: Named constructors for the Fig. 8(b) x-axis, each returning a row
#: iterator given (rows_per_bank, seed).
SYNTHETIC_PATTERNS = {
    "S1-10": lambda rows_per_bank, seed: s1_rows(10, rows_per_bank, seed),
    "S1-20": lambda rows_per_bank, seed: s1_rows(20, rows_per_bank, seed),
    "S2": lambda rows_per_bank, seed: s2_rows(10, 5, rows_per_bank, seed),
    "S3": lambda rows_per_bank, seed: s3_rows(None, rows_per_bank, seed),
    "S4": lambda rows_per_bank, seed: s4_rows(None, 0.5, rows_per_bank, seed),
}
