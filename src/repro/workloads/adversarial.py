"""The scheme-specific killer patterns of paper Fig. 7 (Section V-A).

Two of the probabilistic baselines have table-management algorithms an
attacker can game:

* **PRoHIT killer** (Fig. 7(a)): the repeating 9-ACT pattern
  ``{x-4, x-2, x-2, x, x, x, x+2, x+2, x+4}``.  The decoy victims
  (x+-1, x+-3) are victimized 3-5x per period and monopolize PRoHIT's
  frequency-ranked hot table, while the real targets x-5 and x+5 --
  hammered once per period by x-4 / x+4 -- rarely get refreshed and
  slowly accumulate disturbance past the threshold.

* **MRLoc killer** (Fig. 7(b)): cycling eight distinct, mutually
  non-adjacent aggressors ``{x1 ... x8}`` produces sixteen victim
  candidates -- one more than MRLoc's 15-entry history queue holds --
  so every queue lookup misses and MRLoc degrades to bare PARA.

Also here: the double-sided hammer (two aggressors around one victim,
the worst case Graphene's ``T`` derivation divides by two for) and a
window-straddling single-row hammer exercising the Fig. 3 two-window
scenario.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator

__all__ = [
    "prohit_killer_rows",
    "mrloc_killer_rows",
    "double_sided_rows",
    "window_straddle_rows",
]


def prohit_killer_rows(
    x: int | None = None, rows_per_bank: int = 65536, seed: int = 0
) -> Iterator[int]:
    """Fig. 7(a): ``{x-4, x-2, x-2, x, x, x, x+2, x+2, x+4}`` repeated.

    Victim rows and their per-period disturbance:

    ========  ==========================  ===================
    victim    aggressors (per period)     disturbance/period
    ========  ==========================  ===================
    x-5       x-4 (1)                     1
    x-3       x-4 (1), x-2 (2)            3
    x-1       x-2 (2), x   (3)            5
    x+1       x   (3), x+2 (2)            5
    x+3       x+2 (2), x+4 (1)            3
    x+5       x+4 (1)                     1
    ========  ==========================  ===================

    The attack targets x-5 / x+5: least-refreshed, still hammered.
    """
    if x is None:
        x = random.Random(seed).randrange(8, rows_per_bank - 8)
    if not 5 <= x < rows_per_bank - 5:
        raise ValueError("x must leave room for the +-5 neighborhood")
    period = (x - 4, x - 2, x - 2, x, x, x, x + 2, x + 2, x + 4)
    return itertools.cycle(period)


def mrloc_killer_rows(
    count: int = 8,
    spacing: int = 4,
    base: int | None = None,
    rows_per_bank: int = 65536,
    seed: int = 0,
) -> Iterator[int]:
    """Fig. 7(b): cycle ``count`` distinct non-adjacent aggressors.

    With the default eight aggressors spaced four rows apart there are
    sixteen distinct victims; an N-entry history queue with N < 16
    (MRLoc's is 15) thrashes and never observes locality.
    """
    if count < 2:
        raise ValueError("count must be >= 2")
    if spacing < 3:
        raise ValueError("spacing must be >= 3 to keep victims distinct")
    if base is None:
        base = random.Random(seed).randrange(
            spacing, rows_per_bank - spacing * (count + 1)
        )
    aggressors = [base + i * spacing for i in range(count)]
    if aggressors[-1] + 1 >= rows_per_bank:
        raise ValueError("pattern does not fit in the bank")
    return itertools.cycle(aggressors)


def double_sided_rows(
    victim: int | None = None, rows_per_bank: int = 65536, seed: int = 0
) -> Iterator[int]:
    """Alternate the two neighbors of one victim (double-sided hammer).

    Each aggressor needs only ``T_RH / 2`` ACTs for the shared victim
    to flip -- the factor of two in Graphene's Inequality 2.
    """
    if victim is None:
        victim = random.Random(seed).randrange(2, rows_per_bank - 2)
    if not 1 <= victim < rows_per_bank - 1:
        raise ValueError("victim must have two in-range neighbors")
    return itertools.cycle((victim - 1, victim + 1))


def window_straddle_rows(
    target: int,
    acts_per_phase: int,
) -> Iterator[int]:
    """Two bursts of ``acts_per_phase`` ACTs on one row (Fig. 3 shape).

    Paced to straddle a table reset, the attacker accumulates up to
    ``2(T-1)`` ACTs with no victim refresh -- exactly the budget the
    ``T < T_RH/4 + 1`` derivation accounts for.  The caller controls
    the straddling via pacing/start time.
    """
    if acts_per_phase < 1:
        raise ValueError("acts_per_phase must be >= 1")
    return itertools.repeat(target, 2 * acts_per_phase)
