"""Phased workloads: programs whose memory behavior changes over time.

Real programs run in phases -- an initialization sweep, a pointer-chase
phase, a write-back flush.  Phase changes interact with
windowed defenses in a specific way: Graphene's table resets every
``tREFW/k``, so a phase boundary landing mid-window changes the stream
composition the Misra-Gries summary is digesting.  The guarantee is
insensitive to this (it is per-window worst-case), but false-positive
behavior and baseline schemes' heuristics are not -- which makes phased
traces a useful robustness workout.

:class:`PhasedWorkload` stitches existing profiles into a timeline;
:func:`phase_shifting_attack` alternates attack and camouflage phases
(an attacker that goes quiet whenever it nears detection thresholds --
which cannot help against Graphene, since estimated counts persist for
the whole window).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..dram.timing import DDR4_2400, DramTimings
from .spec_like import REALISTIC_PROFILES, WorkloadProfile, profile_events
from .synthetic import s3_rows, synthetic_events
from .trace import ActEvent

__all__ = ["Phase", "PhasedWorkload", "phase_shifting_attack"]


@dataclass(frozen=True)
class Phase:
    """One segment of a phased workload."""

    profile: WorkloadProfile
    duration_ns: float

    def __post_init__(self) -> None:
        if self.duration_ns <= 0:
            raise ValueError("phase duration must be positive")


class PhasedWorkload:
    """Concatenates workload profiles along a timeline.

    Args:
        phases: Ordered phases; the workload cycles through them until
            the requested duration is exhausted.
        name: Label for results.
    """

    def __init__(self, phases: Sequence[Phase], name: str = "phased") -> None:
        if not phases:
            raise ValueError("need at least one phase")
        self.phases = tuple(phases)
        self.name = name

    @classmethod
    def from_names(
        cls,
        names: Sequence[str],
        phase_duration_ns: float,
        name: str = "phased",
    ) -> "PhasedWorkload":
        """Build from named realistic profiles with equal durations."""
        return cls(
            [
                Phase(REALISTIC_PROFILES[profile_name], phase_duration_ns)
                for profile_name in names
            ],
            name=name,
        )

    def events(
        self,
        duration_ns: float,
        banks: int = 1,
        rows_per_bank: int = 65536,
        seed: int = 0,
        timings: DramTimings = DDR4_2400,
    ) -> Iterator[ActEvent]:
        """Timed ACT stream cycling through the phases."""
        if duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        start_ns = 0.0
        cycle = itertools.cycle(enumerate(self.phases))
        while start_ns < duration_ns:
            index, phase = next(cycle)
            span = min(phase.duration_ns, duration_ns - start_ns)
            for event in profile_events(
                phase.profile,
                duration_ns=span,
                banks=banks,
                rows_per_bank=rows_per_bank,
                seed=seed + index * 7919,
                timings=timings,
            ):
                yield ActEvent(
                    event.time_ns + start_ns, event.bank, event.row
                )
            start_ns += span


def phase_shifting_attack(
    duration_ns: float,
    burst_ns: float,
    quiet_ns: float,
    target: int | None = None,
    rows_per_bank: int = 65536,
    bank: int = 0,
    seed: int = 0,
    timings: DramTimings = DDR4_2400,
) -> Iterator[ActEvent]:
    """Hammer in bursts with quiet gaps (detection-evasion attempt).

    The attacker hammers for ``burst_ns``, sleeps ``quiet_ns``, and
    repeats.  Against windowed deterministic tracking this evasion is
    useless -- quiet time does not decay estimated counts within the
    window, it only wastes the attacker's ACT budget -- which the test
    suite asserts end-to-end.
    """
    if burst_ns <= 0 or quiet_ns < 0:
        raise ValueError("burst must be positive, quiet non-negative")
    rows = s3_rows(target=target, rows_per_bank=rows_per_bank, seed=seed)
    start_ns = 0.0
    while start_ns < duration_ns:
        span = min(burst_ns, duration_ns - start_ns)
        for event in synthetic_events(
            rows, duration_ns=span, bank=bank, timings=timings,
            start_ns=start_ns,
        ):
            yield event
        start_ns += span + quiet_ns
