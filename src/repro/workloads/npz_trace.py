"""Compact binary trace storage (NumPy ``.npz``).

The text format of :mod:`repro.workloads.trace` is greppable but a full
refresh-window attack trace is ~1.36M events (~40 MB of text).  This
module stores the same streams as three aligned arrays (float64 times,
uint32 banks, uint32 rows) -- ~15 MB uncompressed, a few MB with
``savez_compressed`` -- and loads them back as either a stream of
:class:`~repro.workloads.trace.ActEvent` or raw arrays for vectorized
analysis (e.g. :func:`trace_statistics`, which computes the calibration
stats of a million-event trace in milliseconds).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .trace import ActEvent

__all__ = [
    "save_npz_trace",
    "load_npz_arrays",
    "load_npz_trace",
    "trace_statistics",
]

_FORMAT_TAG = "graphene-repro-npz-v1"


def save_npz_trace(
    events: Iterable[ActEvent], path: str, compressed: bool = True
) -> int:
    """Serialize events to ``path``; returns the event count.

    Events must be time-sorted (validated on load, cheap on save).
    """
    times: list[float] = []
    banks: list[int] = []
    rows: list[int] = []
    for event in events:
        times.append(event.time_ns)
        banks.append(event.bank)
        rows.append(event.row)
    arrays = {
        "format": np.array(_FORMAT_TAG),
        "time_ns": np.asarray(times, dtype=np.float64),
        "bank": np.asarray(banks, dtype=np.uint32),
        "row": np.asarray(rows, dtype=np.uint32),
    }
    saver = np.savez_compressed if compressed else np.savez
    saver(path, **arrays)
    return len(times)


def load_npz_arrays(path: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Load (time_ns, bank, row) arrays, validating the format tag."""
    with np.load(path, allow_pickle=False) as archive:
        if "format" not in archive or str(archive["format"]) != _FORMAT_TAG:
            raise ValueError(
                f"{path} is not a graphene-repro npz trace"
            )
        times = archive["time_ns"]
        banks = archive["bank"]
        rows = archive["row"]
    if not (len(times) == len(banks) == len(rows)):
        raise ValueError(f"{path}: array lengths disagree")
    if len(times) > 1 and np.any(np.diff(times) < 0):
        raise ValueError(f"{path}: events are not time-sorted")
    return times, banks, rows


def load_npz_trace(path: str) -> Iterator[ActEvent]:
    """Stream events back from an npz trace."""
    times, banks, rows = load_npz_arrays(path)
    for index in range(len(times)):
        yield ActEvent(
            float(times[index]), int(banks[index]), int(rows[index])
        )


def trace_statistics(
    path: str, window_ns: float = 64e6
) -> dict[str, float]:
    """Vectorized summary of an npz trace (the calibration quantities).

    Returns total events, span, per-bank rate, distinct rows, and the
    maximum per-(bank, row) ACT count within any ``window_ns`` window --
    the quantity Graphene's zero-refresh result depends on.
    """
    times, banks, rows = load_npz_arrays(path)
    if len(times) == 0:
        return {
            "events": 0.0, "span_ns": 0.0,
            "acts_per_second_per_bank": 0.0,
            "distinct_rows": 0.0, "max_row_acts_per_window": 0.0,
        }
    span = float(times[-1] - times[0])
    bank_count = len(np.unique(banks))
    window_index = (times // window_ns).astype(np.int64)
    # Composite key: (window, bank, row) -> counts.
    keys = (
        window_index.astype(np.uint64) << np.uint64(40)
        | banks.astype(np.uint64) << np.uint64(32)
        | rows.astype(np.uint64)
    )
    _, counts = np.unique(keys, return_counts=True)
    pairs = np.unique(
        banks.astype(np.uint64) << np.uint64(32) | rows.astype(np.uint64)
    )
    return {
        "events": float(len(times)),
        "span_ns": span,
        "acts_per_second_per_bank": (
            len(times) / bank_count / (span / 1e9) if span > 0 else 0.0
        ),
        "distinct_rows": float(len(pairs)),
        "max_row_acts_per_window": float(counts.max()),
    }
