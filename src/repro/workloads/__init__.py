"""Workload generators and the ACT-trace model.

* :mod:`~repro.workloads.trace` -- the :class:`ActEvent` stream model,
  pacing, merging, serialization and statistics;
* :mod:`~repro.workloads.columnar` -- the array-backed
  :class:`TraceArray` twin of the stream model (bit-identical
  vectorized pacing/merging/statistics for the fast path);
* :mod:`~repro.workloads.spec_like` -- calibrated synthetic stand-ins
  for the paper's SPEC CPU2006 / multithreaded workloads;
* :mod:`~repro.workloads.synthetic` -- the S1-S4 attack patterns and
  Graphene's worst case;
* :mod:`~repro.workloads.adversarial` -- the Fig. 7 PRoHIT/MRLoc
  killers, double-sided and window-straddling hammers.
"""

from .attacks import (
    assisted_double_sided_rows,
    decoy_flood_rows,
    graphene_saturation_rows,
    many_sided_rows,
)
from .adversarial import (
    double_sided_rows,
    mrloc_killer_rows,
    prohit_killer_rows,
    window_straddle_rows,
)
from .phased import Phase, PhasedWorkload, phase_shifting_attack
from .spec_like import (
    MIX_PROFILES,
    MULTITHREADED_PROFILES,
    REALISTIC_PROFILES,
    SPEC_HIGH_PROFILES,
    WorkloadProfile,
    profile_events,
)
from .synthetic import (
    SYNTHETIC_PATTERNS,
    graphene_worst_case_rows,
    s1_rows,
    s2_rows,
    s3_rows,
    s4_rows,
    synthetic_events,
)
from .columnar import (
    TraceArray,
    collect_stats_array,
    iter_chunk_arrays,
    merge_arrays,
    pace_array,
)
from .validation import (
    TraceReport,
    TraceViolation,
    assert_valid,
    validate_trace,
)
from .trace import (
    ActEvent,
    TraceStats,
    collect_stats,
    merge_streams,
    pace,
    read_trace,
    take_until,
    write_trace,
)

__all__ = [
    "ActEvent",
    "TraceStats",
    "collect_stats",
    "merge_streams",
    "pace",
    "TraceArray",
    "iter_chunk_arrays",
    "pace_array",
    "merge_arrays",
    "collect_stats_array",
    "read_trace",
    "take_until",
    "write_trace",
    "WorkloadProfile",
    "REALISTIC_PROFILES",
    "SPEC_HIGH_PROFILES",
    "MIX_PROFILES",
    "MULTITHREADED_PROFILES",
    "profile_events",
    "SYNTHETIC_PATTERNS",
    "s1_rows",
    "s2_rows",
    "s3_rows",
    "s4_rows",
    "graphene_worst_case_rows",
    "synthetic_events",
    "prohit_killer_rows",
    "mrloc_killer_rows",
    "double_sided_rows",
    "window_straddle_rows",
    "many_sided_rows",
    "graphene_saturation_rows",
    "assisted_double_sided_rows",
    "decoy_flood_rows",
    "Phase",
    "PhasedWorkload",
    "phase_shifting_attack",
    "TraceReport",
    "TraceViolation",
    "validate_trace",
    "assert_valid",
]
