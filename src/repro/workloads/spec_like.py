"""Synthetic stand-ins for the paper's realistic workloads.

The paper evaluates multi-programmed SPEC CPU2006 workloads (the nine
most memory-intensive, "SPEC-high", plus two mixes) and five
multi-threaded benchmarks (MICA, GAP PageRank, SPLASH-2 RADIX/FFT,
PARSEC Canneal).  Those binaries and their traces are not available
offline, so -- per the substitution rule documented in DESIGN.md --
each workload is replaced by a stochastic row-activation generator
calibrated on the two properties the evaluation depends on:

1. **per-bank ACT intensity** (activations per second), which drives
   the overhead of probabilistic schemes (PARA refreshes ~``p`` per
   ACT) and counter-sharing schemes (CBT counters accumulate aggregate
   counts);
2. **per-row ACT concentration** within a reset window, which decides
   whether deterministic trackers (Graphene, TWiCe) ever fire -- the
   paper's key result is that no realistic workload brings any single
   row near ``T`` = 8,333 ACTs per 64 ms.

Each profile mixes a Zipf-distributed hot working set (row reuse from
cache-line conflict misses) with a streaming component (sequential
sweeps, negligible reuse).  Intensities are scaled so the heaviest
profiles (mcf, lbm, MICA) run at a few million ACTs/s per bank --
20-30% of the DDR4 per-bank maximum -- matching the paper's regime
where PARA's overhead lands below ~0.7% of refresh energy.

The per-row concentration these parameters produce tops out around a
few hundred ACTs per window per row, two orders of magnitude below
``T``: the "zero victim refreshes" result is a *robust* consequence of
workload structure, not a knife-edge calibration.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..dram.timing import DDR4_2400, DramTimings
from .trace import ActEvent, merge_streams

__all__ = [
    "WorkloadProfile",
    "SPEC_HIGH_PROFILES",
    "MIX_PROFILES",
    "MULTITHREADED_PROFILES",
    "REALISTIC_PROFILES",
    "profile_events",
]


@dataclass(frozen=True)
class WorkloadProfile:
    """Stochastic row-activation model for one named workload.

    Attributes:
        name: Workload label (matches the paper's Figure 8 x-axis).
        kind: "multiprogrammed" or "multithreaded".
        acts_per_second_per_bank: Mean ACT arrival rate per bank.
        working_set_rows: Size of the hot row pool per bank.
        zipf_exponent: Popularity skew of the hot pool (0 = uniform).
        streaming_fraction: Share of ACTs that belong to a sequential
            sweep (touch-once rows) rather than the hot pool.
        spatial_segments: How many contiguous row-address regions the
            hot pool occupies.  Real programs' hot pages cluster in a
            few regions of the physical row space; this is what makes
            region-sharing trackers (CBT) accumulate counts while
            per-row trackers stay quiet.
        description: Which paper workload this profile substitutes.
    """

    name: str
    kind: str
    acts_per_second_per_bank: float
    working_set_rows: int
    zipf_exponent: float
    streaming_fraction: float
    spatial_segments: int = 8
    description: str = ""

    def __post_init__(self) -> None:
        if self.acts_per_second_per_bank <= 0:
            raise ValueError("acts_per_second_per_bank must be positive")
        if self.working_set_rows < 1:
            raise ValueError("working_set_rows must be >= 1")
        if not 0.0 <= self.streaming_fraction <= 1.0:
            raise ValueError("streaming_fraction outside [0, 1]")
        if self.zipf_exponent < 0:
            raise ValueError("zipf_exponent must be >= 0")
        if self.spatial_segments < 1:
            raise ValueError("spatial_segments must be >= 1")

    def mean_interval_ns(self) -> float:
        return 1e9 / self.acts_per_second_per_bank

    def expected_acts(self, duration_ns: float, banks: int) -> float:
        return self.acts_per_second_per_bank * banks * duration_ns / 1e9


#: The nine most memory-intensive SPEC CPU2006 applications the paper
#: runs 16 copies of ("SPEC-high").  Rates/locality differ per app to
#: span the Fig. 8(a) spread; all stay far from hammering any row.
SPEC_HIGH_PROFILES: dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        WorkloadProfile(
            "mcf", "multiprogrammed", 4.2e6, 24576, 0.55, 0.15,
            description="pointer-chasing; highest miss rate in SPEC CPU2006",
        ),
        WorkloadProfile(
            "milc", "multiprogrammed", 2.6e6, 16384, 0.35, 0.45,
            description="lattice QCD; large streaming arrays",
        ),
        WorkloadProfile(
            "leslie3d", "multiprogrammed", 2.2e6, 12288, 0.30, 0.55,
            description="CFD stencil sweeps",
        ),
        WorkloadProfile(
            "soplex", "multiprogrammed", 2.4e6, 20480, 0.60, 0.20,
            description="simplex LP solver; irregular sparse access",
        ),
        WorkloadProfile(
            "GemsFDTD", "multiprogrammed", 2.8e6, 14336, 0.30, 0.60,
            description="FDTD field sweeps",
        ),
        WorkloadProfile(
            "libquantum", "multiprogrammed", 3.2e6, 8192, 0.20, 0.75,
            description="quantum simulation; highly streaming",
        ),
        WorkloadProfile(
            "lbm", "multiprogrammed", 4.5e6, 10240, 0.25, 0.70,
            description="lattice Boltzmann; the most bandwidth-hungry",
        ),
        WorkloadProfile(
            "sphinx3", "multiprogrammed", 1.8e6, 18432, 0.65, 0.15,
            description="speech recognition; moderate reuse",
        ),
        WorkloadProfile(
            "omnetpp", "multiprogrammed", 1.6e6, 28672, 0.70, 0.10,
            description="discrete event simulation; scattered heap",
        ),
    ]
}

#: The two mixed multiprogrammed workloads of the paper.
MIX_PROFILES: dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        WorkloadProfile(
            "mix-high", "multiprogrammed", 3.0e6, 20480, 0.50, 0.35,
            description="16 apps drawn from SPEC-high",
        ),
        WorkloadProfile(
            "mix-blend", "multiprogrammed", 1.2e6, 16384, 0.45, 0.30,
            description="16 apps drawn from all of SPEC CPU2006",
        ),
    ]
}

#: The five multi-threaded benchmarks of the paper.
MULTITHREADED_PROFILES: dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        WorkloadProfile(
            "MICA", "multithreaded", 4.0e6, 32768, 0.75, 0.05,
            description="in-memory key-value store; skewed key popularity",
        ),
        WorkloadProfile(
            "PageRank", "multithreaded", 3.4e6, 24576, 0.80, 0.20,
            description="GAP PageRank; power-law vertex degrees",
        ),
        WorkloadProfile(
            "RADIX", "multithreaded", 2.9e6, 8192, 0.15, 0.80,
            description="SPLASH-2 radix sort; streaming permutation",
        ),
        WorkloadProfile(
            "FFT", "multithreaded", 2.5e6, 12288, 0.25, 0.65,
            description="SPLASH-2 FFT; strided butterflies",
        ),
        WorkloadProfile(
            "Canneal", "multithreaded", 1.4e6, 30720, 0.60, 0.10,
            description="PARSEC simulated annealing; random netlist access",
        ),
    ]
}

#: Every realistic workload of Fig. 8, in the paper's presentation order.
REALISTIC_PROFILES: dict[str, WorkloadProfile] = {
    **SPEC_HIGH_PROFILES,
    **MIX_PROFILES,
    **MULTITHREADED_PROFILES,
}


class _ZipfSampler:
    """Zipf-over-finite-alphabet sampler with O(1) draws.

    Uses inverse-CDF lookup on a precomputed table; the alphabet is a
    per-bank random permutation of rows so hot rows land anywhere in
    the bank.
    """

    def __init__(
        self,
        pool_rows: np.ndarray,
        exponent: float,
        rng: np.random.Generator,
    ) -> None:
        self.pool_rows = pool_rows
        ranks = np.arange(1, len(pool_rows) + 1, dtype=np.float64)
        weights = ranks ** (-exponent) if exponent > 0 else np.ones_like(ranks)
        self._cdf = np.cumsum(weights / weights.sum())
        self._rng = rng

    def draw(self, count: int) -> np.ndarray:
        picks = np.searchsorted(self._cdf, self._rng.random(count))
        return self.pool_rows[picks]


def _clustered_pool(
    profile: WorkloadProfile, rows_per_bank: int, rng: np.random.Generator
) -> np.ndarray:
    """Hot-row pool as a few contiguous regions, rank-blocked.

    The pool's ``spatial_segments`` contiguous regions are placed at
    random non-overlapping offsets; popularity ranks are assigned
    block-wise to regions (the hottest block of ranks lives in one
    region) but shuffled within each region.  This reproduces the page-
    level spatial locality of real programs: per-row ACT counts stay
    identical to an unclustered pool, while region-aggregate counts --
    what CBT's shared counters see -- concentrate realistically.
    """
    pool_size = min(profile.working_set_rows, rows_per_bank)
    segments = min(profile.spatial_segments, max(1, pool_size))
    per_segment = -(-pool_size // segments)
    # Place segment origins on a jittered grid so regions never overlap.
    stride = rows_per_bank // segments
    if per_segment > stride:
        # Pool nearly fills the bank; fall back to one dense run.
        start = int(rng.integers(max(1, rows_per_bank - pool_size + 1)))
        pool = np.arange(start, start + pool_size)
    else:
        origins = [
            seg * stride + int(rng.integers(max(1, stride - per_segment)))
            for seg in range(segments)
        ]
        rng.shuffle(origins)
        parts = []
        remaining = pool_size
        for origin in origins:
            take = min(per_segment, remaining)
            if take <= 0:
                break
            block = np.arange(origin, origin + take)
            rng.shuffle(block)  # ranks shuffled *within* the region
            parts.append(block)
            remaining -= take
        pool = np.concatenate(parts)
    return pool


def _bank_stream(
    profile: WorkloadProfile,
    bank: int,
    rows_per_bank: int,
    duration_ns: float,
    rng: np.random.Generator,
    timings: DramTimings,
    chunk: int = 8192,
) -> Iterator[ActEvent]:
    """Generate one bank's timed ACT stream for ``profile``."""
    pool = _clustered_pool(profile, rows_per_bank, rng)
    sampler = _ZipfSampler(pool, profile.zipf_exponent, rng)
    mean_interval = profile.mean_interval_ns()
    stream_row = int(rng.integers(rows_per_bank))
    time_ns = float(rng.random() * mean_interval)
    while time_ns < duration_ns:
        # Draw a chunk of exponential inter-arrival gaps (Poisson ACT
        # arrivals), floored at tRC, and a matching chunk of rows.
        gaps = np.maximum(
            rng.exponential(mean_interval, size=chunk), timings.trc
        )
        hot_rows = sampler.draw(chunk)
        is_stream = rng.random(chunk) < profile.streaming_fraction
        for i in range(chunk):
            if time_ns >= duration_ns:
                return
            if is_stream[i]:
                stream_row = (stream_row + 1) % rows_per_bank
                row = stream_row
            else:
                row = int(hot_rows[i])
            yield ActEvent(time_ns, bank, row)
            time_ns += float(gaps[i])


def profile_events(
    profile: WorkloadProfile,
    duration_ns: float,
    banks: int = 1,
    rows_per_bank: int = 65536,
    seed: int = 0,
    timings: DramTimings = DDR4_2400,
) -> Iterator[ActEvent]:
    """Timed, time-sorted ACT stream for ``profile`` over ``banks`` banks.

    Args:
        profile: The workload model.
        duration_ns: Trace length.
        banks: Banks to generate (independent streams, merged by time).
        rows_per_bank: Row address space per bank.
        seed: Base RNG seed; each bank derives an independent stream.
        timings: Timing bundle (tRC floor on inter-arrival gaps).
    """
    if duration_ns <= 0:
        raise ValueError("duration_ns must be positive")
    if banks < 1:
        raise ValueError("banks must be >= 1")
    streams = [
        _bank_stream(
            profile,
            bank,
            rows_per_bank,
            duration_ns,
                np.random.default_rng(
                # zlib.crc32 is stable across processes (hash() is
                # salted per interpreter and would break replayability).
                (seed, bank, zlib.crc32(profile.name.encode()) & 0xFFFF)
            ),
            timings,
        )
        for bank in range(banks)
    ]
    if len(streams) == 1:
        return streams[0]
    return merge_streams(*streams)
