"""PAR-BS-flavored request scheduling (the paper's Table III policy).

The paper's simulated memory controller uses Parallelism-Aware Batch
Scheduling (Mutlu & Moscibroda, ISCA 2008) with a minimalist-open page
policy.  This module implements the request-level scheduler so the
performance substrate matches Table III in structure, not just in
spirit:

* outstanding requests wait in **per-bank queues**;
* periodically the scheduler forms a **batch**: up to ``batch_cap``
  oldest requests per (core, bank) are *marked*; marked requests
  strictly outrank unmarked ones (this is PAR-BS's starvation-freedom
  and fairness device);
* cores are **ranked** within a batch by their maximum queue load
  (shorter-job-first across banks maximizes bank-level parallelism);
* within the same mark/rank class, **row-buffer hits go first**
  (FR-FCFS locality), then age.

Victim refreshes and auto-refresh block banks exactly as in the rest of
the stack, and every ACT (row miss) is reported to the bank's
mitigation engine.  The simulator is event-driven over bank-free times.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterable

from ..dram.device import DramDevice
from ..dram.geometry import DramGeometry
from ..dram.timing import DDR4_2400, DramTimings
from ..mitigations.base import MitigationFactory
from ..telemetry import runtime as _telemetry
from ..telemetry.events import NrrEmit, SchedStall

__all__ = ["MemRequest", "BatchSchedulerResult", "run_batch_scheduler"]


@dataclass(order=True)
class MemRequest:
    """One memory request (order by arrival for heap use)."""

    arrival_ns: float
    sequence: int = field(compare=True)
    core: int = field(compare=False, default=0)
    bank: int = field(compare=False, default=0)
    row: int = field(compare=False, default=0)
    is_write: bool = field(compare=False, default=False)
    # Scheduling state:
    marked: bool = field(compare=False, default=False)
    start_ns: float = field(compare=False, default=0.0)
    finish_ns: float = field(compare=False, default=0.0)


@dataclass
class BatchSchedulerResult:
    """Outcome of a scheduled run."""

    requests: int
    acts: int
    row_hits: int
    batches_formed: int
    mean_latency_ns: float
    max_latency_ns: float
    per_core_mean_latency_ns: dict[int, float]
    victim_rows_refreshed: int
    bit_flips: int

    @property
    def row_hit_rate(self) -> float:
        total = self.acts + self.row_hits
        return self.row_hits / total if total else 0.0

    def fairness_ratio(self) -> float:
        """Max/min per-core mean latency (1.0 = perfectly fair)."""
        values = [v for v in self.per_core_mean_latency_ns.values() if v > 0]
        if len(values) < 2:
            return 1.0
        return max(values) / min(values)


def run_batch_scheduler(
    requests: Iterable[MemRequest],
    factory: MitigationFactory,
    banks: int = 8,
    rows_per_bank: int = 65536,
    batch_cap: int = 5,
    timings: DramTimings = DDR4_2400,
    hammer_threshold: float = 50_000,
    track_faults: bool = False,
    max_row_run: int = 4,
) -> BatchSchedulerResult:
    """Schedule a request trace under PAR-BS + minimalist-open.

    Args:
        requests: Arrival-timed requests (sorted by arrival).
        factory: Mitigation engine factory (one per bank).
        banks: Banks in the channel.
        batch_cap: PAR-BS marking cap per (core, bank).
        max_row_run: Minimalist-open close-after-N-hits bound.
    """
    geometry = DramGeometry(
        channels=1, ranks_per_channel=1, banks_per_rank=banks,
        rows_per_bank=rows_per_bank,
    )
    device = DramDevice.build(
        geometry, timings, hammer_threshold, track_faults=track_faults
    )
    engines = [factory(b, rows_per_bank) for b in range(banks)]

    pending = sorted(requests)
    queues: list[list[MemRequest]] = [[] for _ in range(banks)]
    run_length = [0] * banks
    completed: list[MemRequest] = []
    acts = row_hits = batches = 0
    nrr_rows = 0
    bit_flips = 0
    next_arrival = 0
    now_ns = pending[0].arrival_ns if pending else 0.0

    service_hit = timings.tcl + timings.tbus
    service_miss = timings.trcd + timings.tcl + timings.tbus

    def admit_until(time_ns: float) -> None:
        nonlocal next_arrival
        while next_arrival < len(pending) and (
            pending[next_arrival].arrival_ns <= time_ns
        ):
            request = pending[next_arrival]
            queues[request.bank].append(request)
            next_arrival += 1

    def any_marked() -> bool:
        return any(r.marked for queue in queues for r in queue)

    def form_batch() -> None:
        nonlocal batches
        per_core_bank: dict[tuple[int, int], int] = {}
        for queue in queues:
            for request in sorted(queue, key=lambda r: r.arrival_ns):
                key = (request.core, request.bank)
                if per_core_bank.get(key, 0) < batch_cap:
                    request.marked = True
                    per_core_bank[key] = per_core_bank.get(key, 0) + 1
        batches += 1

    def core_ranks() -> dict[int, int]:
        """PAR-BS shortest-job ranking: cores with the smallest maximum
        per-bank marked load go first (rank 0 = best)."""
        load: dict[int, int] = {}
        for queue in queues:
            counts: dict[int, int] = {}
            for request in queue:
                if request.marked:
                    counts[request.core] = counts.get(request.core, 0) + 1
            for core, count in counts.items():
                load[core] = max(load.get(core, 0), count)
        ordered = sorted(load, key=lambda core: load[core])
        return {core: rank for rank, core in enumerate(ordered)}

    while next_arrival < len(pending) or any(queues):
        admit_until(now_ns)
        if not any(queues):
            # Idle: jump to the next arrival.
            now_ns = pending[next_arrival].arrival_ns
            continue
        if not any_marked():
            form_batch()
        ranks = core_ranks()

        progressed = False
        for bank_index in range(banks):
            queue = queues[bank_index]
            if not queue:
                continue
            bank_model = device.bank(bank_index)
            free_at = bank_model.earliest_activate(now_ns)
            if free_at > now_ns:
                continue  # bank busy; try others
            open_row = bank_model.bank.open_row

            def priority(request: MemRequest):
                is_hit = (
                    open_row == request.row
                    and run_length[bank_index] < max_row_run
                )
                return (
                    0 if request.marked else 1,
                    0 if is_hit else 1,
                    ranks.get(request.core, len(ranks)),
                    request.arrival_ns,
                )

            request = min(
                (r for r in queue if r.arrival_ns <= now_ns),
                key=priority,
                default=None,
            )
            if request is None:
                continue
            queue.remove(request)
            is_hit = (
                open_row == request.row
                and run_length[bank_index] < max_row_run
            )
            request.start_ns = now_ns
            if is_hit:
                row_hits += 1
                run_length[bank_index] += 1
                request.finish_ns = now_ns + service_hit
                # Occupy the bank for the burst (modeled via a column
                # access; the bank keeps its row open).
                bank_model.bank.access(request.row, now_ns,
                                       request.is_write)
            else:
                flips = bank_model.activate(request.row, now_ns)
                bit_flips += len(flips)
                acts += 1
                run_length[bank_index] = 0
                request.finish_ns = now_ns + service_miss
                bus = _telemetry.BUS
                for ref_event in bank_model.drain_refresh_events():
                    for directive in engines[bank_index].on_refresh_command(
                        ref_event.time_ns
                    ):
                        rows = list(directive.victim_rows)
                        bank_model.bank.nearby_row_refresh(
                            len(rows), ref_event.time_ns
                        )
                        if bank_model.faults is not None:
                            bank_model.faults.on_refresh_range(rows)
                        nrr_rows += len(rows)
                        if bus is not None:
                            bus.publish(
                                NrrEmit(
                                    time_ns=ref_event.time_ns,
                                    bank=bank_index,
                                    aggressor_row=directive.aggressor_row,
                                    victim_rows=len(rows),
                                    reason=directive.reason,
                                )
                            )
                for directive in engines[bank_index].on_activate(
                    request.row, now_ns
                ):
                    rows = list(directive.victim_rows)
                    bank_model.bank.nearby_row_refresh(len(rows), now_ns)
                    if bank_model.faults is not None:
                        bank_model.faults.on_refresh_range(rows)
                    nrr_rows += len(rows)
                    if bus is not None:
                        bus.publish(
                            NrrEmit(
                                time_ns=now_ns,
                                bank=bank_index,
                                aggressor_row=directive.aggressor_row,
                                victim_rows=len(rows),
                                reason=directive.reason,
                            )
                        )
                if request.start_ns > request.arrival_ns:
                    if bus is not None:
                        bus.publish(
                            SchedStall(
                                time_ns=request.arrival_ns,
                                bank=bank_index,
                                row=request.row,
                                delay_ns=request.start_ns
                                - request.arrival_ns,
                            )
                        )
            completed.append(request)
            progressed = True
        if not progressed:
            # Everything is blocked: advance to the earliest of the next
            # bank-free time or the next arrival.
            candidates = [
                device.bank(b).earliest_activate(now_ns)
                for b in range(banks)
                if queues[b]
            ]
            if next_arrival < len(pending):
                candidates.append(pending[next_arrival].arrival_ns)
            now_ns = max(min(candidates), now_ns + timings.trc / 4)

    latencies = [r.finish_ns - r.arrival_ns for r in completed]
    per_core: dict[int, list[float]] = {}
    for request in completed:
        per_core.setdefault(request.core, []).append(
            request.finish_ns - request.arrival_ns
        )
    return BatchSchedulerResult(
        requests=len(completed),
        acts=acts,
        row_hits=row_hits,
        batches_formed=batches,
        mean_latency_ns=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        max_latency_ns=max(latencies, default=0.0),
        per_core_mean_latency_ns={
            core: sum(values) / len(values)
            for core, values in per_core.items()
        },
        victim_rows_refreshed=nrr_rows,
        bit_flips=bit_flips,
    )


def requests_from_profile(
    workload: str,
    duration_ns: float,
    cores: int = 4,
    banks: int = 8,
    rows_per_bank: int = 65536,
    seed: int = 0,
) -> list[MemRequest]:
    """Arrival-timed request trace derived from a workload profile.

    Requests arrive open-loop at the profile's calibrated rate, spread
    over cores round-robin, with rows drawn from the profile's event
    generator (so spatial structure carries over).
    """
    from ..workloads.spec_like import REALISTIC_PROFILES, profile_events

    profile = REALISTIC_PROFILES[workload]
    counter = itertools.count()
    requests = []
    for event in profile_events(
        profile, duration_ns, banks=1, rows_per_bank=rows_per_bank,
        seed=seed,
    ):
        sequence = next(counter)
        requests.append(
            MemRequest(
                arrival_ns=event.time_ns,
                sequence=sequence,
                core=sequence % cores,
                bank=(event.row >> 6) % banks,
                row=event.row,
                is_write=sequence % 4 == 0,
            )
        )
    return requests
