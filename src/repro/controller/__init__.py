"""Memory-controller layer: mitigation hook + command scheduling."""

from .batch_scheduler import (
    BatchSchedulerResult,
    MemRequest,
    requests_from_profile,
    run_batch_scheduler,
)
from .mc import ControllerCounters, MemoryController
from .scheduler import LatencySummary, LatencyTracker

__all__ = [
    "MemoryController",
    "ControllerCounters",
    "LatencyTracker",
    "LatencySummary",
    "MemRequest",
    "BatchSchedulerResult",
    "run_batch_scheduler",
    "requests_from_profile",
]
