"""Latency bookkeeping for the command-level performance model.

The paper measures performance as weighted-speedup reduction in a
16-core McSimA+ simulation, where the *only* source of overhead is
victim-row refreshes blocking banks for ``tRC x rows`` (Section V-B).
Our substitution (DESIGN.md) keeps exactly that mechanism: ACTs arrive
at their trace timestamps, banks serve them under DRAM timing, NRR
commands block banks, and the resulting queueing delays are what
:class:`LatencyTracker` aggregates.  Relative mean-service-delay growth
is our slowdown proxy; the zero/small/large ordering across schemes is
preserved by construction because the blocked-time mechanism is the
paper's own.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..telemetry import runtime as _telemetry

__all__ = ["LatencyTracker", "LatencySummary"]


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of per-ACT queueing delays."""

    count: int
    mean_ns: float
    max_ns: float
    p95_ns: float
    p99_ns: float
    total_ns: float
    #: Fraction of ACTs that were delayed at all.
    delayed_fraction: float

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class LatencyTracker:
    """Streaming delay statistics with a bounded-memory histogram.

    Delays are accumulated into logarithmic buckets (sub-ns resolution
    is irrelevant; NRR blocks are tens of microseconds), so traces of
    hundreds of millions of ACTs summarize in O(1) memory.
    """

    #: Bucket boundaries in ns: 0, then powers of two from 1 ns to ~1 s.
    _MAX_EXPONENT = 30

    def __init__(self) -> None:
        self._count = 0
        self._delayed = 0
        self._total = 0.0
        self._max = 0.0
        self._buckets = [0] * (self._MAX_EXPONENT + 2)

    def record(self, delay_ns: float) -> None:
        """Record one ACT's queueing delay (0 for undelayed ACTs)."""
        if delay_ns < 0:
            raise ValueError(f"negative delay {delay_ns}")
        self._count += 1
        bus = _telemetry.BUS
        if bus is not None:
            bus.registry.counter("sched.acts").inc()
            if delay_ns > 0:
                bus.registry.counter("sched.delayed_acts").inc()
                bus.registry.histogram("sched.delay_ns").observe(delay_ns)
        if delay_ns > 0:
            self._delayed += 1
            self._total += delay_ns
            if delay_ns > self._max:
                self._max = delay_ns
            exponent = min(
                self._MAX_EXPONENT, max(0, int(math.log2(max(delay_ns, 1.0))))
            )
            self._buckets[exponent + 1] += 1
        else:
            self._buckets[0] += 1

    def _percentile(self, fraction: float) -> float:
        """Upper bound of the bucket containing the given percentile."""
        if self._count == 0:
            return 0.0
        target = fraction * self._count
        running = 0
        for index, bucket in enumerate(self._buckets):
            running += bucket
            if running >= target:
                if index == 0:
                    return 0.0
                return float(2 ** index)
        return self._max

    def summary(self) -> LatencySummary:
        if self._count == 0:
            return LatencySummary.empty()
        return LatencySummary(
            count=self._count,
            mean_ns=self._total / self._count,
            max_ns=self._max,
            p95_ns=self._percentile(0.95),
            p99_ns=self._percentile(0.99),
            total_ns=self._total,
            delayed_fraction=self._delayed / self._count,
        )

    def merge(self, other: "LatencyTracker") -> None:
        """Fold another tracker's population into this one."""
        self._count += other._count
        self._delayed += other._delayed
        self._total += other._total
        self._max = max(self._max, other._max)
        for index in range(len(self._buckets)):
            self._buckets[index] += other._buckets[index]
