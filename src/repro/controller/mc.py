"""The memory controller: where mitigation engines live (Section IV-A).

Graphene and the compared schemes are all deployed inside the memory
controller: every ACT command is reported to the bank's mitigation
engine, and any :class:`~repro.mitigations.base.RefreshDirective` the
engine returns is executed immediately as an NRR command -- blocking
the bank for ``tRC`` per refreshed row plus a ``tRP`` precharge, the
paper's overhead accounting.  Regular REF commands (one per tREFI,
handled by the device's refresh engine) are forwarded to engines with
periodic behavior (TWiCe pruning, PRoHIT piggyback refreshes).

ACTs arrive with trace timestamps; if the bank is still blocked
(refresh, NRR, tRC), the command is delayed and the delay recorded --
that queueing is the entire performance-overhead mechanism of the
paper's evaluation (Section V-B methodology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..dram.device import DramDevice
from ..dram.faults import BitFlip
from ..mitigations.base import MitigationEngine, MitigationFactory, RefreshDirective
from ..telemetry import runtime as _telemetry
from ..telemetry.events import NrrEmit, SchedStall
from ..workloads.trace import ActEvent
from .scheduler import LatencySummary, LatencyTracker

__all__ = ["ControllerCounters", "MemoryController"]


def _engine_probe(engine: MitigationEngine):
    """Build a sampler probe reading one engine's live tracking state.

    Works for any scheme: table-backed engines (Graphene wraps a
    :class:`~repro.core.misra_gries.MisraGriesTable` behind an
    ``engine.table`` attribute) report occupancy and spillover;
    everything reports cumulative refresh work from the shared stats.
    """
    inner = getattr(engine, "engine", engine)
    table = getattr(inner, "table", None)

    def probe() -> dict[str, float]:
        snapshot: dict[str, float] = {
            "rows_refreshed": engine.stats.rows_refreshed,
            "directives": engine.stats.refresh_directives,
        }
        if table is not None:
            snapshot["occupancy"] = len(table)
            snapshot["spillover"] = getattr(table, "spillover", 0)
        return snapshot

    return probe


@dataclass
class ControllerCounters:
    """MC-level tallies accumulated over a run."""

    acts_issued: int = 0
    nrr_commands: int = 0
    nrr_rows: int = 0
    ref_ticks_forwarded: int = 0
    bit_flips: int = 0

    def absorb(self, other: "ControllerCounters") -> None:
        """Fold another tally into this one.

        Every field is an order-independent sum, so shard workers can
        tally locally and the parent can absorb the deltas in any
        order without changing the totals.
        """
        self.acts_issued += other.acts_issued
        self.nrr_commands += other.nrr_commands
        self.nrr_rows += other.nrr_rows
        self.ref_ticks_forwarded += other.ref_ticks_forwarded
        self.bit_flips += other.bit_flips

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        """Compact wire form for shard-pool replies."""
        return (
            self.acts_issued,
            self.nrr_commands,
            self.nrr_rows,
            self.ref_ticks_forwarded,
            self.bit_flips,
        )


class MemoryController:
    """Binds a DRAM device to per-bank mitigation engines.

    Args:
        device: The DRAM device model (banks + refresh + fault referee).
        factory: Builds one mitigation engine per bank.
        keep_directive_log: Retain every executed directive (memory cost
            proportional to directive count; enable for fine-grained
            analyses, off by default for long runs).
    """

    def __init__(
        self,
        device: DramDevice,
        factory: MitigationFactory,
        keep_directive_log: bool = False,
    ) -> None:
        self.device = device
        rows = device.geometry.rows_per_bank
        self.engines: list[MitigationEngine] = [
            factory(bank, rows) for bank in range(device.geometry.total_banks)
        ]
        self.latency = LatencyTracker()
        self.counters = ControllerCounters()
        self.bit_flips: list[BitFlip] = []
        self.directive_log: list[RefreshDirective] | None = (
            [] if keep_directive_log else None
        )
        bus = _telemetry.BUS
        if bus is not None and bus.sampler is not None:
            for bank, engine in enumerate(self.engines):
                bus.sampler.add_probe(f"bank{bank}", _engine_probe(engine))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, events: Iterable[ActEvent]) -> None:
        """Drive the full system from a time-sorted ACT stream."""
        for event in events:
            self.step(event)

    def step(self, event: ActEvent) -> list[RefreshDirective]:
        """Process one ACT end to end; returns directives it caused."""
        bank_model = self.device.bank(event.bank)
        engine = self.engines[event.bank]

        # 1. Schedule the ACT at the first legal time; the wait (bank
        #    blocked by refresh/NRR/tRC) is the performance overhead.
        issue_ns = bank_model.earliest_activate(event.time_ns)
        delay_ns = issue_ns - event.time_ns
        self.latency.record(delay_ns)
        if delay_ns > 0:
            bus = _telemetry.BUS
            if bus is not None:
                bus.publish(
                    SchedStall(
                        time_ns=event.time_ns,
                        bank=event.bank,
                        row=event.row,
                        delay_ns=delay_ns,
                    )
                )
        flips = bank_model.activate(event.row, issue_ns)
        if flips:
            self.bit_flips.extend(flips)
            self.counters.bit_flips += len(flips)
        self.counters.acts_issued += 1

        directives: list[RefreshDirective] = []

        # 2. Forward any regular REF commands that elapsed, so periodic
        #    schemes (TWiCe, PRoHIT) can act on their tREFI tick.
        for ref_event in bank_model.drain_refresh_events():
            self.counters.ref_ticks_forwarded += 1
            directives.extend(engine.on_refresh_command(ref_event.time_ns))

        # 3. Report the ACT to the mitigation engine.
        directives.extend(engine.on_activate(event.row, issue_ns))

        # 4. Execute every directive as an NRR, immediately.  The NRR
        #    lands on the bank the directive names -- not necessarily
        #    the ACT's bank: cross-bank trackers (ABACuS) refresh the
        #    victim neighborhood in *every* bank on one trigger.
        for directive in directives:
            self._execute_directive(
                self.device.bank(directive.bank), directive, issue_ns
            )
        return directives

    def _execute_directive(self, bank_model, directive, now_ns: float) -> None:
        rows = list(directive.victim_rows)
        if not rows:
            return
        bank_model.bank.nearby_row_refresh(len(rows), now_ns)
        if bank_model.faults is not None:
            bank_model.faults.on_refresh_range(rows)
        self.counters.nrr_commands += 1
        self.counters.nrr_rows += len(rows)
        bus = _telemetry.BUS
        if bus is not None:
            bus.publish(
                NrrEmit(
                    time_ns=now_ns,
                    bank=directive.bank,
                    aggressor_row=directive.aggressor_row,
                    victim_rows=len(rows),
                    reason=directive.reason,
                )
            )
        if self.directive_log is not None:
            self.directive_log.append(directive)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def latency_summary(self) -> LatencySummary:
        return self.latency.summary()

    def engine_stats(self):
        """Per-bank mitigation statistics."""
        return [engine.stats for engine in self.engines]

    def total_victim_rows_refreshed(self) -> int:
        return sum(engine.stats.rows_refreshed for engine in self.engines)

    def describe(self) -> str:
        scheme = self.engines[0].describe() if self.engines else "none"
        return (
            f"MemoryController(banks={len(self.engines)}, scheme={scheme})"
        )
