"""Closed-loop multicore memory simulation (weighted speedup).

The paper's performance numbers come from a 16-core McSimA+ simulation
reporting *weighted speedup* reduction.  The open-loop ACT-stream path
(:mod:`repro.sim.simulator`) reproduces the energy metrics exactly but
approximates performance; this module closes the loop:

* each of N **cores** issues memory requests one at a time -- the next
  request enters the queue only after the previous one completes plus a
  think time (compute between misses), so memory slowdowns feed back
  into request rates exactly as they throttle a real core;
* requests are served per bank in FCFS order under a
  **minimalist-open page policy** (Table III): a row stays open for a
  bounded run of hits, then precharges.  Only row *misses* issue ACT
  commands -- and only ACTs are reported to the mitigation engine and
  deposit Row Hammer disturbance, matching real command streams;
* victim refreshes block banks (tRC x rows + tRP), auto-refresh blocks
  them for tRFC every tREFI, and both delays propagate into core
  progress;
* **weighted speedup** of a run is  sum_i(throughput_i / alone_i) where
  ``alone_i`` is the core's throughput on an unloaded memory system;
  the paper's metric -- weighted-speedup *reduction due to victim
  refreshes* -- is then  ``1 - WS(scheme) / WS(no mitigation)``.

The model is deliberately simple where the paper's effects do not live
(no OOO ILP, no cache hierarchy -- think time stands in for both) and
faithful where they do (bank occupancy, ACT filtering by row-buffer
hits, refresh interference).
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field

from ..dram.device import DramDevice
from ..dram.geometry import DramGeometry
from ..dram.timing import DDR4_2400, DramTimings
from ..mitigations.base import MitigationFactory
from ..workloads.spec_like import REALISTIC_PROFILES, WorkloadProfile

__all__ = [
    "CoreProfile",
    "ClosedLoopResult",
    "run_closed_loop",
    "weighted_speedup_reduction",
    "core_profile_for",
]


@dataclass(frozen=True)
class CoreProfile:
    """Memory behavior of one simulated core.

    Attributes:
        name: Label (usually the workload profile it derives from).
        think_time_ns: Mean compute time between memory requests.
        row_hit_fraction: Probability a request hits the open row
            (spatial locality soaked up by the row buffer).
        working_set_rows: Hot row pool size for miss addresses.
        zipf_exponent: Popularity skew of the pool.
    """

    name: str
    think_time_ns: float
    row_hit_fraction: float
    working_set_rows: int
    zipf_exponent: float

    def __post_init__(self) -> None:
        if self.think_time_ns < 0:
            raise ValueError("think_time_ns must be >= 0")
        if not 0.0 <= self.row_hit_fraction < 1.0:
            raise ValueError("row_hit_fraction must be in [0, 1)")
        if self.working_set_rows < 1:
            raise ValueError("working_set_rows must be >= 1")


def core_profile_for(
    workload: str,
    cores: int = 16,
    banks: int = 16,
    timings: DramTimings = DDR4_2400,
) -> CoreProfile:
    """Derive a core profile from a named workload profile.

    The think time is set so that ``cores`` unthrottled cores would
    produce the workload's calibrated per-bank ACT rate across
    ``banks`` banks: ACT rate = request rate x (1 - hit fraction).
    """
    profile: WorkloadProfile = REALISTIC_PROFILES[workload]
    hit_fraction = min(0.85, 0.35 + 0.5 * profile.streaming_fraction)
    target_act_rate = profile.acts_per_second_per_bank * banks  # per second
    request_rate = target_act_rate / (1.0 - hit_fraction)
    per_core_interval_ns = cores / request_rate * 1e9
    # The service time itself (~30-50 ns) eats part of the interval.
    think = max(0.0, per_core_interval_ns - 40.0)
    return CoreProfile(
        name=workload,
        think_time_ns=think,
        row_hit_fraction=hit_fraction,
        working_set_rows=profile.working_set_rows,
        zipf_exponent=profile.zipf_exponent,
    )


@dataclass
class ClosedLoopResult:
    """Outcome of one closed-loop run."""

    scheme: str
    workload: str
    cores: int
    banks: int
    duration_ns: float
    requests_completed: list[int]
    acts: int
    row_hits: int
    victim_refresh_directives: int
    victim_rows_refreshed: int
    bit_flips: int

    @property
    def total_requests(self) -> int:
        return sum(self.requests_completed)

    @property
    def throughput_per_core(self) -> list[float]:
        """Requests per second per core."""
        seconds = self.duration_ns / 1e9
        return [count / seconds for count in self.requests_completed]

    @property
    def row_hit_rate(self) -> float:
        total = self.acts + self.row_hits
        return self.row_hits / total if total else 0.0


class _ZipfRows:
    """Zipf row sampler over a per-core pool (shared helper)."""

    def __init__(self, pool_size: int, exponent: float, rows: int,
                 rng: random.Random) -> None:
        pool_size = min(pool_size, rows)
        start = rng.randrange(max(1, rows - pool_size + 1))
        self._pool = list(range(start, start + pool_size))
        rng.shuffle(self._pool)
        weights = [
            (rank + 1) ** (-exponent) if exponent > 0 else 1.0
            for rank in range(pool_size)
        ]
        total = sum(weights)
        self._cdf = []
        cumulative = 0.0
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._rng = rng

    def draw(self) -> int:
        u = self._rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return self._pool[lo]


def run_closed_loop(
    profile: CoreProfile,
    factory: MitigationFactory,
    scheme: str,
    duration_ns: float,
    cores: int = 16,
    banks: int = 16,
    rows_per_bank: int = 65536,
    hammer_threshold: float = 50_000,
    timings: DramTimings = DDR4_2400,
    max_row_run: int = 4,
    seed: int = 0,
    track_faults: bool = False,
) -> ClosedLoopResult:
    """Simulate N cores sharing one memory channel under a scheme.

    Args:
        profile: Per-core memory behavior.
        factory: Mitigation engine factory (one per bank).
        scheme: Result label.
        duration_ns: Simulated time.
        cores: Core count (paper: 16).
        banks: Banks in the shared channel (paper rank: 16).
        max_row_run: Minimalist-open close-after-N-hits bound.
        seed: RNG seed (per-core substreams derived).
    """
    if cores < 1 or banks < 1:
        raise ValueError("cores and banks must be >= 1")
    geometry = DramGeometry(
        channels=1, ranks_per_channel=1, banks_per_rank=banks,
        rows_per_bank=rows_per_bank,
    )
    device = DramDevice.build(
        geometry, timings, hammer_threshold, track_faults=track_faults
    )
    engines = [factory(b, rows_per_bank) for b in range(banks)]

    rng = random.Random(seed)
    samplers = [
        _ZipfRows(profile.working_set_rows, profile.zipf_exponent,
                  rows_per_bank, random.Random(rng.randrange(2**31)))
        for _ in range(cores)
    ]
    core_rngs = [random.Random(rng.randrange(2**31)) for _ in range(cores)]

    #: Per-bank open-row run length (minimalist-open bookkeeping).
    run_length = [0] * banks
    completed = [0] * cores
    acts = 0
    row_hits = 0
    nrr_commands = 0
    nrr_rows = 0
    bit_flips = 0

    # Event queue of (ready_time, core). Start staggered.
    queue: list[tuple[float, int]] = [
        (core_rngs[c].random() * max(1.0, profile.think_time_ns), c)
        for c in range(cores)
    ]
    heapq.heapify(queue)

    service_hit = timings.tcl + timings.tbus
    service_miss = timings.trcd + timings.tcl + timings.tbus

    while queue:
        ready_ns, core = heapq.heappop(queue)
        if ready_ns >= duration_ns:
            continue
        crng = core_rngs[core]
        row = samplers[core].draw()
        # Row-granule bank interleaving: 64-row granules rotate across
        # banks, so hot row *regions* keep partial bank affinity (as
        # with real high-order-row/bank address mapping) while load
        # still spreads across the channel.
        bank_index = (row >> 6) % banks
        bank_model = device.bank(bank_index)
        bank = bank_model.bank

        is_hit = (
            bank.open_row is not None
            and run_length[bank_index] < max_row_run
            and crng.random() < profile.row_hit_fraction
        )
        if is_hit:
            # Row-buffer hit: no ACT, short service, no tracker update.
            start = max(ready_ns, bank.busy_until())
            done = start + service_hit
            row_hits += 1
            run_length[bank_index] += 1
        else:
            # Row miss: precharge + ACT; the mitigation engine sees it.
            issue = bank_model.earliest_activate(ready_ns)
            flips = bank_model.activate(row, issue)
            bit_flips += len(flips)
            acts += 1
            run_length[bank_index] = 0
            done = issue + service_miss
            for ref_event in bank_model.drain_refresh_events():
                for directive in engines[bank_index].on_refresh_command(
                    ref_event.time_ns
                ):
                    rows = list(directive.victim_rows)
                    bank.nearby_row_refresh(len(rows), ref_event.time_ns)
                    if bank_model.faults is not None:
                        bank_model.faults.on_refresh_range(rows)
                    nrr_commands += 1
                    nrr_rows += len(rows)
            for directive in engines[bank_index].on_activate(row, issue):
                rows = list(directive.victim_rows)
                bank.nearby_row_refresh(len(rows), issue)
                if bank_model.faults is not None:
                    bank_model.faults.on_refresh_range(rows)
                nrr_commands += 1
                nrr_rows += len(rows)

        completed[core] += 1
        think = (
            crng.expovariate(1.0 / profile.think_time_ns)
            if profile.think_time_ns > 0
            else 0.0
        )
        heapq.heappush(queue, (done + think, core))

    return ClosedLoopResult(
        scheme=scheme,
        workload=profile.name,
        cores=cores,
        banks=banks,
        duration_ns=duration_ns,
        requests_completed=completed,
        acts=acts,
        row_hits=row_hits,
        victim_refresh_directives=nrr_commands,
        victim_rows_refreshed=nrr_rows,
        bit_flips=bit_flips,
    )


def weighted_speedup_reduction(
    with_scheme: ClosedLoopResult, baseline: ClosedLoopResult
) -> float:
    """The paper's Fig. 8(c) metric from two closed-loop runs.

    ``1 - WS(scheme)/WS(baseline)`` with per-core throughput standing in
    for IPC (cores are memory-bound by construction; the "alone"
    normalization cancels because both runs share it).
    """
    if with_scheme.cores != baseline.cores:
        raise ValueError("core counts differ")
    if with_scheme.workload != baseline.workload:
        raise ValueError("weighted speedup compares the same workload")
    ratios = [
        s / b if b > 0 else 1.0
        for s, b in zip(
            with_scheme.requests_completed, baseline.requests_completed
        )
    ]
    ws = sum(ratios) / len(ratios)
    return max(0.0, 1.0 - ws)
