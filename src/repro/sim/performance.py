"""Performance-overhead model (the paper's Fig. 8(c) / Fig. 9(d) metric).

The paper reports weighted-speedup reduction from a 16-core cycle
simulation, where the only perturbation between schemes is victim-row
refreshes blocking banks for ``tRC x rows (+ tRP)``.  Our substitution
(DESIGN.md) keeps that mechanism and converts the resulting queueing
delays into a slowdown figure:

    A memory-bound core's progress rate is ~inversely proportional to
    its average memory service time.  The service time of an ACT-level
    access is a fixed device portion (tRCD + tCL + tRP, the row-miss
    pipeline) plus the queueing delay the controller measured.  The
    slowdown of a scheme relative to the unprotected baseline is then

        overhead = (delay_scheme - delay_base) / (service_floor + delay_base)

    damped by the workload's memory intensity (fraction of time the
    cores actually wait on memory), for which we use the measured
    bank-utilization of the run capped at 1.

Zero victim refreshes (Graphene/TWiCe on realistic workloads) gives
exactly 0 overhead; PARA's sparse single-row NRRs give a small figure;
CBT's multi-hundred-row bursts dominate -- the Fig. 8(c) ordering falls
out of the mechanism, as it does in the paper.
"""

from __future__ import annotations

from ..dram.timing import DDR4_2400, DramTimings
from .metrics import SimulationResult

__all__ = ["service_floor_ns", "memory_intensity", "performance_overhead"]


def service_floor_ns(timings: DramTimings = DDR4_2400) -> float:
    """Unloaded service time of a row-miss access (tRCD + tCL + tRP)."""
    return timings.trcd + timings.tcl + timings.trp


def memory_intensity(result: SimulationResult) -> float:
    """Fraction of time the memory system is the bottleneck.

    Approximated by per-bank ACT-occupancy utilization: each ACT holds
    a bank for at least tRC, so utilization = acts x tRC / (banks x
    duration), capped at 1.  Memory-bound workloads approach their
    bandwidth share; light ones dilute memory slowdowns accordingly.
    """
    if result.duration_ns <= 0 or result.banks == 0:
        return 0.0
    occupancy = result.acts * result.timings.trc
    return min(1.0, occupancy / (result.duration_ns * result.banks))


def performance_overhead(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """Slowdown of ``result``'s scheme versus the unprotected baseline.

    Args:
        result: Run of the evaluated scheme.
        baseline: Run of the same workload with ``NoMitigation`` (same
            trace seed, so queueing differences stem only from victim
            refreshes).

    Returns:
        Fractional slowdown (multiply by 100 for the paper's percent
        scale); 0.0 when the scheme added no delay.
    """
    if result.workload != baseline.workload:
        raise ValueError(
            "performance_overhead compares runs of the same workload; got "
            f"{result.workload!r} vs {baseline.workload!r}"
        )
    floor = service_floor_ns(result.timings)
    base_delay = baseline.latency.mean_ns
    extra_delay = result.latency.mean_ns - base_delay
    if extra_delay <= 0:
        return 0.0
    slowdown = extra_delay / (floor + base_delay)
    return slowdown * memory_intensity(result)
