"""The evaluated system configuration (paper Table III).

Bundles the architectural parameters of the paper's simulation target:
a 16-core out-of-order processor with four single-rank DDR4-2400
channels (128 GB, 76.8 GB/s).  The core-side parameters are carried for
documentation/reporting; the simulation itself operates at the memory-
command level (see the substitution notes in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.faults import CouplingProfile
from ..dram.geometry import DramGeometry
from ..dram.timing import DDR4_2400, DramTimings

__all__ = ["SystemConfig", "PAPER_SYSTEM", "table3_rows"]


@dataclass(frozen=True)
class SystemConfig:
    """Full system description, defaulting to the paper's Table III."""

    # Core side (documentation; the command-level model abstracts it).
    cores: int = 16
    core_ghz: float = 3.6
    l1_kb: int = 16
    l2_kb: int = 128
    l3_mb: int = 16
    # Memory side.
    module: str = "DDR4-2400"
    capacity_gb: int = 128
    bandwidth_gbps: float = 76.8
    scheduling: str = "PAR-BS"
    page_policy: str = "Minimalist-open"
    geometry: DramGeometry = field(default_factory=DramGeometry)
    timings: DramTimings = field(default_factory=lambda: DDR4_2400)
    hammer_threshold: int = 50_000
    coupling: CouplingProfile = field(
        default_factory=CouplingProfile.adjacent_only
    )

    @property
    def total_banks(self) -> int:
        return self.geometry.total_banks


#: The configuration of Table III.
PAPER_SYSTEM = SystemConfig()


def table3_rows(config: SystemConfig = PAPER_SYSTEM) -> list[tuple[str, str]]:
    """Table III as (parameter, value) rows for reports."""
    t = config.timings
    g = config.geometry
    return [
        ("Core", f"{config.core_ghz} GHz {config.cores}-core OOO"),
        ("Private Cache", f"{config.l1_kb}KB L1 I/D, {config.l2_kb}KB L2"),
        ("Shared Cache", f"{config.l3_mb} MB L3"),
        ("Module", config.module),
        (
            "Configuration",
            f"{g.channels} channels; {g.ranks_per_channel} rank per channel",
        ),
        ("Capacity", f"{config.capacity_gb}GB"),
        ("Bandwidth", f"{config.bandwidth_gbps} GB/s"),
        ("Scheduling", config.scheduling),
        ("Page-Policy", config.page_policy),
        ("tRFC, tRC", f"{t.trfc:.0f} ns, {t.trc:.0f} ns"),
        ("tRCD, tRP, tCL", f"{t.trcd} ns each"),
    ]
