"""Full-system simulation: the paper's 64-bank machine in one call.

Most experiments run one bank (per-bank metrics are independent), but
system-level questions -- aggregate table cost, total extra refreshes,
a mixed fleet of workloads across banks, an attacker pinned to one bank
among busy neighbors -- need the whole Table III machine.

:func:`run_system` builds the 4-channel x 16-bank device, assigns each
bank a workload stream (realistic profile, attack pattern, or idle),
and returns per-bank plus aggregate results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..controller.mc import MemoryController
from ..dram.device import DramDevice
from ..dram.faults import CouplingProfile
from ..dram.timing import DramTimings
from ..mitigations.base import MitigationFactory
from ..workloads.spec_like import REALISTIC_PROFILES, profile_events
from ..workloads.synthetic import SYNTHETIC_PATTERNS, synthetic_events
from ..workloads.trace import ActEvent, merge_streams
from .system import PAPER_SYSTEM, SystemConfig

__all__ = ["BankAssignment", "SystemResult", "run_system"]


@dataclass(frozen=True)
class BankAssignment:
    """What one bank executes during the run.

    Attributes:
        kind: "realistic" (a named profile), "synthetic" (a named S
            pattern), or "idle".
        name: Profile/pattern name; ignored for idle banks.
        seed: Per-bank trace seed.
    """

    kind: str
    name: str = ""
    seed: int = 0

    def stream(
        self,
        bank: int,
        duration_ns: float,
        rows_per_bank: int,
        timings: DramTimings,
    ) -> Iterable[ActEvent]:
        if self.kind == "idle":
            return iter(())
        if self.kind == "realistic":
            events = profile_events(
                REALISTIC_PROFILES[self.name],
                duration_ns,
                banks=1,
                rows_per_bank=rows_per_bank,
                seed=self.seed,
                timings=timings,
            )
        elif self.kind == "synthetic":
            rows = SYNTHETIC_PATTERNS[self.name](rows_per_bank, self.seed)
            events = synthetic_events(
                rows, duration_ns=duration_ns, timings=timings
            )
        else:
            raise ValueError(f"unknown assignment kind {self.kind!r}")
        return (
            ActEvent(event.time_ns, bank, event.row) for event in events
        )


@dataclass
class SystemResult:
    """Aggregate outcome of a full-system run."""

    banks: int
    duration_ns: float
    acts: int
    victim_refresh_directives: int
    victim_rows_refreshed: int
    bit_flips: int
    total_table_bits: int
    per_bank_rows_refreshed: list[int]
    mean_delay_ns: float

    def refresh_energy_increase(self, rows_per_bank: int) -> float:
        windows = self.duration_ns / PAPER_SYSTEM.timings.trefw
        if windows <= 0:
            return 0.0
        return self.victim_rows_refreshed / (
            self.banks * rows_per_bank * windows
        )

    def hottest_bank(self) -> int:
        """Bank index with the most victim-refresh work."""
        return max(
            range(self.banks),
            key=lambda b: self.per_bank_rows_refreshed[b],
        )


def run_system(
    assignments: Mapping[int, BankAssignment],
    factory: MitigationFactory,
    duration_ns: float,
    system: SystemConfig = PAPER_SYSTEM,
    track_faults: bool = False,
    default: BankAssignment | None = None,
) -> SystemResult:
    """Simulate the whole Table III machine.

    Args:
        assignments: bank index -> workload assignment; unassigned banks
            use ``default`` (idle when None).
        factory: Mitigation factory (one engine per bank).
        duration_ns: Simulated time.
        system: Machine description (geometry, timings, T_RH).
        track_faults: Enable the fault referee on every bank.
        default: Assignment for banks not listed.
    """
    geometry = system.geometry
    for bank in assignments:
        if not 0 <= bank < geometry.total_banks:
            raise IndexError(
                f"bank {bank} outside the {geometry.total_banks}-bank system"
            )
    device = DramDevice.build(
        geometry=geometry,
        timings=system.timings,
        hammer_threshold=system.hammer_threshold,
        coupling=system.coupling,
        track_faults=track_faults,
    )
    controller = MemoryController(device, factory)

    streams = []
    for bank in range(geometry.total_banks):
        assignment = assignments.get(bank, default)
        if assignment is None or assignment.kind == "idle":
            continue
        streams.append(
            assignment.stream(
                bank, duration_ns, geometry.rows_per_bank, system.timings
            )
        )
    controller.run(merge_streams(*streams))

    per_bank = [
        device.bank(b).stats.nrr_rows_refreshed
        for b in range(geometry.total_banks)
    ]
    return SystemResult(
        banks=geometry.total_banks,
        duration_ns=duration_ns,
        acts=controller.counters.acts_issued,
        victim_refresh_directives=controller.counters.nrr_commands,
        victim_rows_refreshed=controller.counters.nrr_rows,
        bit_flips=controller.counters.bit_flips,
        total_table_bits=sum(
            engine.table_bits() for engine in controller.engines
        ),
        per_bank_rows_refreshed=per_bank,
        mean_delay_ns=controller.latency_summary().mean_ns,
    )
