"""Simulation result container and the paper's overhead metrics.

Two numbers dominate the paper's evaluation (Figures 8 and 9):

* **refresh energy increase** -- victim rows refreshed beyond the
  regular schedule, relative to the regular schedule's rows.  Every
  refreshed row costs the same energy, so the ratio of row counts *is*
  the energy ratio (see :mod:`repro.dram.energy`);
* **performance overhead** -- the slowdown caused purely by banks
  being blocked for victim refreshes; see
  :func:`repro.sim.performance.performance_overhead`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..controller.scheduler import LatencySummary
from ..dram.bank import BankStats
from ..dram.energy import PAPER_DRAM_ENERGY, DramEnergyModel
from ..dram.timing import DDR4_2400, DramTimings

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Everything a single (workload, scheme) run produced.

    Attributes:
        scheme: Mitigation scheme label (e.g. "graphene", "para").
        workload: Workload label (e.g. "mcf", "S3").
        banks: Number of simulated banks.
        rows_per_bank: Rows per bank.
        duration_ns: Simulated wall time.
        acts: ACT commands issued.
        victim_refresh_directives: NRR commands executed.
        victim_rows_refreshed: Total rows refreshed by NRRs.
        largest_directive_rows: Largest single NRR (burstiness).
        bit_flips: Row Hammer bit flips the fault referee recorded
            (must be 0 for any sound deterministic scheme).
        latency: Queueing-delay summary of the run.
        bank_stats: Aggregate DRAM-side statistics.
        timings: Timing bundle the run used.
    """

    scheme: str
    workload: str
    banks: int
    rows_per_bank: int
    duration_ns: float
    acts: int
    victim_refresh_directives: int
    victim_rows_refreshed: int
    largest_directive_rows: int
    bit_flips: int
    latency: LatencySummary
    bank_stats: BankStats
    timings: DramTimings = field(default_factory=lambda: DDR4_2400)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def windows(self) -> float:
        """Run length in refresh windows (tREFW units)."""
        return self.duration_ns / self.timings.trefw

    @property
    def acts_per_second_per_bank(self) -> float:
        if self.duration_ns <= 0 or self.banks == 0:
            return 0.0
        return self.acts / self.banks / (self.duration_ns / 1e9)

    def refresh_energy_increase(
        self, energy: DramEnergyModel | None = None
    ) -> float:
        """The Fig. 8(a)/(b) metric: extra refresh energy / normal.

        Normal refresh visits ``rows_per_bank`` rows per bank per
        window; victim refreshes add ``victim_rows_refreshed``.  With
        uniform per-row refresh energy the row-count ratio *is* the
        energy ratio; passing an explicit :class:`DramEnergyModel`
        routes through absolute nJ for cross-checking.
        """
        if self.windows <= 0:
            return 0.0
        if energy is not None:
            extra_nj = energy.victim_refresh_energy_nj(
                self.victim_rows_refreshed
            )
            normal_nj = self.banks * energy.normal_refresh_energy_nj(
                self.windows
            )
            return extra_nj / normal_nj
        return self.victim_rows_refreshed / (
            self.banks * self.rows_per_bank * self.windows
        )

    def victim_rows_per_window_per_bank(self) -> float:
        if self.windows <= 0 or self.banks == 0:
            return 0.0
        return self.victim_rows_refreshed / self.banks / self.windows

    def nrr_busy_fraction(self) -> float:
        """Share of simulated time banks spent executing NRRs."""
        if self.duration_ns <= 0 or self.banks == 0:
            return 0.0
        return self.bank_stats.nrr_busy_ns / (self.duration_ns * self.banks)

    # ------------------------------------------------------------------
    # Serialization (the one path trace exporters and the result cache
    # share; see docs/observability.md)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Flatten to a JSON-able dict that :meth:`from_dict` inverts.

        Nested value objects (latency summary, bank stats, timings)
        become plain field dicts; every leaf is an int, float, str or
        bool, so the output round-trips through ``json`` as well as
        ``pickle`` without loss (floats survive exactly under pickle
        and via ``repr`` round-tripping under JSON).
        """
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "banks": self.banks,
            "rows_per_bank": self.rows_per_bank,
            "duration_ns": self.duration_ns,
            "acts": self.acts,
            "victim_refresh_directives": self.victim_refresh_directives,
            "victim_rows_refreshed": self.victim_rows_refreshed,
            "largest_directive_rows": self.largest_directive_rows,
            "bit_flips": self.bit_flips,
            "latency": dataclasses.asdict(self.latency),
            "bank_stats": dataclasses.asdict(self.bank_stats),
            "timings": dataclasses.asdict(self.timings),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output."""
        payload = dict(data)
        return cls(
            latency=LatencySummary(**payload.pop("latency")),
            bank_stats=BankStats(**payload.pop("bank_stats")),
            timings=DramTimings(**payload.pop("timings")),
            **payload,
        )

    def summary_row(self) -> dict[str, object]:
        """Flat dict for tabular reports."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "acts": self.acts,
            "nrr_commands": self.victim_refresh_directives,
            "victim_rows": self.victim_rows_refreshed,
            "largest_nrr_rows": self.largest_directive_rows,
            "refresh_energy_increase_pct": 100.0
            * self.refresh_energy_increase(),
            "mean_delay_ns": self.latency.mean_ns,
            "bit_flips": self.bit_flips,
        }
