"""Content-addressed on-disk cache for simulation results.

Every experiment in :mod:`repro.experiments` is a pile of pure
functions of declarative inputs -- (trace spec, scheme, mitigation
config, device geometry, timings) -- so their results can be cached
across process invocations and re-running a figure after an unrelated
edit becomes a directory of hits instead of a half-hour recompute.

Keys are SHA-256 digests of a *canonical* rendering of the job spec
(see :func:`cache_key`) salted with the package version and a cache
schema version, so a published code change invalidates everything at
once while day-to-day edits that do not touch results keep their hits.

Values are arbitrary picklable Python objects (usually
:class:`~repro.sim.metrics.SimulationResult` bundles).
``SimulationResult`` values are stored through their
:meth:`~repro.sim.metrics.SimulationResult.to_dict` form -- the same
serialization the telemetry trace exporters embed in run summaries --
so the cache payload is a stable field dict rather than an ad-hoc
dataclass pickle, and survives cosmetic dataclass refactors.  Writes
are atomic (temp file + ``os.replace``), and any unreadable entry --
truncated file, stale pickle, wrong schema -- is treated as a miss and
evicted rather than raised, so a corrupted cache can never break an
experiment, only slow it down.

When a telemetry session is active (:mod:`repro.telemetry.runtime`),
every lookup publishes a :class:`~repro.telemetry.events.CacheHit` or
:class:`~repro.telemetry.events.CacheMiss` event and bumps the
``cache.hits`` / ``cache.misses`` counters, so run-level traces show
which cells were recomputed and which came from disk.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterator

from ..telemetry import runtime as _telemetry
from ..telemetry.events import CacheHit, CacheMiss

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "MISS",
    "ResultCache",
    "cache_key",
    "canonical",
    "default_cache_dir",
]

#: Bump to invalidate every existing cache entry (result-format changes).
CACHE_SCHEMA_VERSION = 2

#: Tag marking a value stored through ``SimulationResult.to_dict()``.
_SIM_RESULT_TAG = "repro/sim-result@1"

#: Sentinel distinguishing "no entry" from a cached ``None``.
MISS = object()


def _version_salt() -> str:
    """Package-version component of every key.

    Importing lazily avoids a cycle (``repro`` imports ``repro.sim``
    transitively at package-init time).
    """
    from .. import __version__

    return f"repro-{__version__}/schema-{CACHE_SCHEMA_VERSION}"


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-stable structure for hashing.

    Handles the spec vocabulary the experiments use: dataclasses
    (e.g. :class:`~repro.dram.timing.DramTimings`) become
    ``[class-name, {field: value}]``, mappings get sorted keys, tuples
    and lists flatten to lists, and scalars pass through.  Anything
    else falls back to ``repr`` -- stable for the frozen value objects
    in this codebase.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return [type(value).__qualname__, fields]
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips exactly; avoids JSON float formatting drift.
        return f"f:{value!r}"
    return f"r:{value!r}"


def cache_key(payload: Any) -> str:
    """SHA-256 digest of ``payload``'s canonical form plus version salt."""
    rendered = json.dumps(
        [_version_salt(), canonical(payload)],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-graphene``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-graphene"


class ResultCache:
    """A directory of pickled results addressed by spec digest.

    Attributes:
        directory: Cache root (created lazily on first store).
        hits / misses / stores / evictions: Session counters; the
            runner folds these into its wall-clock summary.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings manageable for
        # full-sweep caches (hundreds of entries).
        return self.directory / key[:2] / f"{key}.pkl"

    def _note(self, key: str, label: str, hit: bool) -> None:
        """Publish the lookup outcome into an active telemetry session."""
        bus = _telemetry.BUS
        if bus is None:
            return
        if hit:
            bus.registry.counter("cache.hits").inc()
            bus.publish(CacheHit(time_ns=0.0, key=key, label=label))
        else:
            bus.registry.counter("cache.misses").inc()
            bus.publish(CacheMiss(time_ns=0.0, key=key, label=label))

    def get(self, key: str, label: str = "") -> Any:
        """Return the cached value for ``key``, or :data:`MISS`.

        Unreadable entries (truncation, schema drift, unpicklable
        payloads) are evicted and reported as misses -- corruption must
        only ever cost a recompute.  ``label`` names the job in
        telemetry events only; it never affects addressing.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            self._note(key, label, hit=False)
            return MISS
        except Exception:
            self.evictions += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            self._note(key, label, hit=False)
            return MISS
        self.hits += 1
        self._note(key, label, hit=True)
        return self._decode(value)

    @staticmethod
    def _encode(value: Any) -> Any:
        """Route ``SimulationResult`` values through ``to_dict()``."""
        from .metrics import SimulationResult

        if isinstance(value, SimulationResult):
            return (_SIM_RESULT_TAG, value.to_dict())
        return value

    @staticmethod
    def _decode(value: Any) -> Any:
        if (
            isinstance(value, tuple)
            and len(value) == 2
            and value[0] == _SIM_RESULT_TAG
        ):
            from .metrics import SimulationResult

            return SimulationResult.from_dict(value[1])
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically (best effort).

        A cache that cannot write (read-only filesystem, quota) must
        not break the experiment; failures are swallowed.
        """
        path = self._path(key)
        try:
            payload = self._encode(value)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            return
        self.stores += 1

    # ------------------------------------------------------------------

    def entries(self) -> Iterator[Path]:
        """Iterate the entry files currently on disk."""
        if not self.directory.is_dir():
            return
        yield from self.directory.glob("*/*.pkl")

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
