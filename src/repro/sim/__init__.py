"""Trace-driven memory-system simulation: harness, metrics, performance."""

from .cache import ResultCache, cache_key, default_cache_dir
from .metrics import SimulationResult
from .performance import (
    memory_intensity,
    performance_overhead,
    service_floor_ns,
)
from .closed_loop import (
    ClosedLoopResult,
    CoreProfile,
    core_profile_for,
    run_closed_loop,
    weighted_speedup_reduction,
)
from .simulator import build_device, simulate
from .system_runner import BankAssignment, SystemResult, run_system
from .system import PAPER_SYSTEM, SystemConfig, table3_rows

__all__ = [
    "ResultCache",
    "cache_key",
    "default_cache_dir",
    "SimulationResult",
    "simulate",
    "build_device",
    "performance_overhead",
    "memory_intensity",
    "service_floor_ns",
    "SystemConfig",
    "PAPER_SYSTEM",
    "table3_rows",
    "BankAssignment",
    "SystemResult",
    "run_system",
    "CoreProfile",
    "ClosedLoopResult",
    "core_profile_for",
    "run_closed_loop",
    "weighted_speedup_reduction",
]
