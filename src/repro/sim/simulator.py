"""The trace-driven simulation harness.

:func:`simulate` wires one workload trace through the full stack --
memory controller, mitigation engines, DRAM banks, auto refresh, fault
referee -- and returns a :class:`~repro.sim.metrics.SimulationResult`.
Every figure-regenerating experiment in :mod:`repro.experiments` is a
set of :func:`simulate` calls with different factories and traces.
"""

from __future__ import annotations

import logging
import math
from typing import Iterable

from ..controller.mc import MemoryController
from ..dram.device import DramDevice
from ..dram.faults import CouplingProfile
from ..dram.geometry import DramGeometry
from ..dram.timing import DDR4_2400, DramTimings
from ..mitigations.base import MitigationFactory
from ..workloads.trace import ActEvent
from .metrics import SimulationResult

__all__ = ["simulate", "build_device"]

_log = logging.getLogger("repro.sim")


def build_device(
    banks: int = 1,
    rows_per_bank: int = 65536,
    timings: DramTimings = DDR4_2400,
    hammer_threshold: float = 50_000,
    coupling: CouplingProfile | None = None,
    track_faults: bool = True,
    ranks: int = 1,
) -> DramDevice:
    """Construct a compact single-channel device for experiments.

    The paper's per-bank metrics are independent across banks, so most
    experiments run a handful of banks rather than all 64 of Table III;
    results are always normalized per bank per window.  ``ranks``
    scales the geometry to whole ranks (``ranks * banks`` total banks,
    flat bank indices) for system-scale sweeps such as the multi-rank
    hot-path bench.
    """
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=ranks,
        banks_per_rank=banks,
        rows_per_bank=rows_per_bank,
    )
    return DramDevice.build(
        geometry=geometry,
        timings=timings,
        hammer_threshold=hammer_threshold,
        coupling=coupling,
        track_faults=track_faults,
    )


def simulate(
    events: Iterable[ActEvent],
    factory: MitigationFactory,
    scheme: str,
    workload: str,
    banks: int = 1,
    rows_per_bank: int = 65536,
    timings: DramTimings = DDR4_2400,
    hammer_threshold: float = 50_000,
    coupling: CouplingProfile | None = None,
    track_faults: bool = True,
    duration_ns: float | None = None,
    fast: bool = False,
    shard_workers: int = 1,
    chunk_events: int | None = None,
    ranks: int = 1,
) -> SimulationResult:
    """Run one (workload, scheme) pair through the full system.

    Args:
        events: Time-sorted ACT stream (from :mod:`repro.workloads`).
        factory: Builds one mitigation engine per bank.
        scheme: Label for the result.
        workload: Label for the result.
        banks: Banks per rank in the simulated device; events' ``bank``
            fields must be < ``banks * ranks``.
        rows_per_bank: Row address space per bank.
        timings: DRAM timing bundle.
        hammer_threshold: ``T_RH`` for the fault referee.
        coupling: Disturbance profile for the referee and NRR radius.
        track_faults: Disable for pure overhead runs (big speedup, no
            bit-flip verdicts).
        duration_ns: Period the result is normalized over; defaults to
            the last event time rounded up to a whole refresh window
            (per-window metrics need whole windows), or 0 when the
            stream is empty.
        fast: Route through the columnar batch engine
            (:mod:`repro.core.fastpath`) when the scheme supports it;
            results are byte-identical to the reference engine, which
            remains the automatic fallback (telemetry bus installed, or
            a scheme without a batched kernel).  A fallback logs a
            one-line warning on the ``repro.sim`` logger naming the
            reason -- and the requested shard-worker count, when
            sharding was asked for -- so a silent ~1x run is visible.
        shard_workers: With ``fast=True``, dispatch per-bank lanes
            across this many processes from the persistent shard pool
            (1 = in-process serial fast mode).  Workers are spawned
            lazily on first use and reused by every later sharded
            ``simulate()`` call in this process; traces cross to them
            through shared memory, not pickles.  Results are
            byte-identical at any worker count.  On a single-bank
            device -- or a trace whose events all land on one bank --
            the request degrades to serial fast mode with one logged
            warning naming the count.
        chunk_events: With ``fast=True``, stream the trace through the
            engine in chunks of at most this many events (state carried
            across chunk boundaries; bit-identical).  Bounds working
            memory for traces larger than RAM.
        ranks: Ranks in the device (``banks`` is per rank); flat bank
            indices span ``banks * ranks``.

    Returns:
        The complete result bundle.
    """
    total_banks = banks * ranks
    device = build_device(
        banks=banks,
        rows_per_bank=rows_per_bank,
        timings=timings,
        hammer_threshold=hammer_threshold,
        coupling=coupling,
        track_faults=track_faults,
        ranks=ranks,
    )
    controller = None
    if fast:
        from ..core.fastpath import build_fast_controller_ex

        controller, fallback_reason = build_fast_controller_ex(
            device, factory, shard_workers=shard_workers
        )
        if controller is None:
            # Make the silent ~1x fallback visible: the caller asked for
            # the batch engine and is getting the reference loop.  Name
            # the requested worker count too -- a degraded --fast
            # --shard-workers run is slower by a larger factor than a
            # degraded --fast run.
            requested = (
                f" (requested {shard_workers} shard workers)"
                if shard_workers > 1
                else ""
            )
            _log.warning(
                "simulate(fast=True) falling back to the reference "
                "engine for scheme %r workload %r%s: %s",
                scheme,
                workload,
                requested,
                fallback_reason,
            )
        elif controller.shard_note:
            _log.warning(
                "simulate(fast=True) scheme %r workload %r: %s",
                scheme,
                workload,
                controller.shard_note,
            )

    last_time_ns = 0.0
    if controller is not None:
        controller.run(events, chunk_events=chunk_events)
        last_time_ns = controller.last_event_ns
    else:
        controller = MemoryController(device, factory)
        for event in events:
            controller.step(event)
            last_time_ns = event.time_ns

    if duration_ns is None:
        if controller.counters.acts_issued == 0:
            # An empty stream simulated nothing: report a zero-length
            # run instead of fabricating a whole refresh window.
            duration_ns = 0.0
        else:
            windows = max(1, math.ceil(last_time_ns / timings.trefw))
            duration_ns = windows * timings.trefw

    stats = device.total_stats()
    largest = max(
        (engine.stats.largest_directive_rows for engine in controller.engines),
        default=0,
    )
    return SimulationResult(
        scheme=scheme,
        workload=workload,
        banks=total_banks,
        rows_per_bank=rows_per_bank,
        duration_ns=duration_ns,
        acts=controller.counters.acts_issued,
        victim_refresh_directives=controller.counters.nrr_commands,
        victim_rows_refreshed=controller.counters.nrr_rows,
        largest_directive_rows=largest,
        bit_flips=controller.counters.bit_flips,
        latency=controller.latency_summary(),
        bank_stats=stats,
        timings=timings,
    )
