"""Reproduction of *Graphene: Strong yet Lightweight Row Hammer
Protection* (MICRO 2020).

Public API highlights:

* :class:`repro.core.GrapheneConfig` / :class:`repro.core.GrapheneEngine`
  -- the Misra-Gries-based Row Hammer prevention mechanism;
* :mod:`repro.dram` -- the DDR4 substrate and Row Hammer fault model;
* :mod:`repro.mitigations` -- Graphene plus all compared baselines
  (PARA, PRoHIT, MRLoc, CBT, TWiCe, CRA) behind one interface;
* :mod:`repro.workloads` -- trace generators (realistic + adversarial);
* :mod:`repro.sim` -- the trace-driven memory-system simulator;
* :mod:`repro.analysis` -- security/energy/performance analyses;
* :mod:`repro.experiments` -- one module per paper table/figure.
"""

from .core import (
    GrapheneConfig,
    GrapheneEngine,
    InstrumentedGrapheneEngine,
    MisraGriesTable,
    VictimRefreshRequest,
)
from .dram import (
    DDR4_2400,
    CouplingProfile,
    DramGeometry,
    DramTimings,
    HammerFaultModel,
)

__version__ = "1.0.0"

__all__ = [
    "GrapheneConfig",
    "GrapheneEngine",
    "InstrumentedGrapheneEngine",
    "MisraGriesTable",
    "VictimRefreshRequest",
    "CouplingProfile",
    "DramGeometry",
    "DramTimings",
    "DDR4_2400",
    "HammerFaultModel",
    "__version__",
]
