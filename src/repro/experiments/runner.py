"""The shared experiment runner: parallel fan-out + result caching.

Every figure- and table-regenerating experiment decomposes into
independent jobs -- mostly :func:`repro.sim.simulator.simulate` calls
over (workload, scheme, config) tuples.  This module gives them one
substrate:

* a :class:`Job` names a top-level function (``"module:callable"``)
  plus picklable keyword arguments, so the *same* description can be
  hashed for the on-disk cache and shipped to a worker process;
* :class:`ExperimentRunner` executes a batch of jobs -- serially, or
  fanned out across CPU cores with ``jobs=N`` -- consulting a
  :class:`~repro.sim.cache.ResultCache` first and emitting per-job
  progress lines plus a wall-clock/cache-hit summary;
* :func:`run_sim_spec` is the declarative form of ``simulate()``: the
  trace and the mitigation factory are described as specs (not live
  objects), which is what makes simulation jobs cacheable and
  process-portable;
* a module-level default runner (:func:`get_runner` /
  :func:`configure`) lets the CLI turn parallelism and caching on for
  every experiment without threading runner handles through each
  ``run()`` signature.

Results are bit-identical between serial and parallel execution: every
job is a pure function of its kwargs (explicit seeds everywhere), and
batch results are returned in submission order.
"""

from __future__ import annotations

import contextlib
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from importlib import import_module
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..dram.timing import DDR4_2400, DramTimings
from ..sim.cache import MISS, ResultCache, cache_key
from ..sim.metrics import SimulationResult
from ..sim.simulator import simulate
from ..telemetry import runtime as _telemetry

__all__ = [
    "Job",
    "JobRecord",
    "RunnerStats",
    "ExperimentRunner",
    "get_runner",
    "set_runner",
    "configure",
    "using_runner",
    "ENGINES",
    "get_engine",
    "set_engine",
    "using_engine",
    "get_shard_workers",
    "set_shard_workers",
    "using_shard_workers",
    "run_sim_spec",
    "sim_job",
    "build_factory",
]

#: Simulation engine variants a job may request: the per-event
#: reference loop, or the columnar batch engine of
#: :mod:`repro.core.fastpath` (which falls back to the reference for
#: schemes without a batched kernel).
ENGINES = ("reference", "fast")

_default_engine = "reference"


def get_engine() -> str:
    """The engine variant :func:`sim_job` uses when none is requested."""
    return _default_engine


def set_engine(engine: str) -> str:
    """Install ``engine`` as the default variant; returns it."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    global _default_engine
    _default_engine = engine
    return _default_engine


@contextlib.contextmanager
def using_engine(engine: str) -> Iterator[str]:
    """Temporarily route :func:`sim_job` jobs through ``engine``."""
    previous = get_engine()
    set_engine(engine)
    try:
        yield engine
    finally:
        set_engine(previous)


_default_shard_workers = 1


def get_shard_workers() -> int:
    """Shard-worker count :func:`sim_job` uses when none is requested.

    Only consulted for fast-engine jobs: the reference loop has no lane
    dispatcher to shard.
    """
    return _default_shard_workers


def set_shard_workers(workers: int) -> int:
    """Install ``workers`` as the default shard count; returns it."""
    if workers < 1:
        raise ValueError(f"shard workers must be >= 1, got {workers}")
    global _default_shard_workers
    _default_shard_workers = workers
    return _default_shard_workers


@contextlib.contextmanager
def using_shard_workers(workers: int) -> Iterator[int]:
    """Temporarily give fast-engine :func:`sim_job` jobs ``workers``
    lane-shard worker processes."""
    previous = get_shard_workers()
    set_shard_workers(workers)
    try:
        yield workers
    finally:
        set_shard_workers(previous)


# ----------------------------------------------------------------------
# Job description
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Job:
    """One unit of work: a named top-level function plus its kwargs.

    Attributes:
        fn: ``"package.module:callable"`` path; the callable must be
            importable from a fresh process (no closures).
        kwargs: Keyword arguments; must be picklable, and hashable via
            :func:`repro.sim.cache.canonical` for cache addressing.
        label: Short human label for progress lines.
        cacheable: Disable for jobs whose outputs are not worth disk
            space or are inherently unstable.
    """

    fn: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""
    cacheable: bool = True

    def key(self) -> str:
        """The job's content-addressed cache key."""
        return cache_key({"fn": self.fn, "kwargs": dict(self.kwargs)})


def _resolve(path: str) -> Callable[..., Any]:
    """Import ``"module:callable"`` and return the callable."""
    module_name, _, attr = path.partition(":")
    if not attr:
        raise ValueError(f"job fn must be 'module:callable', got {path!r}")
    fn = getattr(import_module(module_name), attr, None)
    if not callable(fn):
        raise ValueError(f"{path!r} does not name a callable")
    return fn


def _execute(job: Job) -> Any:
    """Worker entry point: run one job (also used on the serial path)."""
    return _resolve(job.fn)(**job.kwargs)


def _execute_traced(
    job: Job,
    sample_interval_ns: float | None,
    max_events: int | None,
) -> tuple[Any, dict[str, Any]]:
    """Run one job inside a fresh telemetry session.

    Used whenever the *parent* has telemetry active: the job gets its
    own bus (so worker processes don't publish into an inherited copy
    that would be silently discarded) and the bus state rides home with
    the result as a picklable dict for deterministic merging.  The same
    wrapper runs on the serial path so serial and parallel executions
    produce identical event streams.
    """
    from ..telemetry.runtime import TelemetryBus, session
    from ..telemetry.sampler import TimeSeriesSampler

    sampler = (
        TimeSeriesSampler(sample_interval_ns) if sample_interval_ns else None
    )
    bus = TelemetryBus(sampler=sampler, max_events=max_events)
    with session(bus):
        result = _execute(job)
    return result, bus.export_state()


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one job: how it resolved and how long it took."""

    label: str
    seconds: float
    #: "cache" or "computed".
    source: str
    #: Advisory annotation, e.g. the fast-engine fallback reason for a
    #: simulation job that silently ran on the reference loop.
    note: str = ""


@dataclass
class RunnerStats:
    """Counters accumulated across every batch a runner executes."""

    jobs: int = 0
    cache_hits: int = 0
    computed: int = 0
    wall_seconds: float = 0.0
    batches: int = 0
    #: Per-job outcomes in submission order (label, elapsed, source).
    records: list[JobRecord] = field(default_factory=list)

    def summary(self) -> str:
        """One-line report for experiment footers and the CLI."""
        return (
            f"runner: {self.jobs} job{'s' if self.jobs != 1 else ''} "
            f"({self.cache_hits} cached, {self.computed} computed) "
            f"in {self.wall_seconds:.2f}s"
        )

    def breakdown(self, limit: int = 10) -> list[str]:
        """Per-job elapsed-time and cache-hit lines for the summary.

        The ``limit`` slowest computed jobs are listed individually;
        cached jobs are aggregated (they all cost roughly one pickle
        load).  Returns an empty list when there is nothing to report.
        """
        lines: list[str] = []
        computed = [r for r in self.records if r.source == "computed"]
        cached = [r for r in self.records if r.source == "cache"]
        if computed:
            slowest = sorted(
                computed, key=lambda r: r.seconds, reverse=True
            )[:limit]
            total = sum(r.seconds for r in computed)
            lines.append(
                f"computed {len(computed)} job"
                f"{'s' if len(computed) != 1 else ''} "
                f"in {total:.2f}s of worker time; slowest:"
            )
            for record in slowest:
                lines.append(f"  {record.seconds:8.2f}s  {record.label}")
            if len(computed) > len(slowest):
                rest = total - sum(r.seconds for r in slowest)
                lines.append(
                    f"  {rest:8.2f}s  ({len(computed) - len(slowest)} more)"
                )
        if cached:
            hit_time = sum(r.seconds for r in cached)
            lines.append(
                f"cache hits: {len(cached)} job"
                f"{'s' if len(cached) != 1 else ''} "
                f"resolved from disk in {hit_time:.2f}s"
            )
        noted: dict[str, int] = {}
        for record in self.records:
            if record.note:
                noted[record.note] = noted.get(record.note, 0) + 1
        for note, count in sorted(noted.items()):
            lines.append(
                f"note ({count} job{'s' if count != 1 else ''}): {note}"
            )
        return lines


class ExperimentRunner:
    """Executes job batches with optional parallelism and caching.

    Args:
        jobs: Worker-process count; ``1`` runs in-process (the default
            and the reference semantics), ``0`` means all CPU cores.
        cache: Result cache, or ``None`` to recompute everything.
        progress: Emit per-job lines to stderr while a batch runs.
        sample_interval_ns: Simulated-time sampling interval for
            per-job telemetry sessions (None disables sampling).  Only
            consulted while a telemetry session is active in the
            parent.
        max_events_per_job: Event-retention cap per traced job; beyond
            it events are counted but dropped (reported in summaries),
            bounding memory for long traced sweeps.
        on_progress: Optional callback invoked in the *calling* process
            as each job resolves -- ``(index, job, result, seconds,
            source)`` with source ``"cache"`` or ``"computed"``.  For
            parallel batches it fires from the completion loop, in
            completion order, so live dashboards tick mid-batch.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: bool = False,
        sample_interval_ns: float | None = None,
        max_events_per_job: int | None = 200_000,
        on_progress: Callable[[int, Job, Any, float, str], None] | None = None,
    ) -> None:
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        self.jobs = jobs or (os.cpu_count() or 1)
        self.cache = cache
        self.progress = progress
        self.sample_interval_ns = sample_interval_ns
        self.max_events_per_job = max_events_per_job
        self.on_progress = on_progress
        self.stats = RunnerStats()

    # ------------------------------------------------------------------

    def _emit(self, index: int, total: int, job: Job, status: str) -> None:
        if not self.progress:
            return
        label = job.label or job.fn.rsplit(":", 1)[-1]
        print(
            f"  [{index + 1}/{total}] {label}: {status}",
            file=sys.stderr,
            flush=True,
        )

    @staticmethod
    def _label(job: Job) -> str:
        return job.label or job.fn.rsplit(":", 1)[-1]

    @staticmethod
    def _job_note(job: Job) -> str:
        """Advisory annotation for the job's record (may be empty).

        Currently detects fast-engine simulation jobs that will (or,
        for cache hits, did) fall back to the reference loop, so an
        ``experiment --fast`` summary names every silently-slow cell
        and why.  Mirrors ``build_fast_controller_ex``'s checks without
        building a device: a telemetry bus in this process follows the
        job into its session, and kernel coverage is a property of the
        factory spec alone.
        """
        if not job.fn.endswith(":run_sim_spec"):
            return ""
        if job.kwargs.get("engine", "reference") != "fast":
            return ""
        shard_workers = int(job.kwargs.get("shard_workers", 1))
        requested = (
            f" (requested {shard_workers} shard workers)"
            if shard_workers > 1
            else ""
        )
        if _telemetry.BUS is not None:
            return (
                "fast engine fell back to the reference loop"
                f"{requested}: telemetry bus active (per-event telemetry "
                "needs the reference loop)"
            )
        from ..core.fastpath import kernel_for

        try:
            factory = build_factory(
                job.kwargs["factory"],
                job.kwargs.get("hammer_threshold", 50_000),
                job.kwargs.get("timings", DDR4_2400),
            )
            probe = factory(0, int(job.kwargs.get("rows_per_bank", 65536)))
        except Exception:
            return ""  # malformed spec: let the job itself report it
        kernel = kernel_for(probe)
        if kernel is None:
            scheme = getattr(probe, "name", type(probe).__name__)
            return (
                "fast engine fell back to the reference loop"
                f"{requested}: no batched kernel for scheme {scheme!r}"
            )
        total_banks = int(job.kwargs.get("banks", 1)) * int(
            job.kwargs.get("ranks", 1)
        )
        if shard_workers > 1 and total_banks < 2:
            return (
                f"sharding requested ({shard_workers} workers) but the "
                "device has a single bank (one lane); cell ran serial "
                "fast mode"
            )
        if shard_workers > 1 and getattr(kernel, "cross_bank", False):
            scheme = getattr(probe, "name", type(probe).__name__)
            return (
                f"sharding requested ({shard_workers} workers) but scheme "
                f"{scheme!r} declares the cross_bank capability (tracking "
                "state shared across banks); cell ran serial fast mode"
            )
        return ""

    def run(self, batch: Sequence[Job]) -> list[Any]:
        """Execute every job; results come back in submission order.

        When a telemetry session is active in the calling process,
        every computed job runs inside its own telemetry session (in
        the worker for parallel runs) and the per-job event streams,
        metrics and samples are merged back into the active bus in
        *submission order* -- so a ``--jobs 4`` trace is byte-identical
        to a serial one.
        """
        started = time.perf_counter()
        total = len(batch)
        results: list[Any] = [None] * total
        bus = _telemetry.BUS

        pending: list[int] = []
        keys: dict[int, str] = {}
        states: dict[int, dict[str, Any]] = {}
        elapsed: dict[int, float] = {}
        for index, job in enumerate(batch):
            if self.cache is not None and job.cacheable:
                key = job.key()
                keys[index] = key
                lookup_started = time.perf_counter()
                value = self.cache.get(key, label=self._label(job))
                if value is not MISS:
                    results[index] = value
                    self.stats.cache_hits += 1
                    self.stats.records.append(
                        JobRecord(
                            label=self._label(job),
                            seconds=time.perf_counter() - lookup_started,
                            source="cache",
                            note=self._job_note(job),
                        )
                    )
                    self._emit(index, total, job, "cache hit")
                    if self.on_progress is not None:
                        self.on_progress(
                            index, job, value,
                            time.perf_counter() - lookup_started, "cache",
                        )
                    continue
            pending.append(index)

        if len(pending) > 1 and self.jobs > 1:
            self._run_parallel(
                batch, pending, results, total, states, elapsed,
                traced=bus is not None,
            )
        else:
            for index in pending:
                job_started = time.perf_counter()
                if bus is not None:
                    results[index], states[index] = _execute_traced(
                        batch[index],
                        self.sample_interval_ns,
                        self.max_events_per_job,
                    )
                else:
                    results[index] = _execute(batch[index])
                elapsed[index] = time.perf_counter() - job_started
                self._emit(
                    index, total, batch[index],
                    f"computed in {elapsed[index]:.2f}s",
                )
                if self.on_progress is not None:
                    self.on_progress(
                        index, batch[index], results[index],
                        elapsed[index], "computed",
                    )

        # Merge per-job telemetry and timing in submission order, so
        # parallel completion order cannot leak into any output.
        for index in pending:
            self.stats.records.append(
                JobRecord(
                    label=self._label(batch[index]),
                    seconds=elapsed.get(index, 0.0),
                    source="computed",
                    note=self._job_note(batch[index]),
                )
            )
            if bus is not None and index in states:
                bus.absorb(states[index], job=self._label(batch[index]))

        for index in pending:
            if self.cache is not None and batch[index].cacheable:
                self.cache.put(keys[index], results[index])
        self.stats.jobs += total
        self.stats.computed += len(pending)
        self.stats.batches += 1
        self.stats.wall_seconds += time.perf_counter() - started
        return results

    def _run_parallel(
        self,
        batch: Sequence[Job],
        pending: Sequence[int],
        results: list[Any],
        total: int,
        states: dict[int, dict[str, Any]],
        elapsed: dict[int, float],
        traced: bool = False,
    ) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if traced:
                futures = {
                    pool.submit(
                        _execute_traced,
                        batch[index],
                        self.sample_interval_ns,
                        self.max_events_per_job,
                    ): (index, time.perf_counter())
                    for index in pending
                }
            else:
                futures = {
                    pool.submit(_execute, batch[index]): (
                        index, time.perf_counter(),
                    )
                    for index in pending
                }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index, job_started = futures[future]
                    if traced:
                        results[index], states[index] = future.result()
                    else:
                        results[index] = future.result()
                    elapsed[index] = time.perf_counter() - job_started
                    self._emit(
                        index, total, batch[index],
                        f"computed in {elapsed[index]:.2f}s",
                    )
                    if self.on_progress is not None:
                        self.on_progress(
                            index, batch[index], results[index],
                            elapsed[index], "computed",
                        )

    def call(
        self,
        fn: str,
        label: str = "",
        cacheable: bool = True,
        **kwargs: Any,
    ) -> Any:
        """Run one job through the runner (cache-aware convenience)."""
        return self.run([Job(fn, kwargs, label=label, cacheable=cacheable)])[0]

    def cache_counters(self) -> dict[str, Any] | None:
        """Cache hit/miss counters for end-of-run summaries, or ``None``.

        When a telemetry session is active its ``cache.hits`` /
        ``cache.misses`` registry counters are preferred: they include
        lookups performed *inside* worker jobs (absorbed back across
        the process boundary), which the runner-level
        :class:`~repro.sim.cache.ResultCache` session counters cannot
        see.  Stores and evictions are only tracked at the runner's own
        cache.  Returns ``None`` when the runner has no cache and no
        telemetry counters exist.
        """
        bus = _telemetry.BUS
        hits = misses = 0
        source = None
        if bus is not None and bus.registry.enabled:
            hits = bus.registry.counter("cache.hits").value
            misses = bus.registry.counter("cache.misses").value
            if hits or misses:
                source = "telemetry"
        if source is None:
            if self.cache is None:
                return None
            hits, misses = self.cache.hits, self.cache.misses
            source = "cache"
        counters: dict[str, Any] = {
            "hits": hits,
            "misses": misses,
            "hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
            "source": source,
        }
        if self.cache is not None:
            counters["stores"] = self.cache.stores
            counters["evictions"] = self.cache.evictions
        return counters

    def cache_summary(self) -> str | None:
        """One cache line for the CLI footer, or ``None`` without a cache."""
        counters = self.cache_counters()
        if counters is None:
            return None
        line = (
            f"cache: {counters['hits']:,} hit"
            f"{'s' if counters['hits'] != 1 else ''} / "
            f"{counters['misses']:,} miss"
            f"{'es' if counters['misses'] != 1 else ''} "
            f"({100.0 * counters['hit_ratio']:.1f}% hit rate)"
        )
        if "stores" in counters:
            line += (
                f", {counters['stores']:,} stored, "
                f"{counters['evictions']:,} evicted"
            )
        return line


# ----------------------------------------------------------------------
# Default runner plumbing
# ----------------------------------------------------------------------

#: Library default: serial, uncached -- experiments behave exactly as
#: plain function calls until the CLI (or a test) configures otherwise.
_default_runner = ExperimentRunner()


def get_runner() -> ExperimentRunner:
    """The runner experiments use when none is passed explicitly."""
    return _default_runner


def set_runner(runner: ExperimentRunner) -> ExperimentRunner:
    """Install ``runner`` as the default; returns it."""
    global _default_runner
    _default_runner = runner
    return _default_runner


def configure(
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | Path | None = None,
    progress: bool = False,
    sample_interval_ns: float | None = None,
    max_events_per_job: int | None = 200_000,
) -> ExperimentRunner:
    """Build and install a default runner from CLI-style knobs."""
    cache = ResultCache(cache_dir) if use_cache else None
    return set_runner(
        ExperimentRunner(
            jobs=jobs,
            cache=cache,
            progress=progress,
            sample_interval_ns=sample_interval_ns,
            max_events_per_job=max_events_per_job,
        )
    )


@contextlib.contextmanager
def using_runner(runner: ExperimentRunner) -> Iterator[ExperimentRunner]:
    """Temporarily install ``runner`` as the default (tests, scripts)."""
    previous = get_runner()
    set_runner(runner)
    try:
        yield runner
    finally:
        set_runner(previous)


# ----------------------------------------------------------------------
# Declarative simulate() jobs
# ----------------------------------------------------------------------


def _build_trace(
    trace: Mapping[str, Any],
    workload: str,
    duration_ns: float,
    seed: int,
    timings: DramTimings,
    rows_per_bank: int,
):
    """Materialize the ACT stream a trace spec describes."""
    kind = trace["kind"]
    label = trace.get("label", workload)
    if kind == "realistic":
        from ..workloads.spec_like import REALISTIC_PROFILES, profile_events

        return profile_events(
            REALISTIC_PROFILES[label],
            duration_ns,
            rows_per_bank=rows_per_bank,
            seed=seed,
            timings=timings,
        )
    if kind == "synthetic":
        from ..workloads.synthetic import SYNTHETIC_PATTERNS, synthetic_events

        rows = SYNTHETIC_PATTERNS[label](rows_per_bank, seed)
        return synthetic_events(rows, duration_ns=duration_ns,
                                timings=timings)
    if kind == "s3_target":
        from ..workloads.synthetic import s3_rows, synthetic_events

        rows = s3_rows(target=trace["target"])
        return synthetic_events(rows, duration_ns=duration_ns,
                                timings=timings)
    raise ValueError(f"unknown trace kind {kind!r}")


def build_factory(
    spec: Sequence[Any],
    hammer_threshold: float,
    timings: DramTimings,
):
    """Resolve a factory spec into a live per-bank engine factory.

    Specs (lists so they canonicalize identically through JSON):

    * ``["none"]`` -- the unprotected baseline;
    * ``["scaling", scheme]`` -- the Fig. 8/9 comparison set, rebuilt
      at the job's threshold via
      :func:`repro.analysis.scaling.scheme_factories`;
    * ``["capability", name]`` -- the full capability-matrix roster
      (:data:`repro.experiments.capability_matrix.SCHEMES`).
    """
    kind = spec[0]
    if kind == "none":
        from ..mitigations import no_mitigation_factory

        return no_mitigation_factory()
    if kind == "scaling":
        from ..analysis.scaling import scheme_factories

        return scheme_factories(int(hammer_threshold),
                                timings=timings)[spec[1]]
    if kind == "capability":
        from .capability_matrix import SCHEMES

        return SCHEMES[spec[1]][0](int(hammer_threshold))
    raise ValueError(f"unknown factory spec {spec!r}")


def run_sim_spec(
    *,
    trace: Mapping[str, Any],
    factory: Sequence[Any],
    scheme: str,
    workload: str,
    duration_ns: float,
    seed: int = 42,
    timings: DramTimings = DDR4_2400,
    rows_per_bank: int = 65536,
    hammer_threshold: float = 50_000,
    track_faults: bool = False,
    banks: int = 1,
    engine: str = "reference",
    shard_workers: int = 1,
    chunk_events: int | None = None,
    ranks: int = 1,
) -> SimulationResult:
    """Declarative ``simulate()``: every input is a picklable spec.

    This is the function every cached/parallel simulation job resolves
    to; its keyword dictionary *is* the cache key material.  ``engine``
    selects the simulation variant (see :data:`ENGINES`); results are
    engine-independent by construction, but the variants have different
    perf envelopes, so the choice is part of the cache key whenever it
    is not the default.  The same applies to ``shard_workers`` /
    ``chunk_events`` / ``ranks``: results are identical at any value,
    and :func:`sim_job` keeps them out of the kwargs (and therefore the
    cache key) at their defaults so existing cache entries keep their
    addresses.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    events = _build_trace(
        trace, workload, duration_ns, seed, timings, rows_per_bank
    )
    return simulate(
        events,
        build_factory(factory, hammer_threshold, timings),
        scheme=scheme,
        workload=workload,
        banks=banks,
        rows_per_bank=rows_per_bank,
        timings=timings,
        hammer_threshold=hammer_threshold,
        track_faults=track_faults,
        duration_ns=duration_ns,
        fast=(engine == "fast"),
        shard_workers=shard_workers,
        chunk_events=chunk_events,
        ranks=ranks,
    )


def sim_job(
    *,
    trace: Mapping[str, Any],
    factory: Sequence[Any],
    scheme: str,
    workload: str,
    duration_ns: float,
    label: str = "",
    engine: str | None = None,
    shard_workers: int | None = None,
    **kwargs: Any,
) -> Job:
    """Build a :class:`Job` for one declarative simulation.

    ``engine`` defaults to the session engine (:func:`get_engine`); it
    enters the job's kwargs -- and therefore the cache key -- only when
    it differs from ``"reference"``, so fast-path runs are cached
    separately while every pre-existing reference cache entry keeps its
    address.  ``shard_workers`` likewise defaults to the session value
    (:func:`get_shard_workers`) and enters the kwargs only for
    fast-engine jobs with more than one worker -- results are identical
    at any count, but the perf envelope differs, so a sharded run is
    cached under its own key.
    """
    engine = engine if engine is not None else get_engine()
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    shard_workers = (
        shard_workers if shard_workers is not None else get_shard_workers()
    )
    if shard_workers < 1:
        raise ValueError(f"shard workers must be >= 1, got {shard_workers}")
    if engine != "reference":
        kwargs = dict(kwargs, engine=engine)
        if shard_workers > 1:
            kwargs = dict(kwargs, shard_workers=shard_workers)
    return Job(
        fn="repro.experiments.runner:run_sim_spec",
        kwargs=dict(
            trace=dict(trace),
            factory=list(factory),
            scheme=scheme,
            workload=workload,
            duration_ns=duration_ns,
            **kwargs,
        ),
        label=label or f"{workload}/{scheme}",
    )
