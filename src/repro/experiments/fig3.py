"""Fig. 3: the two-window accumulation worst case.

The figure's argument: a row can accumulate up to ``T - 1`` ACTs in a
reset window without triggering victim refreshes; straddling a table
reset, an aggressor therefore gets up to ``2(T - 1)`` undetected ACTs
between two regular refreshes of its victim.  With two aggressors
hammering one victim double-sided, the victim absorbs ``4(T - 1)``
ACTs -- which the ``T < T_RH/4 + 1`` derivation keeps strictly below
``T_RH``.

This experiment *executes* that worst case at full scale: two
aggressors each issue exactly ``T - 1`` ACTs immediately before the
window reset and ``T - 1`` immediately after, against a real engine
and the fault referee (with the victim's last regular refresh assumed
at the worst possible moment, i.e. never during the attack).  It
verifies: zero victim refreshes are triggered (the attacker stayed
under the radar), the victim's accumulated disturbance is exactly
``4(T - 1)``, and the remaining margin to ``T_RH`` is positive -- and
tiny (4 ACTs at the paper's parameters), showing the bound is tight.
"""

from __future__ import annotations

from ..core.config import GrapheneConfig
from ..core.graphene import GrapheneEngine
from ..dram.faults import HammerFaultModel
from ..dram.timing import DDR4_2400, DramTimings
from .runner import get_runner

__all__ = ["run", "main"]


def run(
    hammer_threshold: int = 50_000,
    timings: DramTimings = DDR4_2400,
    rows_per_bank: int = 65536,
) -> dict[str, object]:
    """Execute the straddling double-sided worst case.

    Returns the per-phase ACT counts, triggered refreshes, the victim's
    final disturbance and the margin to the Row Hammer threshold.
    """
    return get_runner().call(
        "repro.experiments.fig3:_compute", label="fig3",
        hammer_threshold=hammer_threshold, timings=timings,
        rows_per_bank=rows_per_bank,
    )


def _compute(
    hammer_threshold: int, timings: DramTimings, rows_per_bank: int
) -> dict[str, object]:
    config = GrapheneConfig(
        hammer_threshold=hammer_threshold,
        timings=timings,
        rows_per_bank=rows_per_bank,
        reset_window_divisor=1,
    )
    engine = GrapheneEngine(config)
    referee = HammerFaultModel(
        threshold=hammer_threshold, rows=rows_per_bank
    )
    threshold = config.tracking_threshold
    victim = rows_per_bank // 2
    aggressors = (victim - 1, victim + 1)
    acts_per_phase = threshold - 1  # per aggressor, per window

    boundary_ns = config.reset_window_ns
    interval = timings.trc
    phase_span = 2 * acts_per_phase * interval

    refreshes = 0

    def hammer(start_ns: float) -> float:
        nonlocal refreshes
        time_ns = start_ns
        for index in range(acts_per_phase):
            for aggressor in aggressors:
                refreshes += len(engine.on_activate(aggressor, time_ns))
                referee.on_activate(aggressor, time_ns)
                time_ns += interval
        return time_ns

    # Phase 1 ends just before the table reset...
    hammer(boundary_ns - phase_span - interval)
    # ...phase 2 begins right after it.
    hammer(boundary_ns + interval)

    disturbance = referee.disturbance_of(victim)
    return {
        "T": threshold,
        "acts_per_aggressor": 2 * acts_per_phase,
        "total_aggressor_acts": 4 * acts_per_phase,
        "victim_refreshes_triggered": refreshes,
        "victim_disturbance": disturbance,
        "hammer_threshold": hammer_threshold,
        "margin_acts": hammer_threshold - disturbance,
        "bit_flips": referee.flip_count,
        "window_resets": engine.stats.window_resets,
    }


def main() -> None:
    data = run()
    print("Fig. 3: two-window straddling worst case (double-sided)")
    print(f"  T = {data['T']:,}; each aggressor issued "
          f"2(T-1) = {data['acts_per_aggressor']:,} ACTs across the reset")
    print(f"  victim refreshes triggered: "
          f"{data['victim_refreshes_triggered']} (attack stayed below T)")
    print(f"  victim disturbance: {data['victim_disturbance']:,.0f} "
          f"of T_RH = {data['hammer_threshold']:,} "
          f"(margin: {data['margin_acts']:,.0f} ACTs)")
    print(f"  bit flips: {data['bit_flips']} (guarantee holds; the bound "
          "is tight -- the margin is just 4 ACTs)")


if __name__ == "__main__":
    main()
