"""Table IV: tracking-table size and memory type per scheme.

The paper's per-bank numbers at ``T_RH`` = 50K:

==========  ========================  ===========
Scheme      Table size (bits/bank)    Memory type
==========  ========================  ===========
CBT-128     3,824                     SRAM
TWiCe       20,484 CAM + 15,932 SRAM  CAM + SRAM
Graphene    2,511                     CAM
==========  ========================  ===========

Graphene's 2,511 bits are derived exactly; CBT/TWiCe come from the
structural models calibrated to these anchors (see
:mod:`repro.core.area`).  The headline ratio -- Graphene ~15x fewer
table bits than TWiCe -- is computed from the models.
"""

from __future__ import annotations

from ..core.area import (
    CbtAreaModel,
    GrapheneAreaModel,
    PAPER_TABLE_IV_BITS_PER_BANK,
    TableArea,
    TwiceAreaModel,
)
from .common import format_table
from .runner import get_runner

__all__ = ["run", "main"]


def run(hammer_threshold: int = 50_000) -> dict[str, TableArea]:
    """Compute each scheme's per-bank table footprint."""
    return get_runner().call(
        "repro.experiments.table4:_compute", label="table4",
        hammer_threshold=hammer_threshold,
    )


def _compute(hammer_threshold: int) -> dict[str, TableArea]:
    return {
        "CBT-128": CbtAreaModel(hammer_threshold=hammer_threshold).area(),
        "TWiCe": TwiceAreaModel(hammer_threshold=hammer_threshold).area(),
        "Graphene": GrapheneAreaModel.for_threshold(hammer_threshold).area(),
    }


def main() -> None:
    areas = run()
    print("Table IV: tracking-table size per bank (T_RH = 50K)")
    rows = []
    for name, area in areas.items():
        paper = PAPER_TABLE_IV_BITS_PER_BANK[name]
        paper_total = paper["cam"] + paper["sram"]
        memory = (
            "CAM + SRAM"
            if area.cam_bits and area.sram_bits
            else ("CAM" if area.cam_bits else "SRAM")
        )
        rows.append(
            (
                name,
                f"{area.total_bits:,}",
                f"{paper_total:,}",
                memory,
                f"{area.entries:,}",
            )
        )
    print(
        format_table(
            ["Scheme", "Bits/bank (measured)", "Bits/bank (paper)",
             "Memory type", "Entries"],
            rows,
        )
    )
    ratio = areas["TWiCe"].total_bits / areas["Graphene"].total_bits
    print(
        f"\nTWiCe / Graphene table-bit ratio: {ratio:.1f}x "
        "(paper: 'about 15x fewer table bits')"
    )


if __name__ == "__main__":
    main()
