"""Table V: Graphene module energy vs background DRAM operations.

Reproduces the four Table V cells and the two ratios the paper quotes:
the per-ACT table update costs 0.032% of a DRAM ACT+PRE pair, and the
table's static energy over a tREFW costs 0.373% of a bank's regular
refresh energy.
"""

from __future__ import annotations

from ..core.config import GrapheneConfig
from ..core.energy_model import GrapheneEnergyModel
from .common import format_table, percent
from .runner import get_runner

__all__ = ["run", "main"]


def run(
    hammer_threshold: int = 50_000, reset_window_divisor: int = 2
) -> dict[str, float]:
    """Compute the Table V cells and derived ratios."""
    return get_runner().call(
        "repro.experiments.table5:_compute", label="table5",
        hammer_threshold=hammer_threshold,
        reset_window_divisor=reset_window_divisor,
    )


def _compute(
    hammer_threshold: int, reset_window_divisor: int
) -> dict[str, float]:
    model = GrapheneEnergyModel(
        config=GrapheneConfig(
            hammer_threshold=hammer_threshold,
            reset_window_divisor=reset_window_divisor,
        )
    )
    cells = model.table_v_rows()
    report = model.report(activations=1, windows=1.0)
    cells["dynamic_fraction_of_act"] = report.dynamic_fraction_of_act
    cells["static_fraction_of_refresh"] = report.static_fraction_of_refresh
    return cells


def main() -> None:
    data = run()
    print("Table V: Graphene energy consumption (k=2 table, T_RH = 50K)")
    rows = [
        ("Graphene dynamic energy / ACT",
         f"{data['graphene_dynamic_per_act_nj']:.2e} nJ", "3.69e-3 nJ"),
        ("Graphene static energy / tREFW",
         f"{data['graphene_static_per_trefw_nj']:.2e} nJ", "4.03e3 nJ"),
        ("DRAM ACT + PRE", f"{data['dram_act_pre_nj']:.2f} nJ", "11.49 nJ"),
        ("DRAM REFs per bank / tREFW",
         f"{data['dram_refresh_per_bank_trefw_nj']:.2e} nJ", "1.08e6 nJ"),
    ]
    print(format_table(["Quantity", "Measured", "Paper"], rows))
    print(
        f"\nDynamic / ACT+PRE = {percent(data['dynamic_fraction_of_act'])} "
        "(paper: 0.032%); static / refresh = "
        f"{percent(data['static_fraction_of_refresh'])} (paper: 0.373%)"
    )


if __name__ == "__main__":
    main()
