"""Sections III-D / V-D: non-adjacent (+-n) Row Hammer costs.

Tabulates, per blast radius and coupling model:

* Graphene's amplification factor, re-derived ``T``/``N_entry``, table
  growth (bounded by pi^2/6 ~= 1.64x for the inverse-square model) and
  worst-case refresh-energy bound;
* end-to-end verification that a +-2 Graphene configuration stops a
  distance-2 attack that defeats a +-1 configuration.
"""

from __future__ import annotations

from ..analysis.non_adjacent import (
    INVERSE_SQUARE_LIMIT,
    graphene_non_adjacent_costs,
)
from ..core.config import GrapheneConfig
from ..core.graphene import GrapheneEngine
from ..dram.faults import CouplingProfile, HammerFaultModel
from ..dram.timing import DDR4_2400, DramTimings
from .common import format_table, percent
from .runner import Job, get_runner

__all__ = ["run", "main", "distance_two_attack"]


def distance_two_attack(
    hammer_threshold: int = 4_000,
    protect_radius: int = 1,
    rows_per_bank: int = 4096,
    timings: DramTimings = DDR4_2400,
) -> dict[str, object]:
    """Drive a distance-2 hammer against a +-``protect_radius`` Graphene.

    The fault referee uses the uniform +-2 coupling (worst case).  A
    +-1 configuration refreshes only the immediate neighbors, so the
    distance-2 victim flips; a +-2 configuration prevents it.  Uses a
    scaled-down threshold so the test completes in milliseconds of
    simulated time.
    """
    coupling_attack = CouplingProfile.uniform(2)
    config = GrapheneConfig(
        hammer_threshold=hammer_threshold,
        timings=timings,
        rows_per_bank=rows_per_bank,
        reset_window_divisor=2,
        coupling=(
            CouplingProfile.adjacent_only()
            if protect_radius == 1
            else CouplingProfile.uniform(protect_radius)
        ),
    )
    engine = GrapheneEngine(config)
    referee = HammerFaultModel(
        threshold=hammer_threshold,
        rows=rows_per_bank,
        coupling=coupling_attack,
    )
    aggressor = rows_per_bank // 2
    interval = timings.trc
    acts = int(hammer_threshold * 2.5)
    time_ns = 0.0
    for _ in range(acts):
        referee.on_activate(aggressor, time_ns)
        for request in engine.on_activate(aggressor, time_ns):
            referee.on_refresh_range(request.victim_rows)
        time_ns += interval
    return {
        "protect_radius": protect_radius,
        "acts": acts,
        "bit_flips": referee.flip_count,
        "flipped_rows": sorted({flip.row for flip in referee.flips}),
        "victim_refreshes": engine.stats.victim_refresh_requests,
    }


def run(
    hammer_threshold: int = 50_000,
    max_radius: int = 4,
) -> dict[str, object]:
    """Cost tables for both coupling models plus the +-2 attack demo.

    The two simulated attack demos are independent jobs on the shared
    runner; the analytic cost tables are computed inline.
    """
    attack_r1, attack_r2 = get_runner().run([
        Job(
            fn="repro.experiments.non_adjacent:distance_two_attack",
            kwargs=dict(protect_radius=radius),
            label=f"distance-2 attack vs +-{radius}",
        )
        for radius in (1, 2)
    ])
    return {
        "inverse_square": graphene_non_adjacent_costs(
            hammer_threshold, max_radius, model="inverse_square"
        ),
        "uniform": graphene_non_adjacent_costs(
            hammer_threshold, max_radius, model="uniform"
        ),
        "attack_radius1": attack_r1,
        "attack_radius2": attack_r2,
    }


def main() -> None:
    data = run()
    for model in ("inverse_square", "uniform"):
        print(f"Graphene cost vs blast radius ({model} coupling):")
        rows = [
            (
                c.blast_radius,
                f"{c.amplification_factor:.3f}",
                f"{c.tracking_threshold:,}",
                c.num_entries,
                f"{c.table_bits_per_bank:,}",
                f"{c.table_growth:.2f}x",
                c.victim_rows_per_refresh,
                percent(c.worst_case_energy_increase, 2),
            )
            for c in data[model]
        ]
        print(format_table(
            ["n", "A", "T", "N_entry", "bits/bank", "table growth",
             "rows/NRR", "worst-case energy"],
            rows,
        ))
        print()
    print(f"Inverse-square growth limit: {INVERSE_SQUARE_LIMIT:.3f}x "
          "(paper: 'limited to 1.64x')")
    r1, r2 = data["attack_radius1"], data["attack_radius2"]
    print(
        f"\nDistance-2 attack demo (scaled T_RH): +-1 Graphene -> "
        f"{r1['bit_flips']} flips at rows {r1['flipped_rows']}; "
        f"+-2 Graphene -> {r2['bit_flips']} flips "
        f"({r2['victim_refreshes']} NRRs issued)"
    )


if __name__ == "__main__":
    main()
