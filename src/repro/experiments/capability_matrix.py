"""Capability matrix: every mitigation scheme, side by side.

A capstone summary the paper implies but never prints: for each scheme
-- deterministic guarantee or not, tracking state, measured behavior
under a standard attack and a standard benign workload -- one row, all
measured live on the simulator (nothing hard-coded except the paper's
published guarantee classifications, which the measurements must
agree with).

Run:  python -m repro.experiments.capability_matrix
"""

from __future__ import annotations

from ..analysis.scaling import para_probability_for
from ..core.config import GrapheneConfig
from ..mitigations import (
    abacus_factory,
    cbt_factory,
    comet_factory,
    cra_factory,
    graphene_factory,
    increased_refresh_rate_factory,
    mrloc_factory,
    no_mitigation_factory,
    para_factory,
    prohit_factory,
    twice_factory,
)
from .common import format_table, percent
from .runner import get_runner, sim_job

__all__ = ["run", "main", "SCHEMES"]

#: scheme -> (factory builder given scaled T_RH, deterministic?).
SCHEMES = {
    "none": (lambda trh: no_mitigation_factory(), False),
    "para": (lambda trh: para_factory(para_probability_for(trh)), False),
    "prohit": (lambda trh: prohit_factory(insert_probability=0.02), False),
    "mrloc": (
        lambda trh: mrloc_factory(para_probability_for(trh)), False,
    ),
    "cbt": (
        lambda trh: cbt_factory(trh, num_counters=64, num_levels=8), True,
    ),
    "twice": (lambda trh: twice_factory(trh), True),
    "cra": (lambda trh: cra_factory(trh, cache_entries=128), True),
    "refresh-rate-x2": (
        lambda trh: increased_refresh_rate_factory(multiplier=2), False,
    ),
    "graphene": (
        lambda trh: graphene_factory(
            GrapheneConfig(hammer_threshold=trh, reset_window_divisor=2)
        ),
        True,
    ),
    "comet": (lambda trh: comet_factory(trh), True),
    "abacus": (lambda trh: abacus_factory(trh), True),
}


def run(
    hammer_threshold: int = 2_000,
    duration_ns: float = 8e6,
    seed: int = 42,
) -> dict[str, dict[str, object]]:
    """Measure every scheme under one attack and one benign workload.

    Uses a scaled threshold so the attack completes quickly; guarantee
    verdicts are threshold-scale-independent (the mechanisms are).
    Each scheme's attack and benign runs are independent jobs on the
    shared runner -- the whole matrix fans out and caches per cell.
    """
    jobs = []
    for name in SCHEMES:
        jobs.append(
            sim_job(
                trace={"kind": "s3_target", "target": 500},
                factory=["capability", name],
                scheme=name,
                workload="S3",
                duration_ns=duration_ns,
                hammer_threshold=hammer_threshold,
                track_faults=True,
                label=f"S3/{name}",
            )
        )
        jobs.append(
            sim_job(
                trace={"kind": "realistic", "label": "omnetpp"},
                factory=["capability", name],
                scheme=name,
                workload="benign",
                duration_ns=duration_ns,
                seed=seed,
                hammer_threshold=hammer_threshold,
                track_faults=False,
                label=f"benign/{name}",
            )
        )
    results = iter(get_runner().run(jobs))

    out: dict[str, dict[str, object]] = {}
    for name, (build, deterministic) in SCHEMES.items():
        attack = next(results)
        benign = next(results)
        engine = build(hammer_threshold)(0, 65536)
        out[name] = {
            "deterministic": deterministic,
            "attack_flips": attack.bit_flips,
            "attack_rows_refreshed": attack.victim_rows_refreshed,
            "benign_rows_refreshed": benign.victim_rows_refreshed,
            "benign_energy_increase": benign.refresh_energy_increase(),
            "table_bits": engine.table_bits(),
        }
    return out


def main() -> None:
    data = run()
    print("Mitigation capability matrix (scaled T_RH = 2,000, 8 ms runs)")
    rows = []
    for name, cell in data.items():
        rows.append((
            name,
            "yes" if cell["deterministic"] else "no",
            cell["attack_flips"],
            f"{cell['attack_rows_refreshed']:,}",
            percent(cell["benign_energy_increase"], 3),
            f"{cell['table_bits']:,}",
        ))
    print(format_table(
        ["scheme", "guarantee", "flips under S3", "rows refreshed (S3)",
         "benign energy +", "state bits/bank"],
        rows,
    ))
    flips = {n: c["attack_flips"] for n, c in data.items()}
    assert flips["none"] > 0, "sanity: the attack must be real"
    print(
        "\nReading: deterministic schemes show 0 flips by construction; "
        "'none' is always compromised; probabilistic schemes' flips "
        "depend on their dice.  Graphene pairs the guarantee with the "
        "smallest deterministic-scheme refresh bill under attack and "
        "zero benign cost."
    )


if __name__ == "__main__":
    main()
