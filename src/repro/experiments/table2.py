"""Table II: Graphene's derived parameters at ``T_RH`` = 50K.

The paper's baseline (k = 1, +-1 coupling) derivation:

=========  =====================================  =========
Term       Definition                             Value
=========  =====================================  =========
``T_RH``   Row Hammer threshold                   50K
``W``      Max ACTs in a reset window             1,360K
``T``      Threshold for aggressor tracking       12.5K
``N_entry``Number of table entries                108
=========  =====================================  =========

plus the optimized configuration the rest of the evaluation uses
(k = 2: T = 8,333, N_entry = 81, 31 bits/entry -- Sections IV-B/C).
"""

from __future__ import annotations

from ..core.config import GrapheneConfig
from ..dram.timing import DDR4_2400, DramTimings
from .common import format_table
from .runner import get_runner

__all__ = ["run", "main", "PAPER_TABLE_II"]

#: The paper's reported values (W is rounded to 1,360K in the paper).
PAPER_TABLE_II = {"T_RH": 50_000, "W": 1_360_000, "T": 12_500, "N_entry": 108}


def run(
    hammer_threshold: int = 50_000, timings: DramTimings = DDR4_2400
) -> dict[str, dict[str, object]]:
    """Derive the Table II parameters for both k = 1 and k = 2."""
    return get_runner().call(
        "repro.experiments.table2:_compute", label="table2",
        hammer_threshold=hammer_threshold, timings=timings,
    )


def _compute(
    hammer_threshold: int, timings: DramTimings
) -> dict[str, dict[str, object]]:
    out: dict[str, dict[str, object]] = {}
    for k in (1, 2):
        config = GrapheneConfig(
            hammer_threshold=hammer_threshold,
            timings=timings,
            reset_window_divisor=k,
        )
        out[f"k={k}"] = config.summary()
    return out


def main() -> None:
    data = run()
    base = data["k=1"]
    print("Table II: Graphene parameters (+-1 Row Hammer, T_RH = 50K)")
    rows = [
        ("T_RH", "Row Hammer threshold", f"{base['hammer_threshold']:,}",
         f"{PAPER_TABLE_II['T_RH']:,}"),
        ("W", "Max ACTs in a reset window", f"{base['W']:,}",
         f"~{PAPER_TABLE_II['W']:,}"),
        ("T", "Threshold for aggressor tracking", f"{base['T']:,}",
         f"{PAPER_TABLE_II['T']:,}"),
        ("N_entry", "Number of table entries", f"{base['N_entry']}",
         f"{PAPER_TABLE_II['N_entry']}"),
    ]
    print(format_table(["Term", "Definition", "Measured", "Paper"], rows))
    opt = data["k=2"]
    print(
        f"\nOptimized (k=2, Section IV): T = {opt['T']:,}, "
        f"N_entry = {opt['N_entry']}, entry = {opt['entry_bits']} bits, "
        f"table = {opt['table_bits_per_bank']:,} bits/bank "
        "(paper: 8,333 / 81 / 31 / 2,511)"
    )


if __name__ == "__main__":
    main()
