"""Table I: DDR4 refresh parameters.

Regenerates the definition/value rows the rest of the evaluation is
anchored on, plus the derived quantities the paper computes from them
(the per-window ACT budget ``W`` and the refresh duty factor).
"""

from __future__ import annotations

from ..dram.timing import DDR4_2400, DramTimings
from .common import format_table
from .runner import get_runner

__all__ = ["run", "main"]


def run(timings: DramTimings = DDR4_2400) -> dict[str, object]:
    """Produce the Table I rows and the derived quantities."""
    return get_runner().call(
        "repro.experiments.table1:_compute", label="table1", timings=timings
    )


def _compute(timings: DramTimings) -> dict[str, object]:
    return {
        "rows": [
            ("tREFI", "Refresh interval", f"{timings.trefi / 1000:.1f} us"),
            ("tRFC", "Refresh command time", f"{timings.trfc:.0f} ns"),
            ("tRC", "ACT to ACT interval", f"{timings.trc:.0f} ns"),
            ("tREFW", "Refresh window (vendor-specific)",
             f"{timings.trefw / 1e6:.0f} ms"),
        ],
        "derived": {
            "refresh_duty_factor": timings.refresh_duty_factor,
            "refreshes_per_window": timings.refreshes_per_window,
            "W_max_acts_per_window": (
                timings.max_activations_per_refresh_window
            ),
        },
    }


def main() -> None:
    data = run()
    print("Table I: refresh parameters (DDR4 JEDEC / paper defaults)")
    print(format_table(["Term", "Definition", "Value"], data["rows"]))
    derived = data["derived"]
    print(
        f"\nDerived: duty factor = {derived['refresh_duty_factor']:.4f}, "
        f"REFs per tREFW = {derived['refreshes_per_window']}, "
        f"W = {derived['W_max_acts_per_window']:,} ACTs "
        "(paper: ~1,360K)"
    )


if __name__ == "__main__":
    main()
