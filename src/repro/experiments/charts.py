"""Terminal charts: render figure data without a plotting stack.

The evaluation figures are bar/line charts; offline environments have
no matplotlib, so experiment ``main()``s can attach these pure-text
renderings.  They are intentionally simple -- labeled horizontal bars
with a shared scale, and multi-series "line" charts as aligned columns
of scaled glyphs.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["bar_chart", "grouped_bar_chart", "series_chart"]

_BLOCK = "#"


def bar_chart(
    data: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    log_scale: bool = False,
) -> str:
    """Horizontal bar chart of label -> value.

    Args:
        data: Ordered mapping of labels to non-negative values.
        width: Maximum bar width in characters.
        unit: Suffix printed after each value.
        log_scale: Scale bars by log10(1 + value) -- for series spanning
            orders of magnitude (e.g. table sizes).
    """
    if not data:
        return "(no data)"
    if any(value < 0 for value in data.values()):
        raise ValueError("bar_chart values must be non-negative")
    transform = (lambda v: math.log10(1 + v)) if log_scale else (lambda v: v)
    peak = max(transform(v) for v in data.values()) or 1.0
    label_width = max(len(label) for label in data)
    lines = []
    for label, value in data.items():
        bar = _BLOCK * max(
            0, round(width * transform(value) / peak)
        )
        if value > 0 and not bar:
            bar = _BLOCK  # visible sliver for tiny nonzero values
        lines.append(f"{label.ljust(label_width)} |{bar} {value:g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Bars grouped by outer label (workload -> scheme -> value)."""
    if not groups:
        return "(no data)"
    peak = max(
        (value for inner in groups.values() for value in inner.values()),
        default=1.0,
    ) or 1.0
    inner_width = max(
        len(name) for inner in groups.values() for name in inner
    )
    lines = []
    for group, inner in groups.items():
        lines.append(f"{group}:")
        for name, value in inner.items():
            if value < 0:
                raise ValueError("grouped_bar_chart values must be >= 0")
            bar = _BLOCK * max(0, round(width * value / peak))
            if value > 0 and not bar:
                bar = _BLOCK
            lines.append(
                f"  {name.ljust(inner_width)} |{bar} {value:g}{unit}"
            )
    return "\n".join(lines)


def series_chart(
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    unit: str = "",
    log_scale: bool = False,
) -> str:
    """Multi-series chart: one row per (x, series) pair, aligned.

    Suited to the Fig. 9 sweeps: x is the threshold axis, each series a
    scheme.
    """
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_labels)} x labels"
            )
    transform = (lambda v: math.log10(1 + v)) if log_scale else (lambda v: v)
    peak = max(
        (transform(v) for values in series.values() for v in values),
        default=1.0,
    ) or 1.0
    x_width = max(len(x) for x in x_labels) if x_labels else 0
    name_width = max(len(n) for n in series) if series else 0
    lines = []
    for index, x in enumerate(x_labels):
        for name, values in series.items():
            value = values[index]
            bar = _BLOCK * max(0, round(width * transform(value) / peak))
            if value > 0 and not bar:
                bar = _BLOCK
            prefix = x.ljust(x_width) if name == next(iter(series)) else " " * x_width
            lines.append(
                f"{prefix}  {name.ljust(name_width)} |{bar} {value:g}{unit}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
