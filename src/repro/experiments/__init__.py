"""One module per paper table/figure; each has ``run()`` and ``main()``.

Run any experiment from the command line::

    python -m repro.experiments.table2
    python -m repro.experiments.fig8

or programmatically via :func:`load` / :data:`EXPERIMENT_NAMES`.
(Submodules are loaded lazily so ``python -m`` execution stays clean.)
"""

from importlib import import_module

#: Experiment id -> module path (each module exposes run() and main()).
EXPERIMENT_NAMES = {
    "table1": "repro.experiments.table1",
    "table2": "repro.experiments.table2",
    "table3": "repro.experiments.table3",
    "table4": "repro.experiments.table4",
    "table5": "repro.experiments.table5",
    "fig3": "repro.experiments.fig3",
    "fig6": "repro.experiments.fig6",
    "fig7": "repro.experiments.fig7_security",
    "fig8": "repro.experiments.fig8",
    "fig9": "repro.experiments.fig9",
    "non_adjacent": "repro.experiments.non_adjacent",
    "weighted_speedup": "repro.experiments.weighted_speedup",
    "capability_matrix": "repro.experiments.capability_matrix",
}


def load(name: str):
    """Import and return the experiment module for ``name``."""
    try:
        path = EXPERIMENT_NAMES[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from "
            f"{sorted(EXPERIMENT_NAMES)}"
        ) from None
    return import_module(path)


__all__ = ["EXPERIMENT_NAMES", "load"]
