"""One-shot report generator: every experiment into a Markdown file.

``python -m repro.experiments.report [--out report.md] [--fast]``
runs every table/figure experiment (scaled traces with ``--fast``) and
writes a self-contained Markdown report, capturing each experiment's
printed output verbatim -- the format of the checked-in EXPERIMENTS.md
numbers.
"""

from __future__ import annotations

import argparse
import contextlib
import datetime
import io
import time

from . import EXPERIMENT_NAMES, load

__all__ = ["generate_report", "main"]

#: Experiments whose run() accepts duration_ns (scaled in fast mode).
_SCALED = {"fig8", "fig9"}
#: Experiments skipped in fast mode (minutes of Monte Carlo / sweeps).
_SLOW = {"fig7", "weighted_speedup", "capability_matrix"}


def generate_report(fast: bool = True) -> str:
    """Run every experiment; return the Markdown report text."""
    stamp = datetime.datetime.now().isoformat(timespec="seconds")
    mode = "fast (scaled traces)" if fast else "full (one tREFW per run)"
    sections = [
        "# Graphene reproduction report",
        "",
        f"Generated {stamp} in {mode} mode.",
        "",
    ]
    for name in EXPERIMENT_NAMES:
        module = load(name)
        sections.append(f"## {name}")
        sections.append("")
        if fast and name in _SLOW:
            sections.append(
                "*Skipped in fast mode -- run "
                f"`python -m {EXPERIMENT_NAMES[name]}` for the full "
                "result (recorded in EXPERIMENTS.md).*"
            )
            sections.append("")
            continue
        buffer = io.StringIO()
        started = time.perf_counter()
        with contextlib.redirect_stdout(buffer):
            if fast and name in _SCALED:
                _fast_main(name, module)
            else:
                module.main()
        elapsed = time.perf_counter() - started
        sections.append("```text")
        sections.append(buffer.getvalue().rstrip())
        sections.append("```")
        sections.append(f"*({elapsed:.1f}s)*")
        sections.append("")
    return "\n".join(sections)


def _fast_main(name: str, module) -> None:
    """Scaled-down invocation for the trace-heavy experiments."""
    if name == "fig8":
        data = module.run(
            duration_ns=4e6,
            realistic=("mcf", "MICA", "omnetpp"),
            adversarial=("S3",),
        )
        matrix = data["matrix"]
        print("Fig. 8 (fast mode: 4 ms traces, 4 workloads)")
        for label in (*data["realistic"], *data["adversarial"]):
            row = ", ".join(
                f"{scheme}={100 * matrix[label][scheme].refresh_energy_increase():.3f}%"
                for scheme in module.SCHEME_ORDER
            )
            print(f"  {label}: {row}")
    elif name == "fig9":
        data = module.run(
            thresholds=(50_000, 12_500, 1_562),
            duration_ns=4e6,
            normal=("mcf",),
            adversarial=("S3",),
        )
        print("Fig. 9 (fast mode: 3 thresholds, 4 ms traces)")
        for trh in data["thresholds"]:
            row = ", ".join(
                f"{scheme}={100 * data['energy_adversarial'][trh][scheme]:.2f}%"
                for scheme in module.SCHEME_ORDER
            )
            print(f"  T_RH={trh:,} adversarial energy: {row}")
    else:  # pragma: no cover - registry guards this
        raise AssertionError(name)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="report.md")
    parser.add_argument(
        "--full", action="store_true",
        help="full refresh-window traces (tens of minutes)",
    )
    args = parser.parse_args(argv)
    report = generate_report(fast=not args.full)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(report)
    print(f"wrote {args.out} ({len(report.splitlines())} lines)")


if __name__ == "__main__":
    main()
