"""Fig. 8: refresh-energy and performance overheads at ``T_RH`` = 50K.

Three panels, regenerated as tables:

* **(a)** refresh-energy increase on the 16 realistic workloads
  (9 SPEC-high + 2 mixes + 5 multithreaded).  Paper: Graphene and
  TWiCe are exactly zero everywhere; PARA up to 0.64%; CBT-128 up to
  7.6%.
* **(b)** refresh-energy increase on the adversarial patterns S1-S4.
  Paper: Graphene bounded by ~0.34%, TWiCe slightly lower, PARA ~2.1%
  constant, CBT-128 the largest and burstiest.
* **(c)** performance loss from victim refreshes on the realistic
  workloads.  Paper: zero for Graphene/TWiCe, up to 0.52% for PARA,
  up to 5.1% for CBT-128.

Every scheme sees the *same* trace (same seed), so differences are
purely the schemes' victim refreshes.
"""

from __future__ import annotations

from ..dram.timing import DDR4_2400, DramTimings
from ..workloads.spec_like import REALISTIC_PROFILES
from ..workloads.synthetic import SYNTHETIC_PATTERNS
from .common import format_table, percent, run_workload_matrix
from .runner import get_runner

__all__ = ["run", "main", "SCHEME_ORDER"]

SCHEME_ORDER = ("para", "cbt", "twice", "graphene")


def run(
    hammer_threshold: int = 50_000,
    duration_ns: float | None = None,
    realistic: tuple[str, ...] | None = None,
    adversarial: tuple[str, ...] | None = None,
    seed: int = 42,
    timings: DramTimings = DDR4_2400,
) -> dict[str, object]:
    """Run the full (workload x scheme) matrix for all three panels.

    Args:
        duration_ns: Trace length per run (default: one tREFW; tests
            and quick benchmarks pass a fraction -- all metrics are
            per-window normalized).
        realistic: Workload subset for panels (a)/(c) (default: all 16).
        adversarial: Pattern subset for panel (b) (default: all 5).
    """
    if duration_ns is None:
        duration_ns = timings.trefw
    if realistic is None:
        realistic = tuple(REALISTIC_PROFILES)
    if adversarial is None:
        adversarial = tuple(SYNTHETIC_PATTERNS)

    workloads = {name: "realistic" for name in realistic}
    workloads.update({name: "synthetic" for name in adversarial})
    matrix = run_workload_matrix(
        workloads,
        SCHEME_ORDER,
        duration_ns=duration_ns,
        seed=seed,
        timings=timings,
        hammer_threshold=hammer_threshold,
    )
    return {
        "matrix": matrix,
        "realistic": realistic,
        "adversarial": adversarial,
        "duration_ns": duration_ns,
    }


def _energy_rows(matrix, labels):
    rows = []
    for label in labels:
        entry = matrix[label]
        rows.append(
            [label]
            + [
                percent(entry[scheme].refresh_energy_increase(), 3)
                for scheme in SCHEME_ORDER
            ]
        )
    return rows


def _perf_rows(matrix, labels):
    rows = []
    for label in labels:
        perf = matrix[label]["perf"]
        rows.append(
            [label] + [percent(perf[scheme], 3) for scheme in SCHEME_ORDER]
        )
    return rows


def main() -> None:
    data = run()
    matrix = data["matrix"]
    headers = ["workload"] + [s.upper() for s in SCHEME_ORDER]

    print("Fig. 8(a): refresh-energy increase, realistic workloads")
    print(format_table(headers, _energy_rows(matrix, data["realistic"])))

    print("\nFig. 8(b): refresh-energy increase, adversarial patterns")
    print(format_table(headers, _energy_rows(matrix, data["adversarial"])))

    print("\nFig. 8(c): performance loss from victim refreshes, "
          "realistic workloads")
    print(format_table(headers, _perf_rows(matrix, data["realistic"])))

    from .charts import grouped_bar_chart

    print("\nFig. 8(b) as a chart (refresh-energy increase, %):")
    print(grouped_bar_chart({
        label: {
            scheme: round(
                100 * matrix[label][scheme].refresh_energy_increase(), 3
            )
            for scheme in SCHEME_ORDER
        }
        for label in data["adversarial"]
    }, unit="%"))

    print(
        "\nPaper shape: Graphene = TWiCe = 0 on every realistic workload; "
        "PARA <= 0.64% energy / 0.52% perf; CBT-128 <= 7.6% energy / "
        "5.1% perf with bursty NRRs; on adversarial patterns Graphene "
        "stays <= ~0.34-0.5%, PARA ~2.1%, CBT largest."
    )


if __name__ == "__main__":
    main()
