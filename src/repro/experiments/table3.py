"""Table III: architectural parameters of the simulated system."""

from __future__ import annotations

from ..sim.system import PAPER_SYSTEM, SystemConfig, table3_rows
from .common import format_table
from .runner import get_runner

__all__ = ["run", "main"]


def run(config: SystemConfig = PAPER_SYSTEM) -> list[tuple[str, str]]:
    """Produce the Table III parameter rows."""
    return get_runner().call(
        "repro.experiments.table3:_compute", label="table3", config=config
    )


def _compute(config: SystemConfig) -> list[tuple[str, str]]:
    return table3_rows(config)


def main() -> None:
    print("Table III: architectural parameters for simulation")
    print(format_table(["Parameter", "Value"], run()))
    print(
        "\nNote: the reproduction drives the memory system at DRAM-command "
        "level; the core-side rows document the modeled target (see the "
        "substitution notes in DESIGN.md)."
    )


if __name__ == "__main__":
    main()
