"""Shared utilities for the per-table/per-figure experiment modules.

Every experiment module exposes:

* ``run(...) -> dict`` -- produce the table/figure data as plain
  structures (no printing), with parameters that allow scaled-down
  executions for tests and benchmarks;
* ``main() -> None`` -- run at presentation scale and print the rows
  the paper reports (invoked by ``python -m repro.experiments.<name>``).

This module supplies the tiny text-table renderer they share and the
standard (workload x scheme) sweep harness used by Figs. 8 and 9.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..dram.timing import DDR4_2400, DramTimings
from ..mitigations.base import MitigationFactory
from ..mitigations import no_mitigation_factory
from ..sim.metrics import SimulationResult
from ..sim.performance import performance_overhead
from ..sim.simulator import simulate
from ..workloads.spec_like import REALISTIC_PROFILES, profile_events
from ..workloads.synthetic import SYNTHETIC_PATTERNS, synthetic_events

__all__ = [
    "format_table",
    "percent",
    "run_workload_matrix",
    "realistic_trace",
    "synthetic_trace",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned plain-text table (monospace reports)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join(line(row) for row in materialized)
    return f"{line(list(headers))}\n{separator}\n{body}"


def percent(value: float, digits: int = 3) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def realistic_trace(
    workload: str,
    duration_ns: float,
    seed: int = 42,
    timings: DramTimings = DDR4_2400,
    rows_per_bank: int = 65536,
):
    """ACT stream for one named realistic workload profile."""
    return profile_events(
        REALISTIC_PROFILES[workload],
        duration_ns,
        rows_per_bank=rows_per_bank,
        seed=seed,
        timings=timings,
    )


def synthetic_trace(
    pattern: str,
    duration_ns: float,
    seed: int = 42,
    timings: DramTimings = DDR4_2400,
    rows_per_bank: int = 65536,
):
    """ACT stream for one named S1-S4 adversarial pattern."""
    rows = SYNTHETIC_PATTERNS[pattern](rows_per_bank, seed)
    return synthetic_events(rows, duration_ns=duration_ns, timings=timings)


def run_workload_matrix(
    workloads: Mapping[str, str],
    factories: Mapping[str, MitigationFactory],
    duration_ns: float,
    seed: int = 42,
    timings: DramTimings = DDR4_2400,
    rows_per_bank: int = 65536,
    hammer_threshold: float = 50_000,
    track_faults: bool = False,
) -> dict[str, dict[str, object]]:
    """Run every (workload, scheme) pair plus the unprotected baseline.

    Args:
        workloads: ``{label: kind}`` where kind is "realistic" or
            "synthetic" (selects the trace source for the label).
        factories: ``{scheme label: factory}``.
        duration_ns: Trace length per run.
        seed: Shared trace seed -- every scheme sees the same stream.
        track_faults: Enable the fault referee (slower; used by the
            protection-guarantee experiments).

    Returns:
        ``{workload: {scheme: SimulationResult, ..., "perf": {scheme:
        overhead}}}`` -- results plus per-scheme performance overheads
        versus the baseline.
    """

    def trace(label: str, kind: str):
        if kind == "realistic":
            return realistic_trace(
                label, duration_ns, seed, timings, rows_per_bank
            )
        if kind == "synthetic":
            return synthetic_trace(
                label, duration_ns, seed, timings, rows_per_bank
            )
        raise ValueError(f"unknown workload kind {kind!r}")

    matrix: dict[str, dict[str, object]] = {}
    for label, kind in workloads.items():
        baseline = simulate(
            trace(label, kind),
            no_mitigation_factory(),
            scheme="none",
            workload=label,
            rows_per_bank=rows_per_bank,
            timings=timings,
            hammer_threshold=hammer_threshold,
            track_faults=track_faults,
            duration_ns=duration_ns,
        )
        entry: dict[str, object] = {"none": baseline}
        overheads: dict[str, float] = {}
        for scheme, factory in factories.items():
            result = simulate(
                trace(label, kind),
                factory,
                scheme=scheme,
                workload=label,
                rows_per_bank=rows_per_bank,
                timings=timings,
                hammer_threshold=hammer_threshold,
                track_faults=track_faults,
                duration_ns=duration_ns,
            )
            entry[scheme] = result
            overheads[scheme] = performance_overhead(result, baseline)
        entry["perf"] = overheads
        matrix[label] = entry
    return matrix
