"""Shared utilities for the per-table/per-figure experiment modules.

Every experiment module exposes:

* ``run(...) -> dict`` -- produce the table/figure data as plain
  structures (no printing), with parameters that allow scaled-down
  executions for tests and benchmarks;
* ``main() -> None`` -- run at presentation scale and print the rows
  the paper reports (invoked by ``python -m repro.experiments.<name>``).

This module supplies the tiny text-table renderer they share and the
standard (workload x scheme) sweep harness used by Figs. 8 and 9.  The
sweep is expressed as declarative jobs for the shared
:mod:`~repro.experiments.runner`, so every cell can be cached on disk
and fanned out across CPU cores; :func:`matrix_jobs` /
:func:`assemble_matrix` expose the two halves separately for
experiments (Fig. 9) that batch several matrices into one fan-out.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..dram.timing import DDR4_2400, DramTimings
from ..sim.metrics import SimulationResult
from ..sim.performance import performance_overhead
from ..workloads.spec_like import REALISTIC_PROFILES, profile_events
from ..workloads.synthetic import SYNTHETIC_PATTERNS, synthetic_events
from .runner import ExperimentRunner, Job, get_runner, sim_job

__all__ = [
    "DEFAULT_SCHEMES",
    "format_table",
    "percent",
    "matrix_jobs",
    "assemble_matrix",
    "run_workload_matrix",
    "realistic_trace",
    "synthetic_trace",
]

#: Scheme labels of the Fig. 8/9 comparison set (factory spec
#: ``["scaling", <scheme>]`` -- see :func:`repro.experiments.runner.build_factory`).
DEFAULT_SCHEMES = ("para", "cbt", "twice", "graphene")


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned plain-text table (monospace reports)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join(line(row) for row in materialized)
    return f"{line(list(headers))}\n{separator}\n{body}"


def percent(value: float, digits: int = 3) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def realistic_trace(
    workload: str,
    duration_ns: float,
    seed: int = 42,
    timings: DramTimings = DDR4_2400,
    rows_per_bank: int = 65536,
):
    """ACT stream for one named realistic workload profile."""
    return profile_events(
        REALISTIC_PROFILES[workload],
        duration_ns,
        rows_per_bank=rows_per_bank,
        seed=seed,
        timings=timings,
    )


def synthetic_trace(
    pattern: str,
    duration_ns: float,
    seed: int = 42,
    timings: DramTimings = DDR4_2400,
    rows_per_bank: int = 65536,
):
    """ACT stream for one named S1-S4 adversarial pattern."""
    rows = SYNTHETIC_PATTERNS[pattern](rows_per_bank, seed)
    return synthetic_events(rows, duration_ns=duration_ns, timings=timings)


def matrix_jobs(
    workloads: Mapping[str, str],
    schemes: Sequence[str],
    duration_ns: float,
    seed: int = 42,
    timings: DramTimings = DDR4_2400,
    rows_per_bank: int = 65536,
    hammer_threshold: float = 50_000,
    track_faults: bool = False,
    label_prefix: str = "",
) -> list[Job]:
    """Declarative jobs for every (workload, scheme) pair + baselines.

    Per workload, the job order is the unprotected baseline followed by
    ``schemes``; :func:`assemble_matrix` relies on that layout.
    """
    jobs: list[Job] = []
    for label, kind in workloads.items():
        trace = {"kind": kind, "label": label}
        for scheme in ("none", *schemes):
            factory = ["none"] if scheme == "none" else ["scaling", scheme]
            jobs.append(
                sim_job(
                    trace=trace,
                    factory=factory,
                    scheme=scheme,
                    workload=label,
                    duration_ns=duration_ns,
                    seed=seed,
                    timings=timings,
                    rows_per_bank=rows_per_bank,
                    hammer_threshold=hammer_threshold,
                    track_faults=track_faults,
                    label=f"{label_prefix}{label}/{scheme}",
                )
            )
    return jobs


def assemble_matrix(
    results: Sequence[SimulationResult],
    workloads: Mapping[str, str],
    schemes: Sequence[str],
) -> dict[str, dict[str, object]]:
    """Fold a :func:`matrix_jobs` result list back into the matrix dict."""
    matrix: dict[str, dict[str, object]] = {}
    cursor = iter(results)
    for label in workloads:
        baseline = next(cursor)
        entry: dict[str, object] = {"none": baseline}
        overheads: dict[str, float] = {}
        for scheme in schemes:
            result = next(cursor)
            entry[scheme] = result
            overheads[scheme] = performance_overhead(result, baseline)
        entry["perf"] = overheads
        matrix[label] = entry
    return matrix


def run_workload_matrix(
    workloads: Mapping[str, str],
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    duration_ns: float = DDR4_2400.trefw,
    seed: int = 42,
    timings: DramTimings = DDR4_2400,
    rows_per_bank: int = 65536,
    hammer_threshold: float = 50_000,
    track_faults: bool = False,
    runner: ExperimentRunner | None = None,
) -> dict[str, dict[str, object]]:
    """Run every (workload, scheme) pair plus the unprotected baseline.

    Args:
        workloads: ``{label: kind}`` where kind is "realistic" or
            "synthetic" (selects the trace source for the label).
        schemes: Scheme labels from the Fig. 8/9 comparison set.
        duration_ns: Trace length per run.
        seed: Shared trace seed -- every scheme sees the same stream.
        track_faults: Enable the fault referee (slower; used by the
            protection-guarantee experiments).
        runner: Executes the cells (default: the session runner, so
            CLI ``--jobs``/caching apply automatically).

    Returns:
        ``{workload: {scheme: SimulationResult, ..., "perf": {scheme:
        overhead}}}`` -- results plus per-scheme performance overheads
        versus the baseline.
    """
    runner = runner or get_runner()
    jobs = matrix_jobs(
        workloads,
        schemes,
        duration_ns=duration_ns,
        seed=seed,
        timings=timings,
        rows_per_bank=rows_per_bank,
        hammer_threshold=hammer_threshold,
        track_faults=track_faults,
    )
    return assemble_matrix(runner.run(jobs), workloads, schemes)
