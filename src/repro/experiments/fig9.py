"""Fig. 9: scalability across Row Hammer thresholds (Section V-C).

Four panels across ``T_RH`` in {50K, 25K, 12.5K, 6.25K, 3.125K, 1.56K}:

* **(a)** table size per rank (16 banks) -- pure area models;
* **(b)** average refresh-energy overhead on normal workloads;
* **(c)** average refresh-energy overhead on adversarial patterns;
* **(d)** average performance overhead on normal workloads.

Every scheme is reconfigured per threshold exactly as the paper does
(PARA's p re-derived, CBT's counters doubled per halving, TWiCe and
Graphene tables resized).  Simulation panels use representative
workload subsets by default (full sweeps are a matter of passing the
complete lists; metrics are averaged across the subset like the
paper's averages).
"""

from __future__ import annotations

from ..analysis.scaling import PAPER_THRESHOLD_SWEEP
from ..core.area import table_size_series
from ..dram.timing import DDR4_2400, DramTimings
from .common import assemble_matrix, format_table, matrix_jobs, percent
from .runner import get_runner

__all__ = ["run", "main", "SCHEME_ORDER"]

SCHEME_ORDER = ("para", "cbt", "twice", "graphene")

#: Representative subsets for the simulation panels: the heaviest
#: pointer-chaser, the most locality-skewed, and a lighter workload.
DEFAULT_NORMAL = ("mcf", "MICA", "omnetpp")
DEFAULT_ADVERSARIAL = ("S3", "S1-10")


def run(
    thresholds: tuple[int, ...] = PAPER_THRESHOLD_SWEEP,
    duration_ns: float | None = None,
    normal: tuple[str, ...] = DEFAULT_NORMAL,
    adversarial: tuple[str, ...] = DEFAULT_ADVERSARIAL,
    seed: int = 42,
    timings: DramTimings = DDR4_2400,
) -> dict[str, object]:
    """Produce all four Fig. 9 panels.

    Args:
        thresholds: The T_RH sweep (paper: 50K .. 1.56K).
        duration_ns: Per-run trace length (default one tREFW).
        normal / adversarial: Workload subsets averaged per panel.
    """
    if duration_ns is None:
        duration_ns = timings.trefw

    area = table_size_series(list(thresholds), timings)

    energy_normal: dict[int, dict[str, float]] = {}
    energy_adversarial: dict[int, dict[str, float]] = {}
    perf_normal: dict[int, dict[str, float]] = {}

    workloads = {name: "realistic" for name in normal}
    workloads.update({name: "synthetic" for name in adversarial})

    # One flat batch across the whole sweep: every (threshold,
    # workload, scheme) cell is independent, so the runner can fan the
    # entire figure out at once.
    jobs = []
    for trh in thresholds:
        jobs.extend(
            matrix_jobs(
                workloads,
                SCHEME_ORDER,
                duration_ns=duration_ns,
                seed=seed,
                timings=timings,
                hammer_threshold=trh,
                label_prefix=f"trh={trh}/",
            )
        )
    results = get_runner().run(jobs)
    per_threshold = len(jobs) // len(thresholds)

    for position, trh in enumerate(thresholds):
        matrix = assemble_matrix(
            results[position * per_threshold:(position + 1) * per_threshold],
            workloads,
            SCHEME_ORDER,
        )
        energy_normal[trh] = {
            scheme: sum(
                matrix[w][scheme].refresh_energy_increase() for w in normal
            ) / len(normal)
            for scheme in SCHEME_ORDER
        }
        energy_adversarial[trh] = {
            scheme: sum(
                matrix[w][scheme].refresh_energy_increase()
                for w in adversarial
            ) / len(adversarial)
            for scheme in SCHEME_ORDER
        }
        perf_normal[trh] = {
            scheme: sum(matrix[w]["perf"][scheme] for w in normal)
            / len(normal)
            for scheme in SCHEME_ORDER
        }

    return {
        "thresholds": thresholds,
        "area": area,
        "energy_normal": energy_normal,
        "energy_adversarial": energy_adversarial,
        "perf_normal": perf_normal,
    }


def main() -> None:
    data = run()
    thresholds = data["thresholds"]

    print("Fig. 9(a): table size per rank (16 banks), bits")
    rows = []
    for trh in thresholds:
        rows.append(
            [f"{trh:,}"]
            + [
                f"{data['area'][scheme][trh].per_rank():,}"
                for scheme in ("CBT", "TWiCe", "Graphene")
            ]
        )
    print(format_table(["T_RH", "CBT", "TWiCe", "Graphene"], rows))

    for key, title in (
        ("energy_normal", "Fig. 9(b): avg refresh-energy overhead, "
                          "normal workloads"),
        ("energy_adversarial", "Fig. 9(c): avg refresh-energy overhead, "
                               "adversarial patterns"),
        ("perf_normal", "Fig. 9(d): avg performance overhead, "
                        "normal workloads"),
    ):
        print(f"\n{title}")
        rows = [
            [f"{trh:,}"]
            + [percent(data[key][trh][scheme], 3) for scheme in SCHEME_ORDER]
            for trh in thresholds
        ]
        print(format_table(
            ["T_RH"] + [s.upper() for s in SCHEME_ORDER], rows
        ))

    from .charts import series_chart

    print("\nFig. 9(a) as a chart (bits per rank, log scale):")
    print(series_chart(
        [f"{trh:,}" for trh in thresholds],
        {
            scheme: [
                float(data["area"][scheme][trh].per_rank())
                for trh in thresholds
            ]
            for scheme in ("Graphene", "CBT", "TWiCe")
        },
        log_scale=True,
    ))

    print(
        "\nPaper shape: all table sizes grow ~linearly in 1/T_RH with "
        "TWiCe an order of magnitude above Graphene; PARA's overheads "
        "grow steeply as T_RH falls; Graphene/TWiCe stay ~0 on normal "
        "workloads at every threshold and scale linearly on adversarial "
        "patterns; CBT stays notable throughout."
    )


if __name__ == "__main__":
    main()
