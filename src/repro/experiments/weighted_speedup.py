"""Closed-loop weighted-speedup validation (Fig. 8(c) methodology).

The primary Fig. 8(c) reproduction uses the open-loop queueing proxy;
this supplementary experiment re-measures performance overhead with the
closed-loop 16-core model of :mod:`repro.sim.closed_loop`, where memory
slowdowns throttle request rates exactly as they throttle a core, and
reports the paper's actual metric -- weighted-speedup reduction.

Not a paper table/figure of its own; it validates that the conclusions
of Fig. 8(c) (Graphene and TWiCe cost exactly nothing; PARA's cost is
negligible) are robust to the performance-model substitution.
"""

from __future__ import annotations

from ..analysis.scaling import scheme_factories
from ..mitigations import no_mitigation_factory
from ..sim.closed_loop import (
    ClosedLoopResult,
    core_profile_for,
    run_closed_loop,
    weighted_speedup_reduction,
)
from .common import format_table, percent
from .runner import Job, get_runner

__all__ = ["run", "main"]

SCHEME_ORDER = ("para", "cbt", "twice", "graphene")


def closed_loop_cell(
    workload: str,
    scheme: str,
    duration_ns: float,
    hammer_threshold: int,
    cores: int,
    seed: int,
) -> ClosedLoopResult:
    """One declarative closed-loop run (the runner's job target)."""
    if scheme == "none":
        factory = no_mitigation_factory()
    else:
        factory = scheme_factories(hammer_threshold)[scheme]
    return run_closed_loop(
        core_profile_for(workload, cores=cores), factory, scheme,
        duration_ns, cores=cores, hammer_threshold=hammer_threshold,
        seed=seed,
    )


def run(
    workloads: tuple[str, ...] = ("mcf", "MICA"),
    duration_ns: float = 16e6,
    hammer_threshold: int = 50_000,
    cores: int = 16,
    seed: int = 5,
) -> dict[str, dict[str, float]]:
    """Weighted-speedup reduction per (workload, scheme)."""
    jobs = [
        Job(
            fn="repro.experiments.weighted_speedup:closed_loop_cell",
            kwargs=dict(
                workload=workload, scheme=scheme, duration_ns=duration_ns,
                hammer_threshold=hammer_threshold, cores=cores, seed=seed,
            ),
            label=f"{workload}/{scheme}",
        )
        for workload in workloads
        for scheme in ("none", *SCHEME_ORDER)
    ]
    cells = iter(get_runner().run(jobs))

    results: dict[str, dict[str, float]] = {}
    for workload in workloads:
        baseline = next(cells)
        results[workload] = {
            scheme: weighted_speedup_reduction(next(cells), baseline)
            for scheme in SCHEME_ORDER
        }
    return results


def main() -> None:
    data = run()
    print("Closed-loop weighted-speedup reduction (16 cores, T_RH = 50K)")
    rows = [
        [workload] + [percent(data[workload][s], 3) for s in SCHEME_ORDER]
        for workload in data
    ]
    print(format_table(
        ["workload"] + [s.upper() for s in SCHEME_ORDER], rows
    ))
    print(
        "\nPaper Fig. 8(c): Graphene/TWiCe exactly 0; PARA <= 0.52%; "
        "CBT-128 <= 5.1%.  The closed-loop model confirms the zero-cost "
        "result for the deterministic trackers under its own metric."
    )


if __name__ == "__main__":
    main()
