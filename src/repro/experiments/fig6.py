"""Fig. 6: reset-window divisor trade-off.

For k = 1..10 (reset window = tREFW / k), plots-as-rows:

* the number of table entries (right axis of the paper's figure) --
  shrinking toward the ``2W'/T_RH``-driven floor as ``(k+1)/k -> 1``;
* the worst-case number of additional refreshes relative to one
  tREFW's normal refreshes (left axis) -- growing with k since ``T``
  shrinks as ``1/(k+1)``.

The paper picks k = 2 (81 entries) as its operating point; larger k
buys little area and costs extra worst-case refreshes.
"""

from __future__ import annotations

from ..analysis.worst_case import ResetWindowPoint, reset_window_tradeoff
from ..dram.timing import DDR4_2400, DramTimings
from .common import format_table, percent
from .runner import get_runner

__all__ = ["run", "main"]


def run(
    hammer_threshold: int = 50_000,
    max_k: int = 10,
    timings: DramTimings = DDR4_2400,
) -> list[ResetWindowPoint]:
    """Tabulate the reset-window trade-off for k = 1..``max_k``."""
    return get_runner().call(
        "repro.experiments.fig6:_compute", label="fig6",
        hammer_threshold=hammer_threshold, max_k=max_k, timings=timings,
    )


def _compute(
    hammer_threshold: int, max_k: int, timings: DramTimings
) -> list[ResetWindowPoint]:
    return reset_window_tradeoff(
        hammer_threshold=hammer_threshold,
        k_values=range(1, max_k + 1),
        timings=timings,
    )


def main() -> None:
    points = run()
    print("Fig. 6: table size and worst-case extra refreshes vs k "
          "(single bank, T_RH = 50K)")
    rows = [
        (
            p.k,
            p.num_entries,
            f"{p.tracking_threshold:,}",
            f"{p.worst_case_rows_per_trefw:,}",
            percent(p.relative_additional_refreshes, 2),
        )
        for p in points
    ]
    print(
        format_table(
            ["k", "N_entry", "T", "worst-case rows/tREFW",
             "relative extra refreshes"],
            rows,
        )
    )
    k2 = points[1]
    print(
        f"\nOperating point k=2: {k2.num_entries} entries (paper: 81), "
        f"worst case {percent(k2.relative_additional_refreshes, 2)} "
        "(paper abstract: 'refresh energy only by 0.34%' for the k=1 "
        f"bound = {percent(points[0].relative_additional_refreshes, 2)})"
    )


if __name__ == "__main__":
    main()
