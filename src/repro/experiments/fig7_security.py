"""Fig. 7 / Section V-A: security analysis of the probabilistic schemes.

Three results:

1. **PARA sizing.**  Deriving the refresh probability that yields
   near-complete protection (< 1% chance of any successful attack per
   year on the 64-bank system) reproduces the paper's p = 0.00145 at
   ``T_RH`` = 50K and the whole Section V-C series.

2. **PRoHIT vs Fig. 7(a).**  With its refresh budget pinned to
   PARA-0.00145's (~2,000 extra refreshes per bank per tREFW), PRoHIT's
   bit-flip probability against the 9-ACT killer pattern is scanned
   across its (unpublished) sampling constants: it sweeps from 0
   through the paper's 0.25% and far beyond -- i.e. PRoHIT's
   protection collapses under this pattern for plausible settings,
   which is the paper's conclusion ("nearly 100% chance of protection
   failure within a year" once the per-window probability is
   measurable at all).

3. **MRLoc vs Fig. 7(b).**  Cycling eight non-adjacent aggressors (16
   victims) against the 15-entry history queue drives its hit rate to
   exactly zero -- MRLoc degenerates to bare PARA -- while a pattern
   that fits in the queue keeps the hit rate near 1 (which *costs*
   extra refreshes on benign workloads).
"""

from __future__ import annotations

from ..analysis.security import (
    derive_para_probability,
    mrloc_hit_rate_under_pattern,
    para_system_year_failure,
    simulate_prohit_attack,
)
from ..mitigations.para import PAPER_PARA_P, PAPER_PARA_P_SERIES
from .common import format_table, percent
from .runner import Job, get_runner

__all__ = ["run", "main", "calibrate_prohit_budget"]

#: PARA-0.00145's expected extra refreshes per bank per tREFW at the
#: maximal attack rate (p x W) -- the budget PRoHIT is pinned to.
PARA_BUDGET_PER_WINDOW = 1972


def _prohit_point(
    q: float,
    refresh_period: int,
    hammer_threshold: int,
    trials: int,
    seed: int,
) -> dict[str, float]:
    """One PRoHIT Monte-Carlo point (the runner's job target)."""
    outcome = simulate_prohit_attack(
        hammer_threshold,
        insert_probability=q,
        refresh_period=refresh_period,
        trials=trials,
        seed=seed,
    )
    return {
        "q": q,
        "flip_probability": outcome.flip_probability,
        "refreshes_per_window": outcome.refreshes_per_window,
    }


def _mrloc_hit_rate(aggressors: int, acts: int, seed: int) -> float:
    """One MRLoc queue-analysis point (the runner's job target)."""
    return mrloc_hit_rate_under_pattern(aggressors, acts=acts, seed=seed)


def calibrate_prohit_budget(
    q_values: tuple[float, ...],
    refresh_period: int = 4,
    hammer_threshold: int = 50_000,
    trials: int = 200,
    seed: int = 0,
) -> list[dict[str, float]]:
    """PRoHIT flip probability across sampling rates at a fixed budget.

    The refresh drain period (every 4th REF ~ 2,048 refreshes/window)
    pins the budget to PARA-0.00145's; ``q`` is the remaining free
    constant of the design.  Each ``q`` is an independent Monte-Carlo
    job on the shared runner.
    """
    return get_runner().run([
        Job(
            fn="repro.experiments.fig7_security:_prohit_point",
            kwargs=dict(
                q=q, refresh_period=refresh_period,
                hammer_threshold=hammer_threshold, trials=trials, seed=seed,
            ),
            label=f"prohit q={q}",
        )
        for q in q_values
    ])


def run(
    trials: int = 200,
    prohit_q_values: tuple[float, ...] = (0.005, 0.01, 0.015, 0.02, 0.05),
    mrloc_acts: int = 20_000,
    seed: int = 0,
) -> dict[str, object]:
    """Produce all three Section V-A analyses."""
    para_rows = []
    for trh, paper_p in PAPER_PARA_P_SERIES.items():
        derived = derive_para_probability(trh)
        para_rows.append(
            {
                "hammer_threshold": trh,
                "derived_p": derived,
                "paper_p": paper_p,
                "year_failure_at_paper_p": para_system_year_failure(
                    paper_p, trh
                ),
            }
        )
    prohit = calibrate_prohit_budget(
        prohit_q_values, trials=trials, seed=seed
    )
    runner = get_runner()
    hit_8, hit_6 = runner.run([
        Job(
            fn="repro.experiments.fig7_security:_mrloc_hit_rate",
            kwargs=dict(aggressors=n, acts=mrloc_acts, seed=seed),
            label=f"mrloc {n} aggressors",
        )
        for n in (8, 6)
    ])
    mrloc = {
        "hit_rate_8_aggressors": hit_8,
        "hit_rate_6_aggressors": hit_6,
    }
    return {"para": para_rows, "prohit": prohit, "mrloc": mrloc}


def main() -> None:
    data = run()
    print("Section V-A: near-complete-protection PARA probabilities")
    rows = [
        (
            f"{r['hammer_threshold']:,}",
            f"{r['derived_p']:.5f}",
            f"{r['paper_p']:.5f}",
            percent(r["year_failure_at_paper_p"], 2),
        )
        for r in data["para"]
    ]
    print(format_table(
        ["T_RH", "derived p", "paper p", "year-failure @ paper p"], rows
    ))

    print("\nPRoHIT vs Fig. 7(a) killer pattern "
          f"(budget pinned to PARA-{PAPER_PARA_P} ~ "
          f"{PARA_BUDGET_PER_WINDOW}/window):")
    rows = [
        (
            f"{r['q']:.3f}",
            f"{r['refreshes_per_window']:.0f}",
            percent(r["flip_probability"], 2),
        )
        for r in data["prohit"]
    ]
    print(format_table(
        ["sampling q", "refreshes/window", "flip probability / tREFW"], rows
    ))
    print("(paper: 0.25% per tREFW at the same budget -> ~100% protection "
          "failure within a year; any measurable value here reproduces "
          "that conclusion)")

    mrloc = data["mrloc"]
    print("\nMRLoc vs Fig. 7(b) killer pattern (15-entry history queue):")
    print(f"  8 non-adjacent aggressors (16 victims): hit rate = "
          f"{mrloc['hit_rate_8_aggressors']:.4f} -> degenerates to PARA")
    print(f"  6 non-adjacent aggressors (12 victims): hit rate = "
          f"{mrloc['hit_rate_6_aggressors']:.4f} -> elevated refresh cost")


if __name__ == "__main__":
    main()
