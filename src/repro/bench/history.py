"""Append-only benchmark trajectory: ``results/bench_history.jsonl``.

Every benchmark run appends one schema'd line -- git SHA, CPU count,
Python version, and a flat ``metrics`` dict -- so the repo carries its
own performance record across commits, and a regression gate
(``scripts/check_bench_regression.py``) can compare the newest entry
against the rolling median of its predecessors without any external
infrastructure.

Conventions:

* one line per (bench, run); ``bench`` names the producing harness
  (``"hotpath"``, ``"runner"``, ...);
* metric keys ending in ``_per_sec`` are throughputs -- higher is
  better, and these are what the regression gate checks.  Other
  metrics ride along as context and are never gated;
* lines are append-only and torn/foreign lines are skipped on read,
  the same durability posture as the campaign manifest;
* entries from machines of different sizes coexist: the gate only
  compares entries whose config fingerprint matches -- ``cpu_count``
  plus the sharded-execution fields the hotpath bench records in
  ``extra`` (``shard_workers``, ``pool_reuse``) -- so a 2-core entry's
  process-pool throughput is never the baseline for an 8-core run,
  and a cold-pool timing protocol never gates a warm-pool one.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "DEFAULT_HISTORY_PATH",
    "current_git_sha",
    "make_entry",
    "append_entry",
    "iter_entries",
    "config_fingerprint",
    "hotpath_metrics",
    "runner_metrics",
    "check_regression",
]

#: Bump when the entry format changes incompatibly.
HISTORY_SCHEMA_VERSION = 1

#: ``<repo root>/results/bench_history.jsonl``.
DEFAULT_HISTORY_PATH = (
    Path(__file__).resolve().parents[3] / "results" / "bench_history.jsonl"
)

#: Throughput metrics (the gated kind) end with this suffix.
THROUGHPUT_SUFFIX = "_per_sec"


def current_git_sha() -> str:
    """The checked-out commit, or ``""`` outside a git work tree."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                cwd=Path(__file__).resolve().parent,
                check=False,
            ).stdout.strip()
            or ""
        )
    except OSError:
        return ""


def make_entry(
    bench: str,
    metrics: Mapping[str, float],
    *,
    git_sha: str | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """One history line (not yet written; see :func:`append_entry`)."""
    if not bench:
        raise ValueError("bench name must be non-empty")
    entry: dict[str, Any] = {
        "schema": HISTORY_SCHEMA_VERSION,
        "bench": bench,
        "unix": round(time.time(), 3),
        "iso": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "metrics": {name: float(value) for name, value in metrics.items()},
    }
    if extra:
        entry["extra"] = dict(extra)
    return entry


def append_entry(
    bench: str,
    metrics: Mapping[str, float],
    path: str | Path | None = None,
    **kwargs: Any,
) -> dict[str, Any]:
    """Append one entry to the history file; returns the entry."""
    target = Path(path) if path is not None else DEFAULT_HISTORY_PATH
    entry = make_entry(bench, metrics, **kwargs)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def iter_entries(
    path: str | Path | None = None, bench: str | None = None
) -> Iterator[dict[str, Any]]:
    """Stream entries oldest-first; torn or foreign lines are skipped."""
    target = Path(path) if path is not None else DEFAULT_HISTORY_PATH
    if not target.exists():
        return
    with open(target, "r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                entry = json.loads(raw)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict) or "metrics" not in entry:
                continue
            if bench is not None and entry.get("bench") != bench:
                continue
            yield entry


def config_fingerprint(entry: Mapping[str, Any]) -> tuple[Any, ...]:
    """The execution-config identity a comparison must hold fixed.

    ``cpu_count`` plus the sharded-execution fields benches record in
    ``extra`` (``shard_workers``, the worker counts swept, and
    ``pool_reuse``, whether sharded timings came off a warm persistent
    pool).  Entries written before a bench recorded these carry
    ``None`` in the missing slots, so pre-existing history still
    compares against itself -- but never against a run measured under
    a different protocol.
    """
    extra = entry.get("extra") or {}
    shard_workers = extra.get("shard_workers")
    if isinstance(shard_workers, (list, tuple)):
        shard_workers = tuple(shard_workers)
    return (
        entry.get("cpu_count"),
        shard_workers,
        extra.get("pool_reuse"),
    )


# ----------------------------------------------------------------------
# Metric extraction from the bench artifacts
# ----------------------------------------------------------------------


def hotpath_metrics(payload: Mapping[str, Any]) -> dict[str, float]:
    """Per-scheme throughputs from a ``BENCH_hotpath.json`` payload.

    One ``<workload>.<scheme>.fast_acts_per_sec`` metric per cell,
    plus each cell's reference-arm counterpart, so the trajectory
    tracks the batched kernels and the event loop separately.
    """
    metrics: dict[str, float] = {}
    for workload, section in payload.get("workloads", {}).items():
        for scheme, entry in section.get("schemes", {}).items():
            for arm in ("fast", "reference"):
                value = entry.get(f"{arm}_acts_per_sec")
                if value:
                    metrics[f"{workload}.{scheme}.{arm}_acts_per_sec"] = (
                        float(value)
                    )
    return metrics


def runner_metrics(payload: Mapping[str, Any]) -> dict[str, float]:
    """Harness throughput from a ``BENCH_runner.json`` payload."""
    metrics: dict[str, float] = {}
    wall = float(payload.get("wall_seconds", 0.0))
    jobs = int(payload.get("jobs", 0))
    if wall > 0 and jobs:
        metrics["jobs_per_sec"] = jobs / wall
    return metrics


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------


def check_regression(
    path: str | Path | None = None,
    threshold: float = 0.30,
    window: int = 5,
    bench: str | None = None,
) -> list[dict[str, Any]]:
    """Newest entry vs the rolling median of its predecessors.

    For each bench name, the newest entry's throughput metrics
    (``*_per_sec``) are compared against the median of the same metric
    over up to ``window`` immediately preceding *like-for-like*
    entries -- predecessors whose :func:`config_fingerprint`
    (``cpu_count``, ``shard_workers``, ``pool_reuse``) matches the
    newest entry's, so a hardware or measurement-protocol change
    starts a fresh baseline instead of tripping (or masking) the gate.
    A metric whose newest value sits more than ``threshold`` below
    that median is a regression.  Benches or metrics without prior
    comparable entries are baselines, never failures.

    Returns the regression findings (empty = gate passes).
    """
    by_bench: dict[str, list[dict[str, Any]]] = {}
    for entry in iter_entries(path, bench=bench):
        by_bench.setdefault(str(entry.get("bench")), []).append(entry)

    findings: list[dict[str, Any]] = []
    for name, entries in sorted(by_bench.items()):
        newest = entries[-1]
        fingerprint = config_fingerprint(newest)
        comparable = [
            entry
            for entry in entries[:-1]
            if config_fingerprint(entry) == fingerprint
        ]
        priors = comparable[max(0, len(comparable) - window) :]
        if not priors:
            continue
        for metric, value in sorted(newest.get("metrics", {}).items()):
            if not metric.endswith(THROUGHPUT_SUFFIX):
                continue
            baseline = [
                float(prior["metrics"][metric])
                for prior in priors
                if metric in prior.get("metrics", {})
            ]
            if not baseline:
                continue
            median = statistics.median(baseline)
            if median <= 0:
                continue
            drop = 1.0 - float(value) / median
            if drop > threshold:
                findings.append(
                    {
                        "bench": name,
                        "metric": metric,
                        "value": float(value),
                        "median": median,
                        "drop": round(drop, 4),
                        "window": len(baseline),
                        "git_sha": newest.get("git_sha", ""),
                    }
                )
    return findings
