"""Benchmark trajectory tracking (see :mod:`repro.bench.history`)."""

from .history import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA_VERSION,
    append_entry,
    check_regression,
    current_git_sha,
    hotpath_metrics,
    iter_entries,
    make_entry,
    runner_metrics,
)

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "HISTORY_SCHEMA_VERSION",
    "append_entry",
    "check_regression",
    "current_git_sha",
    "hotpath_metrics",
    "iter_entries",
    "make_entry",
    "runner_metrics",
]
