"""Trace exporters: JSONL event logs, Chrome trace JSON, terminal text.

Three consumers, one event stream:

* :func:`write_jsonl` -- one JSON object per line, greppable and
  streamable; the canonical machine-readable artifact.  An optional
  trailing ``RunSummary`` record embeds the run's
  :meth:`~repro.sim.metrics.SimulationResult.to_dict` so a single file
  carries both the event log and the end-of-run aggregates.
* :func:`write_chrome_trace` -- the Chrome ``trace_event`` JSON Array
  Format, loadable in ``chrome://tracing`` and https://ui.perfetto.dev.
  Simulation events become instant events (``"ph": "i"``) on one track
  per (job, bank); sampler rows become counter tracks (``"ph": "C"``)
  so table occupancy / spillover / NRR rate render as area charts.
  Timestamps are microseconds per the format; events are sorted so the
  output is monotonically non-decreasing regardless of merge order.
* :func:`summarize` -- a terminal digest: per-type event counts,
  per-bank NRR totals, drop counts and headline metrics.

All exporters consume the picklable event objects straight off a
:class:`~repro.telemetry.runtime.TelemetryBus`; none of them import
simulation modules, so they stay usable for offline reprocessing of a
saved JSONL log (:func:`iter_jsonl`).
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .events import (
    CacheHit,
    CacheMiss,
    NrrEmit,
    TelemetryEvent,
    event_from_record,
    event_record,
)

__all__ = [
    "write_jsonl",
    "iter_jsonl",
    "write_chrome_trace",
    "summarize",
    "summarize_jsonl",
]


def write_jsonl(
    events: Iterable[TelemetryEvent | Mapping[str, Any]],
    path: str | Path,
    run_summary: Mapping[str, Any] | None = None,
) -> int:
    """Write events as JSON Lines; returns the number of lines written.

    Args:
        events: The event stream (written in the order given).
        path: Output file.
        run_summary: Optional JSON-able dict appended as a final
            ``{"type": "RunSummary", ...}`` record (conventionally a
            ``SimulationResult.to_dict()``).
    """
    path = Path(path)
    lines = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event_record(event), sort_keys=True))
            handle.write("\n")
            lines += 1
        if run_summary is not None:
            handle.write(
                json.dumps(
                    {"type": "RunSummary", **dict(run_summary)},
                    sort_keys=True,
                )
            )
            handle.write("\n")
            lines += 1
    return lines


def iter_jsonl(path: str | Path) -> Iterator[TelemetryEvent | dict[str, Any]]:
    """Re-read a JSONL log; yields typed events, foreign rows as dicts.

    Forward-compatible by design: records whose ``type`` this version
    does not know (``RunSummary`` rows, campaign markers, event types
    added by a newer version) -- or known types carrying unexpected new
    fields -- come back as plain dicts instead of raising, so an old
    reader can still stream, filter and re-export a newer log.  The
    file is streamed line by line; callers that only tally never hold
    the log in memory.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            yield event_from_record(json.loads(line), strict=False)


# ----------------------------------------------------------------------
# Chrome trace_event format
# ----------------------------------------------------------------------

#: Host-side events have no simulated bank; park them on one track.
_HOST_TRACK = "host"


def _event_args(record: dict[str, Any]) -> dict[str, Any]:
    return {
        key: value
        for key, value in record.items()
        if key not in ("type", "time_ns", "bank", "job") and value is not None
    }


def write_chrome_trace(
    events: Sequence[TelemetryEvent | Mapping[str, Any]],
    path: str | Path,
    samples: Sequence[Mapping[str, Any]] = (),
    trace_name: str = "repro",
) -> int:
    """Write a Chrome ``trace_event`` JSON file; returns event count.

    Layout: one *process* per job label (pid 0 for unlabelled events),
    one *thread* per bank within it.  Sampler rows emit one counter
    event per probe per numeric field, named ``<probe>.<field>``, which
    Perfetto draws as per-track area charts.  All timestamps are in
    microseconds and sorted non-decreasing.

    Events may be plain record dicts (as :func:`iter_jsonl` yields for
    foreign types): they render as instant events on the host track, so
    re-exporting a newer version's log never crashes an older reader.
    """
    path = Path(path)
    jobs: dict[str | None, int] = {None: 0}
    trace_events: list[dict[str, Any]] = []

    def pid_of(job: str | None) -> int:
        if job not in jobs:
            jobs[job] = len(jobs)
        return jobs[job]

    for event in events:
        record = event_record(event)
        job = record.get("job")
        bank = record.get("bank")
        tid = bank if isinstance(bank, int) and bank >= 0 else 0
        if isinstance(event, (CacheHit, CacheMiss)):
            tid = 0
        time_ns = record.get("time_ns", 0.0)
        if not isinstance(time_ns, (int, float)):
            time_ns = 0.0
        trace_events.append(
            {
                "name": str(record.get("type", "unknown")),
                "ph": "i",
                "s": "t",
                "ts": time_ns / 1000.0,
                "pid": pid_of(job if isinstance(job, str) else None),
                "tid": tid,
                "args": _event_args(record),
            }
        )

    for sample in samples:
        ts = sample.get("time_ns", 0.0) / 1000.0
        pid = pid_of(sample.get("job"))
        for probe_name, value in sample.items():
            if probe_name in ("time_ns", "job"):
                continue
            if isinstance(value, Mapping):
                series = {
                    k: v for k, v in value.items()
                    if isinstance(v, (int, float))
                }
                if series:
                    trace_events.append(
                        {
                            "name": probe_name,
                            "ph": "C",
                            "ts": ts,
                            "pid": pid,
                            "tid": 0,
                            "args": series,
                        }
                    )
            elif isinstance(value, (int, float)):
                trace_events.append(
                    {
                        "name": f"sample.{probe_name}",
                        "ph": "C",
                        "ts": ts,
                        "pid": pid,
                        "tid": 0,
                        "args": {probe_name: value},
                    }
                )

    trace_events.sort(key=lambda entry: entry["ts"])

    metadata: list[dict[str, Any]] = []
    for job, pid in sorted(jobs.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": job or trace_name},
            }
        )

    payload = {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"generator": "repro.telemetry"},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return len(trace_events)


# ----------------------------------------------------------------------
# Terminal summary
# ----------------------------------------------------------------------


def _snapshot_percentile(data: Mapping[str, Any], fraction: float) -> float:
    """Bucket-resolution percentile from a histogram *snapshot* dict.

    Mirrors :meth:`repro.telemetry.registry.Histogram.percentile` on the
    serialized ``{"count", "max", "buckets"}`` form the registry
    snapshots to, so summaries of merged/offline metrics report the
    same numbers a live registry would.
    """
    count = data.get("count", 0)
    if not count:
        return 0.0
    buckets = data.get("buckets")
    if not buckets:
        return data.get("max", 0.0)
    target = fraction * count
    running = 0
    for index, bucket in enumerate(buckets):
        running += bucket
        if running >= target:
            return 0.0 if index == 0 else float(2**index)
    return data.get("max", 0.0)


def _event_type_name(event: TelemetryEvent | Mapping[str, Any]) -> str:
    if isinstance(event, Mapping):
        return str(event.get("type", "unknown"))
    return type(event).__name__


def summarize(
    events: Iterable[TelemetryEvent | Mapping[str, Any]],
    metrics: Mapping[str, Any] | None = None,
    dropped: int = 0,
) -> str:
    """Human-readable digest of an event stream for terminal output.

    Single-pass and allocation-light: ``events`` may be any iterable --
    a bus's in-memory list or a lazily-streamed JSONL log (see
    :func:`summarize_jsonl`) -- and only per-type tallies and per-bank
    NRR aggregates are held, so summarizing a multi-GB log runs at
    constant memory.  Record dicts for foreign event types tally under
    their ``type`` string.
    """
    lines: list[str] = []
    type_counts: TallyCounter = TallyCounter()
    nrr_by_bank: dict[int, list[int]] = {}
    total = 0
    for event in events:
        total += 1
        type_counts[_event_type_name(event)] += 1
        if type(event) is NrrEmit:
            stats = nrr_by_bank.setdefault(event.bank, [0, 0])
            stats[0] += 1
            stats[1] += event.victim_rows

    lines.append(f"telemetry: {total:,} events"
                 + (f" (+{dropped:,} dropped)" if dropped else ""))
    for name, count in sorted(type_counts.items(),
                              key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {name:16s} {count:>10,}")

    if nrr_by_bank:
        lines.append("NRR activity by bank:")
        for bank in sorted(nrr_by_bank):
            commands, rows = nrr_by_bank[bank]
            lines.append(
                f"  bank {bank:>3d}: {commands:>8,} commands, "
                f"{rows:>9,} victim rows"
            )

    if metrics:
        counters = metrics.get("counters", {})
        interesting = {
            name: value
            for name, value in counters.items()
            if not name.startswith("events.")
        }
        if interesting:
            lines.append("metrics:")
            for name, value in sorted(interesting.items()):
                lines.append(f"  {name:24s} {value:>12,}")
        histograms = metrics.get("histograms", {})
        for name, data in sorted(histograms.items()):
            count = data.get("count", 0)
            if not count:
                continue
            mean = data.get("total", 0.0) / count
            lines.append(
                f"  {name:24s} n={count:,} mean={mean:,.1f} "
                f"p50={_snapshot_percentile(data, 0.50):,.1f} "
                f"p95={_snapshot_percentile(data, 0.95):,.1f} "
                f"p99={_snapshot_percentile(data, 0.99):,.1f} "
                f"max={data.get('max', 0.0):,.1f}"
            )
    return "\n".join(lines)


def summarize_jsonl(
    path: str | Path, metrics: Mapping[str, Any] | None = None
) -> str:
    """Summarize a saved JSONL log without loading it into memory.

    Streams the file through :func:`iter_jsonl` (foreign record types
    tally under their ``type`` string), so the digest of an
    arbitrarily large campaign log costs O(event types + banks), not
    O(events).
    """
    return summarize(iter_jsonl(path), metrics=metrics)
