"""The telemetry bus and the process-wide on/off switch.

The whole subsystem hangs off one module global, :data:`BUS`.  It is
``None`` by default, and instrumented hot paths gate *all* telemetry
work behind a single read-and-branch::

    from ..telemetry import runtime as _telemetry
    ...
    bus = _telemetry.BUS
    if bus is not None:
        bus.publish(TableInsert(...))

With telemetry disabled that costs one module-attribute load and one
``is not None`` test per ACT -- no allocation, no call.  Engines must
read ``_telemetry.BUS`` (attribute access on the module object) rather
than ``from ... import BUS``, so mid-process installs are observed.

:func:`session` is the supported way to turn telemetry on: it installs
a bus for the duration of a ``with`` block and restores the previous
state afterwards, so nested sessions and test isolation both work.
Worker processes in the experiment runner open their own session
around each job and ship the bus state back to the parent
(:meth:`TelemetryBus.export_state` / :meth:`TelemetryBus.absorb`).
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Any, Callable, Iterator, Mapping

from .events import TelemetryEvent
from .registry import MetricsRegistry
from .sampler import TimeSeriesSampler

__all__ = [
    "TelemetryBus",
    "BUS",
    "install",
    "uninstall",
    "current",
    "session",
]


class TelemetryBus:
    """Collects published events, counts them, and fans out to hooks.

    Args:
        registry: Metrics store; a fresh enabled one by default.
        sampler: Optional time-series sampler fed every event.
        max_events: Retention cap on the in-memory event list.  Beyond
            the cap events are *counted but dropped* (the
            ``events.dropped`` counter records how many), so a
            long-running traced simulation degrades to metrics-only
            instead of exhausting memory.  ``None`` retains everything.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sampler: TimeSeriesSampler | None = None,
        max_events: int | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sampler = sampler
        self.max_events = max_events
        self.events: list[TelemetryEvent] = []
        self.dropped = 0
        self._subscribers: list[Callable[[TelemetryEvent], None]] = []
        self._absorbed_samples: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish(self, event: TelemetryEvent) -> None:
        """Record one event (called from instrumented hot paths)."""
        self.registry.counter(f"events.{type(event).__name__}").inc()
        if self.max_events is None or len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped += 1
            self.registry.counter("events.dropped").inc()
        sampler = self.sampler
        if sampler is not None:
            sampler.observe(event)
        for subscriber in self._subscribers:
            subscriber(event)

    def subscribe(self, fn: Callable[[TelemetryEvent], None]) -> None:
        """Invoke ``fn`` synchronously on every future publish."""
        self._subscribers.append(fn)

    # ------------------------------------------------------------------
    # Process-boundary transport
    # ------------------------------------------------------------------

    def export_state(self) -> dict[str, Any]:
        """Picklable snapshot: events + metrics + samples + drop count."""
        if self.sampler is not None:
            self.sampler.finish()
        return {
            "events": list(self.events),
            "metrics": self.registry.snapshot(),
            "samples": list(self.sampler.samples) if self.sampler else [],
            "dropped": self.dropped,
        }

    def absorb(
        self, state: Mapping[str, Any], job: str | None = None
    ) -> None:
        """Merge a worker bus's :meth:`export_state` into this bus.

        Events and samples append in the order given (callers merge in
        deterministic submission order, which is what makes parallel
        traces reproducible); ``job`` stamps each absorbed event so a
        merged stream still attributes events to their run.
        """
        for event in state.get("events", ()):
            if job is not None and event.job is None:
                event = dataclasses.replace(event, job=job)
            if self.max_events is None or len(self.events) < self.max_events:
                self.events.append(event)
            else:
                self.dropped += 1
        self.registry.merge(state.get("metrics", {}))
        samples = state.get("samples", ())
        if samples:
            self.absorbed_samples.extend(
                dict(sample, job=job) if job is not None else dict(sample)
                for sample in samples
            )
        self.dropped += state.get("dropped", 0)

    @property
    def absorbed_samples(self) -> list[dict[str, Any]]:
        """Samples merged in from worker buses."""
        return self._absorbed_samples

    def all_samples(self) -> list[dict[str, Any]]:
        """This bus's own samples plus everything absorbed."""
        own = list(self.sampler.samples) if self.sampler else []
        return own + self.absorbed_samples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TelemetryBus(events={len(self.events)}, "
            f"dropped={self.dropped}, sampler={self.sampler is not None})"
        )


#: The process-wide active bus; ``None`` means telemetry is off and
#: instrumented code takes its zero-cost branch.
BUS: TelemetryBus | None = None


def install(bus: TelemetryBus) -> TelemetryBus:
    """Make ``bus`` the active bus; returns it."""
    global BUS
    BUS = bus
    return bus


def uninstall() -> None:
    """Turn telemetry off (restores the zero-cost fast path)."""
    global BUS
    BUS = None


def current() -> TelemetryBus | None:
    """The active bus, or ``None`` when telemetry is off."""
    return BUS


@contextlib.contextmanager
def session(bus: TelemetryBus | None = None) -> Iterator[TelemetryBus]:
    """Activate a bus for a ``with`` block; restore the old state after.

    A fresh default bus is created when none is given.
    """
    global BUS
    active = bus if bus is not None else TelemetryBus()
    previous = BUS
    BUS = active
    try:
        yield active
    finally:
        BUS = previous
