"""Lightweight metrics primitives for the telemetry subsystem.

Three metric kinds cover everything the engines and the runner need to
report:

* :class:`Counter` -- a monotonically increasing tally (ACTs observed,
  NRRs emitted, cache hits);
* :class:`Gauge` -- a last-write-wins level (current table occupancy);
* :class:`Histogram` -- a bounded-memory log2-bucketed distribution
  (queueing delays), the same scheme
  :class:`~repro.controller.scheduler.LatencyTracker` uses so traces of
  hundreds of millions of samples summarize in O(1) memory.

The design constraint is the *disabled* path, not the enabled one: the
ACT loop in :meth:`repro.core.graphene.GrapheneEngine.on_activate` runs
millions of times per simulated window, so a disabled registry must
cost nothing.  A :class:`MetricsRegistry` built with ``enabled=False``
hands out one shared :data:`NULL_METRIC` singleton whose mutators are
no-ops -- instrumented code holds a metric reference and calls it
unconditionally, and the identity check ``registry.counter("x") is
NULL_METRIC`` is how tests pin the fast path down.  (Engine hot loops
go one step further and skip telemetry entirely behind a single
``BUS is not None`` branch; see :mod:`repro.telemetry.runtime`.)

Registries snapshot to plain JSON-able dicts and merge snapshot-wise,
which is how per-job metrics cross the ProcessPool boundary in
:mod:`repro.experiments.runner`.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "NullMetric",
]


class NullMetric:
    """Shared no-op stand-in for every metric kind when disabled.

    All mutators discard their arguments; all accessors read as empty.
    A single module-level instance (:data:`NULL_METRIC`) is handed out
    for every name, so disabled-mode lookups allocate nothing.
    """

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> int:
        return 0

    @property
    def count(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullMetric()"


#: The one instance every disabled registry returns.
NULL_METRIC = NullMetric()


class Counter:
    """Monotonically increasing integer tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """Last-write-wins level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Log2-bucketed distribution with O(1) memory.

    Bucket ``0`` holds zero-valued samples; bucket ``i`` (1-based)
    holds samples in ``[2^(i-1), 2^i)`` up to a terminal catch-all.
    Matches the resolution philosophy of the latency tracker: exact
    sub-bucket values are irrelevant, population shape is not.
    """

    __slots__ = ("name", "count", "total", "max", "buckets")

    _MAX_EXPONENT = 40

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.buckets = [0] * (self._MAX_EXPONENT + 2)

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r}: negative sample {value}")
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if value < 1.0:
            self.buckets[0] += 1
            return
        exponent = min(self._MAX_EXPONENT, int(value).bit_length() - 1)
        self.buckets[exponent + 1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Upper bound of the bucket containing the given percentile."""
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        running = 0
        for index, bucket in enumerate(self.buckets):
            running += bucket
            if running >= target:
                return 0.0 if index == 0 else float(2**index)
        return self.max

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.1f})"


class MetricsRegistry:
    """Name-addressed store of counters, gauges and histograms.

    Args:
        enabled: When False, every lookup returns :data:`NULL_METRIC`
            and the registry records nothing -- the zero-cost mode.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Lookup (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter | NullMetric:
        if not self.enabled:
            return NULL_METRIC
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge | NullMetric:
        if not self.enabled:
            return NULL_METRIC
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram | NullMetric:
        if not self.enabled:
            return NULL_METRIC
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------------
    # Serialization / merging (process-boundary crossing)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump of every metric's current state."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "total": h.total,
                    "max": h.max,
                    "buckets": list(h.buckets),
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms add; gauges take the incoming value
        (last-write-wins across the merge order the caller chooses).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name)
            if isinstance(histogram, NullMetric):
                continue
            histogram.count += data["count"]
            histogram.total += data["total"]
            histogram.max = max(histogram.max, data["max"])
            incoming = data["buckets"]
            for index in range(min(len(histogram.buckets), len(incoming))):
                histogram.buckets[index] += incoming[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(enabled={self.enabled}, "
            f"counters={len(self._counters)}, gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
