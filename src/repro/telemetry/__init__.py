"""Observability for the simulated machine (engine-level telemetry).

The paper's guarantees are statements about counter *dynamics* --
Misra-Gries insertions and evictions, spillover growth, NRR bursts,
window resets -- but a :class:`~repro.sim.metrics.SimulationResult`
only reports end-of-run aggregates.  This package makes the dynamics
visible without taxing untraced runs:

* :mod:`~repro.telemetry.registry` -- ``Counter`` / ``Gauge`` /
  ``Histogram`` metrics with a shared no-op singleton for disabled
  mode;
* :mod:`~repro.telemetry.events` -- the typed event vocabulary
  (``TableInsert``, ``TableEvict``, ``SpilloverBump``, ``NrrEmit``,
  ``WindowReset``, ``SchedStall``, ``CacheHit``/``CacheMiss``);
* :mod:`~repro.telemetry.runtime` -- the :class:`TelemetryBus` and the
  process-wide ``BUS`` switch; hot paths pay exactly one branch when
  telemetry is off;
* :mod:`~repro.telemetry.sampler` -- fixed simulated-time-interval
  snapshots of per-bank table occupancy, spillover and NRR rate;
* :mod:`~repro.telemetry.export` -- JSONL logs, Chrome
  ``trace_event`` JSON (open in ``chrome://tracing`` or Perfetto) and
  terminal summaries.

Turn it on with ``repro trace <workload> <scheme>`` or
``repro experiment <name> --telemetry``; programmatically::

    from repro.telemetry import TelemetryBus, session, write_chrome_trace

    with session(TelemetryBus()) as bus:
        simulate(events, factory, ...)
    write_chrome_trace(bus.events, "run.trace.json")

See ``docs/observability.md`` for the event taxonomy and formats.
"""

from .events import (
    EVENT_TYPES,
    CacheHit,
    CacheMiss,
    NrrEmit,
    OracleViolation,
    SchedStall,
    SpilloverBump,
    TableEvict,
    TableInsert,
    TelemetryEvent,
    WindowReset,
    event_from_record,
    event_record,
)
from .export import (
    iter_jsonl,
    summarize,
    summarize_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .registry import NULL_METRIC, Counter, Gauge, Histogram, MetricsRegistry
from .runtime import TelemetryBus, current, install, session, uninstall
from .sampler import TimeSeriesSampler

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "TelemetryBus",
    "TimeSeriesSampler",
    "TelemetryEvent",
    "TableInsert",
    "TableEvict",
    "SpilloverBump",
    "NrrEmit",
    "WindowReset",
    "SchedStall",
    "CacheHit",
    "CacheMiss",
    "OracleViolation",
    "EVENT_TYPES",
    "event_record",
    "event_from_record",
    "install",
    "uninstall",
    "current",
    "session",
    "write_jsonl",
    "iter_jsonl",
    "write_chrome_trace",
    "summarize",
    "summarize_jsonl",
]
