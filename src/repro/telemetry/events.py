"""Typed telemetry events: the vocabulary engines publish in.

Each event is a small frozen dataclass naming one thing that happened
inside the simulated machine, stamped with the *simulated* time it
happened at (``time_ns``) and the bank it happened in where that is
meaningful.  The taxonomy follows the counter dynamics the paper's
guarantees live in:

* :class:`TableInsert` / :class:`TableEvict` -- Misra-Gries (or
  Space-Saving) entry turnover;
* :class:`SpilloverBump` -- the miss-with-no-replaceable-entry path
  whose growth Lemma 2 bounds;
* :class:`NrrEmit` -- a victim-refresh directive executed by the
  memory controller (any scheme);
* :class:`WindowReset` -- a tREFW/k table reset, carrying the state
  being discarded;
* :class:`SchedStall` -- an ACT delayed because its bank was blocked
  (the paper's entire performance-overhead mechanism);
* :class:`CacheHit` / :class:`CacheMiss` -- result-cache outcomes in
  the experiment runner (host-side; ``time_ns`` is 0);
* :class:`OracleViolation` -- the adversarial-verification subsystem
  (:mod:`repro.verify`) caught an implementation disagreeing with the
  exact-count protection oracle (host-side; ``time_ns`` is 0).

Every event carries an optional ``job`` label, stamped when per-job
event streams are merged across the process-pool boundary so a merged
trace still attributes events to the simulation that produced them.

``event_record`` / ``event_from_record`` convert events to and from
flat JSON-able dicts -- the one serialization the JSONL exporter, the
Chrome-trace exporter and cross-process shipping all share.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping

__all__ = [
    "TelemetryEvent",
    "TableInsert",
    "TableEvict",
    "SpilloverBump",
    "NrrEmit",
    "WindowReset",
    "SchedStall",
    "CacheHit",
    "CacheMiss",
    "OracleViolation",
    "EVENT_TYPES",
    "event_record",
    "event_from_record",
]


@dataclass(frozen=True, slots=True)
class TableInsert:
    """A row entered the counter table (fresh slot or post-eviction)."""

    time_ns: float
    bank: int
    row: int
    #: The entry's estimated count right after insertion (1 for a fresh
    #: slot, spillover + 1 after a carry-over replacement).
    count: int
    job: str | None = None


@dataclass(frozen=True, slots=True)
class TableEvict:
    """A tracked row was replaced by an incoming miss."""

    time_ns: float
    bank: int
    #: The row that lost its entry.
    row: int
    #: The count the incoming row inherited (the carry-over that makes
    #: estimates over-approximate).
    inherited_count: int
    #: The row that took the slot.
    new_row: int
    job: str | None = None


@dataclass(frozen=True, slots=True)
class SpilloverBump:
    """A miss found no replaceable entry; only the spillover grew."""

    time_ns: float
    bank: int
    row: int
    #: Spillover count after the increment.
    spillover: int
    job: str | None = None


@dataclass(frozen=True, slots=True)
class NrrEmit:
    """A victim-refresh directive was executed as an NRR command."""

    time_ns: float
    bank: int
    #: Suspected aggressor, when the scheme knows it (None for CBT's
    #: region refreshes).
    aggressor_row: int | None
    #: How many victim rows the NRR refreshed.
    victim_rows: int
    #: The scheme's reason label ("T x 2", "probabilistic", ...).
    reason: str = "threshold"
    job: str | None = None


@dataclass(frozen=True, slots=True)
class WindowReset:
    """A tREFW/k reset wiped the table and spillover count."""

    time_ns: float
    bank: int
    #: Index of the window being *entered*.
    window: int
    #: Entries discarded by the reset.
    tracked_rows: int
    #: Spillover count discarded by the reset.
    spillover: int
    job: str | None = None


@dataclass(frozen=True, slots=True)
class SchedStall:
    """An ACT could not issue at its arrival time (bank blocked)."""

    time_ns: float
    bank: int
    row: int
    #: How long the ACT queued before the bank freed up.
    delay_ns: float
    job: str | None = None


@dataclass(frozen=True, slots=True)
class CacheHit:
    """The result cache satisfied a job without recomputing."""

    time_ns: float
    key: str
    label: str = ""
    job: str | None = None


@dataclass(frozen=True, slots=True)
class CacheMiss:
    """The result cache had no usable entry for a job."""

    time_ns: float
    key: str
    label: str = ""
    job: str | None = None


@dataclass(frozen=True, slots=True)
class OracleViolation:
    """A differential-fuzzing check failed against the exact oracle.

    Published by :mod:`repro.verify` campaigns so traced fuzz runs
    surface failures inside the same event stream as everything else.
    """

    time_ns: float
    #: Which implementation failed ("graphene", "tracker:count-min",
    #: "hardware-vs-logical", "mitigation:twice", ...).
    subject: str
    #: Violation class ("theorem", "lemma1", "lemma2", "gap",
    #: "divergence", "bit-flips", "crash").
    kind: str
    #: Generator that produced the offending stream.
    generator: str
    #: Stream seed (replays the failure deterministically).
    seed: int
    #: Stream index at which the violation was detected (None when the
    #: check only runs at end of stream).
    step: int | None = None
    detail: str = ""
    job: str | None = None


TelemetryEvent = (
    TableInsert
    | TableEvict
    | SpilloverBump
    | NrrEmit
    | WindowReset
    | SchedStall
    | CacheHit
    | CacheMiss
    | OracleViolation
)

#: Name -> class, for deserialization and exporter dispatch.
EVENT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        TableInsert,
        TableEvict,
        SpilloverBump,
        NrrEmit,
        WindowReset,
        SchedStall,
        CacheHit,
        CacheMiss,
        OracleViolation,
    )
}


def event_record(event: TelemetryEvent | Mapping[str, Any]) -> dict[str, Any]:
    """Flatten an event to ``{"type": name, **fields}`` (JSON-able).

    Mappings pass through as-is (they are already records): exporters
    re-serializing a stream that contains foreign event types -- e.g. a
    JSONL log written by a newer version of this package -- must not
    lose those records just because this version cannot type them.
    """
    if isinstance(event, Mapping):
        return dict(event)
    record = asdict(event)
    record["type"] = type(event).__name__
    return record


def event_from_record(
    record: Mapping[str, Any], strict: bool = True
) -> TelemetryEvent | dict[str, Any]:
    """Rebuild an event from :func:`event_record` output.

    With ``strict=True`` (the default) an unknown event type or an
    unexpected field raises ``ValueError``.  With ``strict=False`` such
    records come back as plain dicts instead -- the forward-compatible
    mode log readers use so a stream written by a newer version (new
    event types, new fields) survives a round trip byte-identically
    rather than crashing the reader.
    """
    data = dict(record)
    name = data.pop("type", None)
    cls = EVENT_TYPES.get(name)
    if cls is None:
        if strict:
            raise ValueError(f"unknown telemetry event type {name!r}")
        return dict(record)
    allowed = {f.name for f in fields(cls)}
    unexpected = set(data) - allowed
    if unexpected:
        if strict:
            raise ValueError(
                f"unexpected fields for {name}: {sorted(unexpected)}"
            )
        return dict(record)
    return cls(**data)
