"""Simulated-time sampling of engine state into a time series.

Event logs answer "what happened"; the sampler answers "what did the
machine look like over time".  A :class:`TimeSeriesSampler` rides on
the telemetry bus: every published event with a simulated timestamp
advances a clock, and whenever the clock crosses a sampling boundary
the sampler emits one row per elapsed interval containing

* whatever registered *probes* report (the memory controller registers
  one probe per bank that reads table occupancy, spillover count and
  cumulative rows refreshed straight off the live engine), and
* the NRR activity (commands / victim rows) observed *within* the
  interval, i.e. the NRR rate at the sampling resolution.

Samples are plain dicts so they pickle across the process-pool
boundary and serialize to JSON unchanged; the Chrome-trace exporter
turns them into ``"ph": "C"`` counter tracks that Perfetto renders as
stacked area charts.

Boundary semantics: an event at time ``t`` first drains every boundary
``<= t``, then counts toward the *next* interval -- so a sample at
boundary ``b`` reflects exactly the events in ``(b - interval, b]``'s
predecessor window and probe state as of the first event after ``b``.
Probes read live state, which is the state after the most recent event
processed; for monotonic streams this is the tightest snapshot
available without intrusive engine callbacks.
"""

from __future__ import annotations

from typing import Any, Callable

from .events import NrrEmit, TelemetryEvent

__all__ = ["TimeSeriesSampler"]


class TimeSeriesSampler:
    """Fixed-interval snapshots of probe state plus per-interval rates.

    Args:
        interval_ns: Simulated-time spacing between samples.
    """

    def __init__(self, interval_ns: float) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval must be > 0, got {interval_ns}")
        self.interval_ns = float(interval_ns)
        #: Emitted sample rows (plain dicts, in time order).
        self.samples: list[dict[str, Any]] = []
        self._probes: dict[str, Callable[[], dict[str, Any]]] = {}
        self._next_boundary_ns = self.interval_ns
        self._nrr_commands = 0
        self._nrr_rows = 0
        self._events_in_interval = 0

    # ------------------------------------------------------------------

    def add_probe(self, name: str, probe: Callable[[], dict[str, Any]]) -> None:
        """Register a state reader sampled at every boundary.

        Probes must return small JSON-able dicts; they are called
        synchronously on the simulation thread.
        """
        self._probes[name] = probe

    def observe(self, event: TelemetryEvent) -> None:
        """Feed one published event through the sampling clock."""
        time_ns = getattr(event, "time_ns", None)
        if time_ns is None:
            return
        while time_ns >= self._next_boundary_ns:
            self._emit(self._next_boundary_ns)
            self._next_boundary_ns += self.interval_ns
        self._events_in_interval += 1
        if type(event) is NrrEmit:
            self._nrr_commands += 1
            self._nrr_rows += event.victim_rows

    def finish(self, time_ns: float | None = None) -> None:
        """Flush a final sample covering the tail interval, if any."""
        if self._events_in_interval == 0 and not self._probes:
            return
        at = self._next_boundary_ns if time_ns is None else max(
            time_ns, self._next_boundary_ns - self.interval_ns
        )
        if self._events_in_interval:
            self._emit(at)

    # ------------------------------------------------------------------

    def _emit(self, at_ns: float) -> None:
        row: dict[str, Any] = {
            "time_ns": at_ns,
            "events": self._events_in_interval,
            "nrr_commands": self._nrr_commands,
            "nrr_rows": self._nrr_rows,
        }
        for name, probe in self._probes.items():
            row[name] = probe()
        self.samples.append(row)
        self._nrr_commands = 0
        self._nrr_rows = 0
        self._events_in_interval = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeSeriesSampler(interval_ns={self.interval_ns}, "
            f"samples={len(self.samples)}, probes={len(self._probes)})"
        )
