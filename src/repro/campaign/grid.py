"""Declarative campaign grids: spec -> cells -> runner jobs.

A campaign is a Cartesian sweep -- schemes x workloads x Row Hammer
threshold generations x timing grids -- expressed as one JSON-able
:class:`CampaignSpec` and expanded into :class:`CampaignCell`\\ s.  Each
cell resolves to exactly the declarative simulation job the PR-1 runner
executes (:func:`repro.experiments.runner.sim_job`), so a cell's
identity *is* its content-addressed cache key: the checkpoint manifest,
the result cache and the dashboard all key on the same digest, and a
resumed campaign can prove "nothing recomputed" by comparing key sets.

The spec vocabulary mirrors the figure experiments (Fig. 9's T_RH
scaling generations, widened across every scheme and workload), plus
named timing grids: each grid is a label mapped to
:class:`~repro.dram.timing.DramTimings` field overrides, so DDR4- and
DDR5-style geometries sweep side by side in one campaign.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..dram.timing import DDR4_2400, DramTimings
from ..experiments.runner import ENGINES, Job, sim_job
from ..sim.cache import cache_key

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "GRID_SCHEMES",
    "CampaignCell",
    "CampaignSpec",
    "load_spec",
]

#: Bump when the spec format changes incompatibly.
SPEC_SCHEMA_VERSION = 1

#: Schemes a grid may name -> the factory spec they resolve to.  The
#: Fig. 8/9 comparison set re-derives per threshold ("scaling"); the
#: wider capability roster covers every other mitigation at a fixed
#: configuration recipe ("capability"); "none" is the unprotected
#: baseline.
GRID_SCHEMES: dict[str, Sequence[Any]] = {
    "none": ["none"],
    "para": ["scaling", "para"],
    "cbt": ["scaling", "cbt"],
    "twice": ["scaling", "twice"],
    "graphene": ["scaling", "graphene"],
    "comet": ["scaling", "comet"],
    "abacus": ["scaling", "abacus"],
    "prohit": ["capability", "prohit"],
    "mrloc": ["capability", "mrloc"],
    "cra": ["capability", "cra"],
    "refresh-rate-x2": ["capability", "refresh-rate-x2"],
}


def _workload_kind(label: str) -> str:
    """Infer a trace kind from a workload label (see run_sim_spec)."""
    from ..workloads.spec_like import REALISTIC_PROFILES
    from ..workloads.synthetic import SYNTHETIC_PATTERNS

    if label in REALISTIC_PROFILES:
        return "realistic"
    if label in SYNTHETIC_PATTERNS:
        return "synthetic"
    raise ValueError(
        f"unknown workload {label!r}: not a realistic profile or a "
        "synthetic pattern (pass {label: kind} to name the kind "
        "explicitly)"
    )


@dataclass(frozen=True)
class CampaignCell:
    """One grid point, resolvable to a runner job and its cache key."""

    scheme: str
    workload: str
    workload_kind: str
    hammer_threshold: int
    timing_grid: str
    timings: DramTimings
    duration_ns: float
    seed: int
    engine: str
    banks: int
    ranks: int
    rows_per_bank: int
    shard_workers: int = 1

    @property
    def cell_id(self) -> str:
        """Human-stable identifier used in manifests and dashboards."""
        return (
            f"{self.timing_grid}/trh={self.hammer_threshold}/"
            f"{self.workload}/{self.scheme}"
        )

    def job(self) -> Job:
        """The declarative simulation job this cell runs as."""
        extra: dict[str, Any] = {}
        if self.banks != 1:
            extra["banks"] = self.banks
        if self.ranks != 1:
            extra["ranks"] = self.ranks
        return sim_job(
            trace={"kind": self.workload_kind, "label": self.workload},
            factory=list(GRID_SCHEMES[self.scheme]),
            scheme=self.scheme,
            workload=self.workload,
            duration_ns=self.duration_ns,
            seed=self.seed,
            timings=self.timings,
            rows_per_bank=self.rows_per_bank,
            hammer_threshold=self.hammer_threshold,
            engine=self.engine,
            label=self.cell_id,
            shard_workers=self.shard_workers,
            **extra,
        )

    def key(self) -> str:
        """The cell's content-addressed cache key (the PR-1 job key)."""
        return self.job().key()


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign grid (JSON-able, content-addressable).

    Attributes:
        name: Campaign label (manifest header, report title).
        schemes: Mitigation schemes to sweep (see :data:`GRID_SCHEMES`).
        workloads: ``{label: kind}``; kinds are auto-inferred when the
            spec file gives a plain list of labels.
        thresholds: Row Hammer threshold generations (Fig. 9 style).
        duration_ns: Simulated trace length per cell.
        timing_grids: ``{grid name: DramTimings field overrides}``;
            the default single grid is stock DDR4-2400.
        seed / engine / banks / ranks / rows_per_bank: Forwarded to
            every cell's simulation job.
        shard_workers: With ``engine="fast"``, every cell dispatches
            its bank lanes across this many processes from the
            persistent shard pool; the pool is spawned once and reused
            by every cell in the sweep.  Results are byte-identical at
            any worker count, so the value stays *out* of the spec
            digest and the cell cache keys when it is 1 (the sim-job
            layer only records it when it actually shards).
    """

    name: str
    schemes: tuple[str, ...]
    workloads: Mapping[str, str]
    thresholds: tuple[int, ...]
    duration_ns: float
    timing_grids: Mapping[str, Mapping[str, float]] = field(
        default_factory=lambda: {"ddr4-2400": {}}
    )
    seed: int = 42
    engine: str = "reference"
    banks: int = 1
    ranks: int = 1
    rows_per_bank: int = 65536
    shard_workers: int = 1

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ValueError("campaign spec needs at least one scheme")
        for scheme in self.schemes:
            if scheme not in GRID_SCHEMES:
                raise ValueError(
                    f"unknown scheme {scheme!r}; expected one of "
                    f"{sorted(GRID_SCHEMES)}"
                )
        if not self.workloads:
            raise ValueError("campaign spec needs at least one workload")
        if not self.thresholds:
            raise ValueError("campaign spec needs at least one threshold")
        if not self.timing_grids:
            raise ValueError("campaign spec needs at least one timing grid")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        if self.shard_workers < 1:
            raise ValueError(
                f"shard_workers must be >= 1, got {self.shard_workers}"
            )

    # ------------------------------------------------------------------

    def timings_for(self, grid: str) -> DramTimings:
        """Materialize one named timing grid's DramTimings."""
        overrides = dict(self.timing_grids[grid])
        return replace(DDR4_2400, **overrides) if overrides else DDR4_2400

    def cells(self) -> list[CampaignCell]:
        """Expand the full grid, in deterministic sweep order.

        Order: timing grid (spec order), threshold (spec order),
        workload (spec order), scheme (spec order) -- so progressive
        dashboards fill scheme-by-scheme within each sweep point, like
        the figures do.
        """
        expanded: list[CampaignCell] = []
        for grid in self.timing_grids:
            timings = self.timings_for(grid)
            for trh in self.thresholds:
                for workload, kind in self.workloads.items():
                    for scheme in self.schemes:
                        expanded.append(
                            CampaignCell(
                                scheme=scheme,
                                workload=workload,
                                workload_kind=kind,
                                hammer_threshold=int(trh),
                                timing_grid=grid,
                                timings=timings,
                                duration_ns=float(self.duration_ns),
                                seed=self.seed,
                                engine=self.engine,
                                banks=self.banks,
                                ranks=self.ranks,
                                rows_per_bank=self.rows_per_bank,
                                shard_workers=self.shard_workers,
                            )
                        )
        return expanded

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (inverted by :meth:`from_dict`)."""
        payload = {
            "schema": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "schemes": list(self.schemes),
            "workloads": dict(self.workloads),
            "thresholds": list(self.thresholds),
            "duration_ns": self.duration_ns,
            "timing_grids": {
                grid: dict(overrides)
                for grid, overrides in self.timing_grids.items()
            },
            "seed": self.seed,
            "engine": self.engine,
            "banks": self.banks,
            "ranks": self.ranks,
            "rows_per_bank": self.rows_per_bank,
        }
        if self.shard_workers != 1:
            # Omitted at the default so every pre-existing spec digest
            # (and therefore resumable checkpoint) keeps its identity.
            payload["shard_workers"] = self.shard_workers
        return payload

    def digest(self) -> str:
        """Content digest identifying the grid (resume safety check)."""
        return cache_key({"campaign-spec": self.to_dict()})

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from a parsed JSON dict (tolerant field forms).

        ``workloads`` may be a list of labels (kinds inferred), and
        ``duration_ms`` may stand in for ``duration_ns``.
        """
        payload = dict(data)
        schema = payload.pop("schema", SPEC_SCHEMA_VERSION)
        if schema != SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported campaign spec schema {schema!r} "
                f"(this version reads {SPEC_SCHEMA_VERSION})"
            )
        workloads = payload.pop("workloads")
        if isinstance(workloads, Mapping):
            workloads = dict(workloads)
        else:
            workloads = {label: _workload_kind(label) for label in workloads}
        if "duration_ms" in payload and "duration_ns" not in payload:
            payload["duration_ns"] = float(payload.pop("duration_ms")) * 1e6
        known = {
            "name", "schemes", "thresholds", "duration_ns", "timing_grids",
            "seed", "engine", "banks", "ranks", "rows_per_bank",
            "shard_workers",
        }
        unexpected = set(payload) - known
        if unexpected:
            raise ValueError(
                f"unknown campaign spec fields: {sorted(unexpected)}"
            )
        if "timing_grids" in payload:
            payload["timing_grids"] = {
                grid: dict(overrides)
                for grid, overrides in payload["timing_grids"].items()
            }
        payload["schemes"] = tuple(payload["schemes"])
        payload["thresholds"] = tuple(
            int(trh) for trh in payload["thresholds"]
        )
        return cls(workloads=workloads, **payload)


def load_spec(path: str | Path) -> CampaignSpec:
    """Read a campaign spec from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return CampaignSpec.from_dict(json.load(handle))
