"""Wall-clock campaign progress: sampling and the terminal dashboard.

The experiment-level telemetry subsystem samples *simulated* time; a
campaign needs the host-side complement: how fast are cells completing,
how busy are the workers, what throughput is each scheme sustaining,
when will the sweep finish.  :class:`ProgressSampler` accumulates those
host-side series from per-cell completion callbacks (the runner's
progress hook fires them as each cell resolves, so the dashboard ticks
mid-batch, not just at batch boundaries), and
:class:`DashboardRenderer` paints them as a curses-free multi-line
terminal dashboard -- plain ANSI line rewrites on a TTY, periodic
single-line updates when piped.

Dashboard fields (documented in docs/campaigns.md):

* cell progress (completed / failed / total, with a bar and percent);
* cells/s over a sliding window and the ETA it implies;
* worker utilization (busy worker-seconds over elapsed capacity);
* cache hit ratio (cells resolved from the PR-1 result cache);
* per-scheme throughput in simulated ACTs per wall second;
* recent :class:`~repro.telemetry.events.OracleViolation` events, so a
  verification campaign surfaces failures while still running.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import Any, Callable, Mapping, TextIO

from ..telemetry.events import OracleViolation

__all__ = ["ProgressSampler", "DashboardRenderer", "format_eta"]


def format_eta(seconds: float | None) -> str:
    """Render an ETA in h:mm:ss (``--:--`` when unknown)."""
    if seconds is None or seconds != seconds or seconds < 0:
        return "--:--"
    seconds = int(round(seconds))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    return f"{hours}:{minutes:02d}:{secs:02d}"


def _rate_unit(acts_per_sec: float) -> str:
    if acts_per_sec >= 1e6:
        return f"{acts_per_sec / 1e6:.2f}M"
    if acts_per_sec >= 1e3:
        return f"{acts_per_sec / 1e3:.1f}k"
    return f"{acts_per_sec:.0f}"


class ProgressSampler:
    """Accumulates host-side campaign progress from cell completions.

    Args:
        total_cells: Cells the campaign will run this session.
        workers: Worker-process count (utilization denominator).
        clock: Injected monotonic clock (tests pin it).
        window_s: Sliding-window span for the cells/s rate.
        recent_violations: How many OracleViolation events to retain.
    """

    def __init__(
        self,
        total_cells: int,
        workers: int = 1,
        clock: Callable[[], float] = time.monotonic,
        window_s: float = 30.0,
        recent_violations: int = 5,
    ) -> None:
        self.total_cells = total_cells
        self.workers = max(1, workers)
        self._clock = clock
        self.window_s = window_s
        self.started_at = clock()
        self.completed = 0
        self.failed = 0
        self.cached = 0
        self.busy_seconds = 0.0
        #: scheme -> [acts, wall seconds, cells] for computed cells.
        self.scheme_totals: dict[str, list[float]] = {}
        self._completions: deque[float] = deque()
        self.violations = 0
        self.recent_violations: deque[str] = deque(maxlen=recent_violations)

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def cell_finished(
        self,
        *,
        scheme: str,
        seconds: float,
        source: str,
        acts: int = 0,
        failed: bool = False,
    ) -> None:
        """Record one resolved cell (computed, cached, or failed)."""
        now = self._clock()
        if failed:
            self.failed += 1
        else:
            self.completed += 1
        if source == "cache":
            self.cached += 1
        else:
            self.busy_seconds += seconds
            if not failed:
                totals = self.scheme_totals.setdefault(scheme, [0.0, 0.0, 0])
                totals[0] += acts
                totals[1] += seconds
                totals[2] += 1
        self._completions.append(now)
        cutoff = now - self.window_s
        while self._completions and self._completions[0] < cutoff:
            self._completions.popleft()

    def observe_event(self, event: Any) -> None:
        """Telemetry-bus subscriber: tallies OracleViolation events."""
        if type(event) is OracleViolation:
            self.violations += 1
            self.recent_violations.append(
                f"{event.subject}/{event.kind} "
                f"({event.generator} seed {event.seed})"
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def cells_per_second(self) -> float:
        """Completion rate over the sliding window (0 when idle)."""
        if not self._completions:
            return 0.0
        now = self._clock()
        span = max(1e-9, min(self.window_s, now - self.started_at))
        return len(self._completions) / span

    def eta_seconds(self) -> float | None:
        pending = self.total_cells - self.completed - self.failed
        if pending <= 0:
            return 0.0
        rate = self.cells_per_second()
        return pending / rate if rate > 0 else None

    def utilization(self) -> float:
        """Busy worker-seconds over elapsed worker capacity (0..1-ish)."""
        elapsed = max(1e-9, self._clock() - self.started_at)
        return min(1.0, self.busy_seconds / (elapsed * self.workers))

    def snapshot(
        self, cache_counters: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """One JSON-able progress frame (dashboard + heartbeat payload)."""
        done = self.completed + self.failed
        per_scheme = {
            scheme: {
                "acts": int(acts),
                "seconds": round(seconds, 3),
                "cells": int(cells),
                "acts_per_sec": (acts / seconds) if seconds > 0 else 0.0,
            }
            for scheme, (acts, seconds, cells) in sorted(
                self.scheme_totals.items()
            )
        }
        hits = misses = None
        if cache_counters:
            hits = cache_counters.get("hits")
            misses = cache_counters.get("misses")
        return {
            "total": self.total_cells,
            "completed": self.completed,
            "failed": self.failed,
            "cached": self.cached,
            "pending": max(0, self.total_cells - done),
            "elapsed_s": round(self._clock() - self.started_at, 3),
            "cells_per_sec": round(self.cells_per_second(), 4),
            "eta_s": self.eta_seconds(),
            "utilization": round(self.utilization(), 4),
            "workers": self.workers,
            "cache_hits": hits,
            "cache_misses": misses,
            "violations": self.violations,
            "recent_violations": list(self.recent_violations),
            "schemes": per_scheme,
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    @staticmethod
    def render(
        snapshot: Mapping[str, Any], name: str = "", width: int = 72
    ) -> list[str]:
        """Dashboard lines for one progress frame (no ANSI codes)."""
        total = snapshot["total"] or 1
        done = snapshot["completed"] + snapshot["failed"]
        fraction = done / total
        bar_width = max(10, width - 50)
        filled = int(round(fraction * bar_width))
        bar = "#" * filled + "." * (bar_width - filled)
        title = f"campaign {name}: " if name else "campaign: "
        lines = [
            f"{title}{done}/{snapshot['total']} cells "
            f"({snapshot['completed']} ok, {snapshot['failed']} failed, "
            f"{snapshot['cached']} cached)  {100.0 * fraction:5.1f}%",
            f"[{bar}]  {snapshot['cells_per_sec']:.2f} cells/s  "
            f"ETA {format_eta(snapshot['eta_s'])}  "
            f"workers {snapshot['workers']} @ "
            f"{100.0 * snapshot['utilization']:.0f}% util",
        ]
        hits, misses = snapshot["cache_hits"], snapshot["cache_misses"]
        if hits is not None and misses is not None and (hits + misses):
            ratio = hits / (hits + misses)
            cache_text = (
                f"cache: {hits:,} hits / {misses:,} misses "
                f"({100.0 * ratio:.1f}%)"
            )
        else:
            cache_text = "cache: off"
        lines.append(
            f"{cache_text}   violations: {snapshot['violations']}"
        )
        for scheme, row in snapshot["schemes"].items():
            lines.append(
                f"  {scheme:16s} {_rate_unit(row['acts_per_sec']):>8s} "
                f"ACTs/s  ({row['cells']} cells, {row['seconds']:.1f}s)"
            )
        for text in snapshot["recent_violations"]:
            lines.append(f"  ! {text}")
        return lines


class DashboardRenderer:
    """Paints ProgressSampler frames to a terminal without curses.

    On a TTY the previous frame is erased with ANSI cursor-up/clear
    sequences and redrawn in place; on a pipe (CI logs) one compact
    line is emitted at most every ``min_interval_s`` so logs stay
    readable.  ``close()`` leaves the final frame on screen.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        min_interval_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._last_paint = float("-inf")
        self._painted_lines = 0
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())

    def paint(
        self,
        snapshot: Mapping[str, Any],
        name: str = "",
        force: bool = False,
    ) -> bool:
        """Render one frame; returns whether anything was written."""
        now = self._clock()
        if not force and now - self._last_paint < self.min_interval_s:
            return False
        self._last_paint = now
        lines = ProgressSampler.render(snapshot, name=name)
        if self._is_tty:
            erase = "\x1b[F\x1b[K" * self._painted_lines
            self.stream.write(erase + "\n".join(lines) + "\n")
            self._painted_lines = len(lines)
        else:
            done = snapshot["completed"] + snapshot["failed"]
            self.stream.write(
                f"[campaign {name}] {done}/{snapshot['total']} cells, "
                f"{snapshot['cells_per_sec']:.2f} cells/s, "
                f"ETA {format_eta(snapshot['eta_s'])}, "
                f"{snapshot['violations']} violations\n"
            )
        self.stream.flush()
        return True

    def close(self, snapshot: Mapping[str, Any], name: str = "") -> None:
        """Paint the final frame unconditionally."""
        self.paint(snapshot, name=name, force=True)
