"""The checkpointed campaign driver.

Orchestration shape: the spec expands to cells, completed cells are
subtracted using the manifest, and the remainder runs through the PR-1
:class:`~repro.experiments.runner.ExperimentRunner` in batches.  Each
cell checkpoints to the manifest *as it resolves* (via the runner's
``on_progress`` hook, which also ticks the live dashboard mid-batch),
so a killed campaign loses at most the in-flight batch -- and even
those cells usually resolve from the result cache on resume, because
manifest keys and cache keys are the same digests.

A batch that raises is retried serially, cell by cell, so one poisoned
cell records a ``failed`` manifest line instead of sinking its
batch-mates.  Failed cells are retried on resume (last record wins).

The driver also owns the campaign's telemetry: the whole run executes
inside a telemetry session, and after every batch the accumulated
events are appended to ``telemetry.jsonl`` in the campaign directory
(and scanned for OracleViolations to surface on the dashboard), so the
HTML report can be rendered from the merged stream at any time --
including from a half-finished campaign.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from ..experiments.runner import ExperimentRunner, Job
from ..sim.cache import ResultCache
from ..telemetry.events import event_record
from ..telemetry.runtime import TelemetryBus, session
from .grid import CampaignCell, CampaignSpec
from .manifest import CampaignManifest, CellRecord
from .progress import DashboardRenderer, ProgressSampler

__all__ = ["CampaignDriver", "TELEMETRY_NAME"]

#: Merged campaign event stream, appended batch by batch.
TELEMETRY_NAME = "telemetry.jsonl"


def _chunks(items: list[Any], size: int) -> list[list[Any]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


class CampaignDriver:
    """Runs (or resumes) one campaign directory to completion.

    Args:
        spec: The campaign grid.
        manifest: The directory's manifest (create or open it first).
        workers: Runner worker processes.
        cache: Result cache; defaults to ``<campaign dir>/cache`` so
            even a lost manifest degrades to cache hits.  Pass
            ``cache=None`` with ``use_cache=False`` to disable.
        dashboard: Renderer for live progress (None = headless).
        heartbeat_s: Minimum spacing of manifest heartbeat lines.
        batch_size: Cells per runner batch (default ``4 * workers``).
        clock: Injected monotonic clock (tests pin it).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        manifest: CampaignManifest,
        workers: int = 1,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        dashboard: DashboardRenderer | None = None,
        heartbeat_s: float = 10.0,
        batch_size: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        max_events: int | None = 200_000,
    ) -> None:
        if manifest.spec_digest and manifest.spec_digest != spec.digest():
            raise ValueError(
                "campaign spec does not match the manifest in "
                f"{manifest.directory} (digest {spec.digest()[:12]} vs "
                f"{manifest.spec_digest[:12]}); resume with the original "
                "spec or start a new directory"
            )
        self.spec = spec
        self.manifest = manifest
        self.workers = max(1, workers)
        if cache is None and use_cache:
            cache = ResultCache(manifest.directory / "cache")
        self.cache = cache
        self.dashboard = dashboard
        self.heartbeat_s = heartbeat_s
        self.batch_size = batch_size or 4 * self.workers
        self._clock = clock
        self._last_heartbeat = clock()
        self.max_events = max_events
        self.telemetry_path = manifest.directory / TELEMETRY_NAME
        #: Cache keys this session computed (not cache-resolved) --
        #: the zero-recompute proof compares these against the
        #: manifest's completed keys from the previous run.
        self.computed_keys: list[str] = []

    # ------------------------------------------------------------------

    def _drain_events(self, bus: TelemetryBus, sampler: ProgressSampler) -> int:
        """Append the bus's events to telemetry.jsonl and clear them."""
        events = bus.events
        if not events:
            return 0
        with open(self.telemetry_path, "a", encoding="utf-8") as handle:
            for event in events:
                sampler.observe_event(event)
                handle.write(
                    json.dumps(event_record(event), sort_keys=True) + "\n"
                )
        drained = len(events)
        bus.events.clear()
        return drained

    def _record(
        self,
        cell: CampaignCell,
        sampler: ProgressSampler,
        *,
        seconds: float,
        source: str,
        acts: int = 0,
        error: str = "",
        runner: ExperimentRunner | None = None,
    ) -> None:
        """Checkpoint one cell outcome and tick the observability layer."""
        failed = bool(error)
        self.manifest.record_cell(
            CellRecord(
                cell_id=cell.cell_id,
                key=cell.key(),
                status="failed" if failed else "completed",
                seconds=seconds,
                source=source,
                scheme=cell.scheme,
                workload=cell.workload,
                hammer_threshold=cell.hammer_threshold,
                timing_grid=cell.timing_grid,
                acts=acts,
                error=error,
            )
        )
        if not failed and source == "computed":
            self.computed_keys.append(cell.key())
        sampler.cell_finished(
            scheme=cell.scheme,
            seconds=seconds,
            source=source,
            acts=acts,
            failed=failed,
        )
        now = self._clock()
        if now - self._last_heartbeat >= self.heartbeat_s:
            self._last_heartbeat = now
            counters = runner.cache_counters() if runner else None
            self.manifest.record_heartbeat(sampler.snapshot(counters))
        if self.dashboard is not None:
            counters = runner.cache_counters() if runner else None
            self.dashboard.paint(
                sampler.snapshot(counters), name=self.spec.name
            )

    def _run_batch(
        self,
        batch: list[CampaignCell],
        runner: ExperimentRunner,
        sampler: ProgressSampler,
    ) -> None:
        """Run one batch; on a batch error, retry unresolved cells serially."""
        resolved: set[str] = set()

        def hook(
            index: int, job: Job, result: Any, seconds: float, source: str
        ) -> None:
            cell = batch[index]
            resolved.add(cell.cell_id)
            self._record(
                cell,
                sampler,
                seconds=seconds,
                source=source,
                acts=int(getattr(result, "acts", 0)),
                runner=runner,
            )

        runner.on_progress = hook
        try:
            runner.run([cell.job() for cell in batch])
            return
        except Exception:
            # One cell poisoned the batch (and, on the parallel path,
            # may have discarded batch-mates that finished after it).
            # Retry every unresolved cell in isolation so the failure
            # lands on exactly the cell that owns it.
            pass
        serial = ExperimentRunner(jobs=1, cache=runner.cache)
        for cell in batch:
            if cell.cell_id in resolved:
                continue
            serial.on_progress = (
                lambda index, job, result, seconds, source, _cell=cell: (
                    self._record(
                        _cell,
                        sampler,
                        seconds=seconds,
                        source=source,
                        acts=int(getattr(result, "acts", 0)),
                        runner=runner,
                    )
                )
            )
            try:
                serial.run([cell.job()])
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                self._record(
                    cell,
                    sampler,
                    seconds=0.0,
                    source="computed",
                    error=f"{type(exc).__name__}: {exc}",
                    runner=runner,
                )

    # ------------------------------------------------------------------

    def run(self, max_cells: int | None = None) -> dict[str, Any]:
        """Run every pending cell (bounded by ``max_cells``).

        Returns a summary dict; ``status`` is ``"completed"``,
        ``"completed-with-failures"``, or ``"interrupted"`` (the
        ``max_cells`` bound stopped the sweep with cells pending --
        the checkpoint-then-exit path CI uses to rehearse a kill).
        """
        all_cells = self.spec.cells()
        done = set(self.manifest.completed())
        todo = [cell for cell in all_cells if cell.cell_id not in done]
        skipped = len(all_cells) - len(todo)
        interrupted = max_cells is not None and len(todo) > max_cells
        if max_cells is not None:
            todo = todo[:max_cells]

        sampler = ProgressSampler(
            total_cells=len(todo), workers=self.workers, clock=self._clock
        )
        self._last_heartbeat = self._clock()
        runner = ExperimentRunner(jobs=self.workers, cache=self.cache)
        bus = TelemetryBus(max_events=self.max_events)
        with session(bus):
            for batch in _chunks(todo, self.batch_size):
                self._run_batch(batch, runner, sampler)
                self._drain_events(bus, sampler)
        self._drain_events(bus, sampler)

        counters = runner.cache_counters()
        snapshot = sampler.snapshot(counters)
        self.manifest.record_heartbeat(snapshot)
        if self.dashboard is not None:
            self.dashboard.close(snapshot, name=self.spec.name)

        counts = self.manifest.status_counts()
        if interrupted:
            status = "interrupted"
        elif counts["failed"]:
            status = "completed-with-failures"
        else:
            status = "completed"
        from ..core import shard_pool

        return {
            "status": status,
            "name": self.spec.name,
            "spec_digest": self.spec.digest(),
            "cells_total": len(all_cells),
            "cells_skipped": skipped,
            "cells_run": len(todo),
            "computed_keys": list(self.computed_keys),
            "cache_counters": counters,
            "manifest": counts,
            "snapshot": snapshot,
            "telemetry_path": str(self.telemetry_path),
            "manifest_path": str(self.manifest.path),
            # None unless some cell actually sharded in this process;
            # with runner workers > 1 the sharding happens inside job
            # processes, whose pools die with them.
            "shard_pool": shard_pool.pool_stats(),
        }

    # ------------------------------------------------------------------
    # Construction helpers (the CLI entry points)
    # ------------------------------------------------------------------

    @classmethod
    def start(
        cls,
        spec: CampaignSpec,
        directory: str | Path,
        **kwargs: Any,
    ) -> "CampaignDriver":
        """Fresh campaign: write the manifest header, then drive."""
        manifest = CampaignManifest.create(
            directory,
            spec.to_dict(),
            spec.digest(),
            total_cells=len(spec.cells()),
        )
        return cls(spec, manifest, **kwargs)

    @classmethod
    def resume(
        cls, directory: str | Path, **kwargs: Any
    ) -> "CampaignDriver":
        """Reattach to a campaign directory; the spec comes from the
        manifest header, so resume needs no spec file."""
        manifest = CampaignManifest.open(directory)
        header = manifest.header or {}
        spec = CampaignSpec.from_dict(header.get("spec", {}))
        return cls(spec, manifest, **kwargs)
