"""Fleet-scale sweep campaigns: grids, checkpoints, observability.

A *campaign* is a declarative Cartesian sweep (schemes x workloads x
T_RH generations x timing grids) run through the PR-1 experiment
runner with durable per-cell checkpoints, a live terminal dashboard,
and a static HTML report.  See docs/campaigns.md for the spec format
and resume semantics.
"""

from .driver import TELEMETRY_NAME, CampaignDriver
from .grid import (
    GRID_SCHEMES,
    SPEC_SCHEMA_VERSION,
    CampaignCell,
    CampaignSpec,
    load_spec,
)
from .manifest import MANIFEST_SCHEMA_VERSION, CampaignManifest, CellRecord
from .progress import DashboardRenderer, ProgressSampler, format_eta
from .report import REPORT_NAME, render_report, write_report

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "MANIFEST_SCHEMA_VERSION",
    "GRID_SCHEMES",
    "CampaignCell",
    "CampaignSpec",
    "load_spec",
    "CampaignManifest",
    "CellRecord",
    "CampaignDriver",
    "TELEMETRY_NAME",
    "ProgressSampler",
    "DashboardRenderer",
    "format_eta",
    "render_report",
    "write_report",
    "REPORT_NAME",
]
