"""Self-contained static HTML campaign report.

Rendered from the two artifacts a campaign directory always has -- the
checkpoint manifest and the merged ``telemetry.jsonl`` -- so a report
can be produced from a finished campaign, a half-finished one, or a
recorded stream copied off another machine.  No external assets, no
JavaScript dependencies: one file, inline CSS, inline SVG.

Visual grammar (kept deliberately small):

* headline numbers are stat tiles, not charts;
* per-scheme throughput is a magnitude comparison, so the bars use a
  single hue (the series blue), light and dark modes each getting
  their own step against their own surface;
* failed cells carry an icon plus the word "failed" -- state is never
  encoded by color alone;
* all text wears text tokens; color is reserved for marks.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..telemetry.export import iter_jsonl
from .driver import TELEMETRY_NAME
from .manifest import CampaignManifest, CellRecord

__all__ = ["render_report", "write_report", "REPORT_NAME"]

REPORT_NAME = "report.html"

#: Palette roles (light, dark) validated against the matching surfaces.
_CSS = """
:root {
  --surface: #fcfcfb;
  --surface-raised: #f4f4f2;
  --text: #1a1a19;
  --text-secondary: #5c5c58;
  --border: #e3e3df;
  --series-1: #2a78d6;
  --serious: #b4442c;
  --good: #3c7a3e;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --surface-raised: #242423;
    --text: #f2f2ef;
    --text-secondary: #a8a8a2;
    --border: #3a3a37;
    --series-1: #3987e5;
    --serious: #e06c50;
    --good: #6fae71;
  }
}
[data-theme="dark"] {
  --surface: #1a1a19;
  --surface-raised: #242423;
  --text: #f2f2ef;
  --text-secondary: #a8a8a2;
  --border: #3a3a37;
  --series-1: #3987e5;
  --serious: #e06c50;
  --good: #6fae71;
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 2rem 1.5rem; max-width: 62rem;
  background: var(--surface); color: var(--text);
  font: 15px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 1.4rem; margin: 0 0 0.25rem; }
h2 { font-size: 1.05rem; margin: 2rem 0 0.75rem; }
.meta { color: var(--text-secondary); font-size: 0.85rem; }
.tiles { display: flex; flex-wrap: wrap; gap: 0.75rem; margin: 1.25rem 0; }
.tile {
  background: var(--surface-raised); border: 1px solid var(--border);
  border-radius: 8px; padding: 0.7rem 1rem; min-width: 8.5rem;
}
.tile .value { font-size: 1.5rem; font-weight: 600; }
.tile .label { color: var(--text-secondary); font-size: 0.8rem; }
.bar-row { display: grid; grid-template-columns: 10rem 1fr 7rem;
  align-items: center; gap: 0.6rem; margin: 2px 0; }
.bar-label { text-align: right; font-size: 0.85rem;
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.bar-value { font-size: 0.85rem; color: var(--text-secondary); }
.bar-track { height: 18px; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
  border-bottom: 1px solid var(--border); }
th { color: var(--text-secondary); font-weight: 500; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.status-failed { color: var(--serious); }
.status-ok { color: var(--good); }
code { background: var(--surface-raised); border-radius: 4px;
  padding: 0.05rem 0.3rem; font-size: 0.85em; }
footer { margin-top: 2.5rem; color: var(--text-secondary);
  font-size: 0.8rem; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _tile(value: str, label: str) -> str:
    return (
        f'<div class="tile"><div class="value">{_esc(value)}</div>'
        f'<div class="label">{_esc(label)}</div></div>'
    )


def _rate(acts_per_sec: float) -> str:
    if acts_per_sec >= 1e6:
        return f"{acts_per_sec / 1e6:.2f}M ACTs/s"
    if acts_per_sec >= 1e3:
        return f"{acts_per_sec / 1e3:.1f}k ACTs/s"
    return f"{acts_per_sec:.0f} ACTs/s"


def _scheme_bars(per_scheme: Mapping[str, dict[str, float]]) -> str:
    """Single-hue horizontal bars: per-scheme simulated ACTs/wall-s."""
    if not per_scheme:
        return '<p class="meta">No computed cells yet.</p>'
    peak = max(row["acts_per_sec"] for row in per_scheme.values()) or 1.0
    rows = []
    ranked = sorted(
        per_scheme.items(), key=lambda kv: kv[1]["acts_per_sec"], reverse=True
    )
    for scheme, row in ranked:
        # The 4px-rounded data end is the bar's value edge; the bar is
        # anchored to the zero baseline at the left.
        width_pct = 100.0 * row["acts_per_sec"] / peak
        rows.append(
            f'<div class="bar-row">'
            f'<div class="bar-label">{_esc(scheme)}</div>'
            f'<svg class="bar-track" preserveAspectRatio="none" '
            f'viewBox="0 0 100 18" width="100%" height="18" '
            f'role="img" aria-label="{_esc(scheme)}: '
            f'{_esc(_rate(row["acts_per_sec"]))}">'
            f'<rect x="0" y="2" width="{width_pct:.2f}" height="14" '
            f'rx="2" fill="var(--series-1)"/></svg>'
            f'<div class="bar-value">{_esc(_rate(row["acts_per_sec"]))}'
            f' &middot; {int(row["cells"])} cells</div>'
            f"</div>"
        )
    return "\n".join(rows)


def _aggregate(
    cells: Mapping[str, CellRecord],
) -> dict[str, dict[str, float]]:
    """Per-scheme throughput from the manifest's computed cells."""
    totals: dict[str, dict[str, float]] = {}
    for record in cells.values():
        if record.status != "completed" or record.source != "computed":
            continue
        row = totals.setdefault(
            record.scheme, {"acts": 0.0, "seconds": 0.0, "cells": 0}
        )
        row["acts"] += record.acts
        row["seconds"] += record.seconds
        row["cells"] += 1
    for row in totals.values():
        row["acts_per_sec"] = (
            row["acts"] / row["seconds"] if row["seconds"] > 0 else 0.0
        )
    return totals


def _telemetry_rollup(events: Iterable[Any]) -> dict[str, Any]:
    """Event-type counts and violation details from the merged stream."""
    counts: dict[str, int] = {}
    violations: list[str] = []
    for event in events:
        if isinstance(event, Mapping):
            name = str(event.get("type", "unknown"))
        else:
            name = type(event).__name__
        counts[name] = counts.get(name, 0) + 1
        if name == "OracleViolation":
            subject = (
                event.get("subject")
                if isinstance(event, Mapping)
                else getattr(event, "subject", "?")
            )
            kind = (
                event.get("kind")
                if isinstance(event, Mapping)
                else getattr(event, "kind", "?")
            )
            violations.append(f"{subject}/{kind}")
    return {"counts": counts, "violations": violations}


def render_report(
    manifest: CampaignManifest,
    telemetry: Iterable[Any] = (),
    max_table_rows: int = 200,
) -> str:
    """The full HTML document for one campaign directory's state."""
    header = manifest.header or {}
    name = header.get("name") or "(unnamed campaign)"
    counts = manifest.status_counts()
    cells = manifest.cells
    per_scheme = _aggregate(cells)
    rollup = _telemetry_rollup(telemetry)

    computed = sum(
        1
        for r in cells.values()
        if r.status == "completed" and r.source == "computed"
    )
    cached = sum(
        1
        for r in cells.values()
        if r.status == "completed" and r.source == "cache"
    )
    wall = sum(r.seconds for r in cells.values() if r.source == "computed")
    total_acts = sum(r.acts for r in cells.values())
    n_violations = len(rollup["violations"])

    tiles = [
        _tile(f"{counts['completed']}/{counts['total']}", "cells completed"),
        _tile(str(counts["failed"]), "cells failed"),
        _tile(str(computed), "computed"),
        _tile(str(cached), "from cache"),
        _tile(f"{wall:.1f}s", "worker time"),
        _tile(f"{total_acts:,}", "simulated ACTs"),
        _tile(str(n_violations), "oracle violations"),
    ]

    failed = sorted(manifest.failed().values(), key=lambda r: r.cell_id)
    failed_html = ""
    if failed:
        items = "\n".join(
            f'<li><code>{_esc(r.cell_id)}</code> '
            f'<span class="status-failed">&#10007; failed</span> '
            f"&mdash; {_esc(r.error or 'no error recorded')}</li>"
            for r in failed
        )
        failed_html = f"<h2>Failed cells</h2><ul>{items}</ul>"

    violations_html = ""
    if rollup["violations"]:
        items = "\n".join(
            f'<li><span class="status-failed">&#9888; violation</span> '
            f"<code>{_esc(v)}</code></li>"
            for v in rollup["violations"][:50]
        )
        violations_html = (
            f"<h2>Oracle violations ({n_violations})</h2><ul>{items}</ul>"
        )

    event_rows = "\n".join(
        f"<tr><td><code>{_esc(kind)}</code></td>"
        f'<td class="num">{count:,}</td></tr>'
        for kind, count in sorted(rollup["counts"].items())
    )
    events_html = (
        "<h2>Telemetry events</h2><table><thead><tr><th>event</th>"
        '<th class="num">count</th></tr></thead>'
        f"<tbody>{event_rows}</tbody></table>"
        if rollup["counts"]
        else ""
    )

    ordered = sorted(cells.values(), key=lambda r: r.cell_id)
    shown = ordered[:max_table_rows]
    cell_rows = []
    for r in shown:
        if r.status == "completed":
            status = '<span class="status-ok">&#10003; ok</span>'
        else:
            status = '<span class="status-failed">&#10007; failed</span>'
        cell_rows.append(
            f"<tr><td><code>{_esc(r.cell_id)}</code></td>"
            f"<td>{status}</td><td>{_esc(r.source)}</td>"
            f'<td class="num">{r.acts:,}</td>'
            f'<td class="num">{r.seconds:.2f}s</td></tr>'
        )
    truncated = (
        f'<p class="meta">Showing {len(shown)} of {len(ordered)} cells.</p>'
        if len(ordered) > len(shown)
        else ""
    )
    table_html = (
        "<h2>Cells</h2>"
        '<table><thead><tr><th>cell</th><th>status</th><th>source</th>'
        '<th class="num">ACTs</th><th class="num">wall</th></tr></thead>'
        f"<tbody>{''.join(cell_rows)}</tbody></table>{truncated}"
        if cell_rows
        else ""
    )

    digest = header.get("spec_digest", "")[:12]
    spec_json = _esc(
        json.dumps(header.get("spec", {}), indent=2, sort_keys=True)
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>campaign report: {_esc(name)}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>Campaign: {_esc(name)}</h1>
<p class="meta">spec digest <code>{_esc(digest)}</code> &middot;
{counts['pending']} pending</p>
<div class="tiles">{''.join(tiles)}</div>
<h2>Per-scheme throughput (simulated ACTs per worker-second)</h2>
{_scheme_bars(per_scheme)}
{failed_html}
{violations_html}
{events_html}
{table_html}
<h2>Spec</h2>
<details><summary class="meta">campaign grid (JSON)</summary>
<pre>{spec_json}</pre></details>
<footer>Rendered offline from <code>manifest.jsonl</code> and
<code>telemetry.jsonl</code>; safe to open from a half-finished
campaign.</footer>
</body>
</html>
"""


def write_report(
    directory: str | Path,
    output: str | Path | None = None,
    telemetry_path: str | Path | None = None,
) -> Path:
    """Render ``report.html`` for a campaign directory and return its path."""
    directory = Path(directory)
    manifest = CampaignManifest.open(directory)
    if telemetry_path is None:
        telemetry_path = directory / TELEMETRY_NAME
    telemetry_path = Path(telemetry_path)
    events: Iterable[Any] = (
        iter_jsonl(telemetry_path) if telemetry_path.exists() else ()
    )
    target = Path(output) if output is not None else directory / REPORT_NAME
    target.write_text(render_report(manifest, events), encoding="utf-8")
    return target
