"""Checkpointed campaign state: an append-only JSONL manifest.

The manifest is the campaign's source of truth for resume: one header
line binds the directory to a spec digest, then one line per cell
*outcome* (completed or failed) plus periodic heartbeat lines.  Lines
are appended and flushed as soon as they are known, so a campaign
killed mid-sweep -- SIGKILL included -- loses at most the in-flight
batch, and ``resume`` replays the file to find exactly which cells
still need computing.

Cells are keyed two ways on every line: the human-stable ``cell`` id
(``grid/trh=N/workload/scheme``) and the content-addressed cache
``key`` of the underlying runner job.  The latter is what makes "a
resumed campaign recomputes nothing" *checkable*: the resume run's
computed-key set must be disjoint from the completed-key set already in
the manifest (and even a lost manifest degrades to cache hits, because
the keys are the PR-1 result-cache addresses).

Replay semantics: the last record for a cell wins, so a cell that
failed in run 1 and completed in run 2 reads as completed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = ["MANIFEST_SCHEMA_VERSION", "CellRecord", "CampaignManifest"]

#: Bump when the manifest line format changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1

_MANIFEST_NAME = "manifest.jsonl"


@dataclass(frozen=True)
class CellRecord:
    """Latest known outcome of one cell."""

    cell_id: str
    key: str
    status: str  # "completed" | "failed"
    seconds: float
    source: str  # "computed" | "cache"
    scheme: str
    workload: str
    hammer_threshold: int
    timing_grid: str
    acts: int = 0
    error: str = ""

    def to_line(self) -> dict[str, Any]:
        return {
            "type": "cell",
            "cell": self.cell_id,
            "key": self.key,
            "status": self.status,
            "seconds": round(self.seconds, 6),
            "source": self.source,
            "scheme": self.scheme,
            "workload": self.workload,
            "hammer_threshold": self.hammer_threshold,
            "timing_grid": self.timing_grid,
            "acts": self.acts,
            "error": self.error,
        }

    @classmethod
    def from_line(cls, line: Mapping[str, Any]) -> "CellRecord":
        return cls(
            cell_id=line["cell"],
            key=line["key"],
            status=line["status"],
            seconds=float(line.get("seconds", 0.0)),
            source=line.get("source", "computed"),
            scheme=line.get("scheme", ""),
            workload=line.get("workload", ""),
            hammer_threshold=int(line.get("hammer_threshold", 0)),
            timing_grid=line.get("timing_grid", ""),
            acts=int(line.get("acts", 0)),
            error=line.get("error", ""),
        )


class CampaignManifest:
    """Append-only JSONL ledger of one campaign directory.

    Args:
        directory: The campaign directory (created if missing).

    Use :meth:`create` for a fresh campaign (writes the header) and
    :meth:`open` to attach to an existing one (replays the file).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / _MANIFEST_NAME
        self.header: dict[str, Any] | None = None
        #: cell id -> latest outcome record.
        self.cells: dict[str, CellRecord] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str | Path,
        spec_dict: Mapping[str, Any],
        spec_digest: str,
        total_cells: int,
    ) -> "CampaignManifest":
        """Start a fresh manifest; refuses to clobber an existing one."""
        manifest = cls(directory)
        if manifest.path.exists():
            raise FileExistsError(
                f"{manifest.path} already exists; use resume (or a new "
                "campaign directory)"
            )
        manifest.directory.mkdir(parents=True, exist_ok=True)
        manifest.header = {
            "type": "campaign",
            "schema": MANIFEST_SCHEMA_VERSION,
            "name": spec_dict.get("name", ""),
            "spec": dict(spec_dict),
            "spec_digest": spec_digest,
            "total_cells": total_cells,
            "created_unix": time.time(),
        }
        manifest._append(manifest.header)
        return manifest

    @classmethod
    def open(cls, directory: str | Path) -> "CampaignManifest":
        """Attach to an existing campaign directory and replay its file."""
        manifest = cls(directory)
        if not manifest.path.exists():
            raise FileNotFoundError(
                f"no campaign manifest at {manifest.path}"
            )
        for line in manifest._lines():
            kind = line.get("type")
            if kind == "campaign":
                if line.get("schema") != MANIFEST_SCHEMA_VERSION:
                    raise ValueError(
                        f"manifest schema {line.get('schema')!r} is not "
                        f"readable by this version "
                        f"({MANIFEST_SCHEMA_VERSION})"
                    )
                manifest.header = line
            elif kind == "cell":
                record = CellRecord.from_line(line)
                manifest.cells[record.cell_id] = record
            # Heartbeats and unknown (newer) line types replay as no-ops.
        if manifest.header is None:
            raise ValueError(f"{manifest.path} has no campaign header")
        return manifest

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _append(self, line: Mapping[str, Any]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(dict(line), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _lines(self) -> Iterator[dict[str, Any]]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    yield json.loads(raw)
                except json.JSONDecodeError:
                    # A torn final line from a killed run: recompute
                    # that cell rather than refuse to resume.
                    continue

    def record_cell(self, record: CellRecord) -> None:
        """Checkpoint one cell outcome (durable before returning)."""
        self.cells[record.cell_id] = record
        self._append(record.to_line())

    def record_heartbeat(self, payload: Mapping[str, Any]) -> None:
        """Append a liveness/progress line (ignored on replay)."""
        self._append({"type": "heartbeat", "unix": time.time(), **payload})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def spec_digest(self) -> str:
        return self.header.get("spec_digest", "") if self.header else ""

    @property
    def total_cells(self) -> int:
        return int(self.header.get("total_cells", 0)) if self.header else 0

    def completed(self) -> dict[str, CellRecord]:
        return {
            cell_id: record
            for cell_id, record in self.cells.items()
            if record.status == "completed"
        }

    def failed(self) -> dict[str, CellRecord]:
        return {
            cell_id: record
            for cell_id, record in self.cells.items()
            if record.status == "failed"
        }

    def completed_keys(self) -> set[str]:
        """Cache keys of every completed cell (the resume-proof set)."""
        return {record.key for record in self.completed().values()}

    def status_counts(self) -> dict[str, int]:
        completed = len(self.completed())
        failed = len(self.failed())
        return {
            "total": self.total_cells,
            "completed": completed,
            "failed": failed,
            "pending": max(0, self.total_cells - completed - failed),
        }
