"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` -- show available experiments, workloads and schemes;
* ``experiment <name>`` -- regenerate one paper table/figure (or
  ``all`` of them) through the shared runner: ``--jobs N`` fans
  simulation cells across CPU cores, results are cached on disk under
  ``--cache-dir`` (disable with ``--no-cache``), and a wall-clock /
  cache-hit summary (with per-job elapsed/cache breakdown) is printed
  after the tables.  ``--telemetry`` collects engine-event telemetry
  for every computed cell; ``--trace-out DIR`` additionally writes the
  merged JSONL event log and Chrome trace there;
* ``derive --trh N [--k K] [--radius N]`` -- print a Graphene
  configuration for arbitrary parameters;
* ``attack --pattern P --scheme S`` -- run one attack/defense pair on
  the simulator and report flips/refreshes;
* ``trace <workload> <scheme>`` -- run one traced simulation with
  telemetry on and export a JSONL event log plus a Chrome
  ``trace_event`` file (open in ``chrome://tracing`` or Perfetto);
  the legacy form ``trace --workload W --out FILE`` still exports a
  raw ACT trace;
* ``verify fuzz|replay|corpus`` -- adversarial verification
  (:mod:`repro.verify`): run a differential-fuzzing campaign against
  the exact-count protection oracle (``fuzz``), re-run a saved
  reproducer artifact (``replay``), or replay the committed regression
  corpus (``corpus``).  Non-zero exit on any oracle violation.
* ``campaign run|resume|status|report`` -- checkpointed grid sweeps
  (:mod:`repro.campaign`): expand a declarative JSON grid into
  simulation cells, fan them across workers with a live terminal
  dashboard and durable per-cell checkpoints, resume an interrupted
  sweep without recomputing completed cells, inspect a campaign
  directory, or render its self-contained HTML report.  ``run`` and
  ``resume`` exit 0 when complete, 1 with failed cells, and 3 when a
  ``--max-cells`` bound stopped the sweep early (cells still pending).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from pathlib import Path

from .analysis.scaling import scheme_factories
from .core.config import GrapheneConfig
from .dram.faults import CouplingProfile
from .experiments import EXPERIMENT_NAMES, load
from .experiments.runner import (
    ExperimentRunner,
    using_engine,
    using_runner,
    using_shard_workers,
)
from .mitigations import no_mitigation_factory
from .sim.cache import ResultCache, default_cache_dir
from .sim.simulator import simulate
from .telemetry import (
    TelemetryBus,
    TimeSeriesSampler,
    session as telemetry_session,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from .workloads.adversarial import double_sided_rows
from .workloads.spec_like import REALISTIC_PROFILES, profile_events
from .workloads.synthetic import SYNTHETIC_PATTERNS, synthetic_events
from .workloads.trace import write_trace

#: Traceable workloads: every realistic profile, every synthetic
#: pattern, plus the canonical double-sided hammer.
TRACE_WORKLOADS = (
    sorted(REALISTIC_PROFILES)
    + sorted(SYNTHETIC_PATTERNS)
    + ["double-sided"]
)

TRACE_SCHEMES = ["none", "para", "cbt", "twice", "graphene", "comet",
                 "abacus"]

__all__ = ["main", "build_parser"]


def _job_count(text: str) -> int:
    """argparse type for ``--jobs``: non-negative int (0 = all cores)."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = all CPU cores), got {value}"
        )
    return value


def _worker_count(text: str) -> int:
    """argparse type for ``--shard-workers``: positive int."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (1 = serial fast mode), got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Graphene: Strong yet Lightweight Row "
            "Hammer Protection' (MICRO 2020)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiments/workloads/schemes")

    experiment = commands.add_parser(
        "experiment", help="regenerate one paper table/figure (or all)"
    )
    experiment.add_argument(
        "name", choices=sorted(EXPERIMENT_NAMES) + ["all"],
        help="experiment id, or 'all' for every table/figure",
    )
    experiment.add_argument(
        "--jobs", type=_job_count, default=1, metavar="N",
        help="worker processes for simulation cells "
             "(1 = serial, 0 = all CPU cores; default 1)",
    )
    experiment.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell, bypassing the on-disk result cache",
    )
    experiment.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-graphene)",
    )
    experiment.add_argument(
        "--fast", action="store_true",
        help="route simulation cells through the columnar fast engine "
             "(repro.core.fastpath); per-scheme batched kernels for "
             "graphene/para/twice/cbt/refresh-rate, byte-identical "
             "results, cached under distinct keys; schemes without a "
             "kernel (or telemetry-on runs) fall back to the reference "
             "loop with a warning, and the fallback reason is surfaced "
             "in the job summary",
    )
    experiment.add_argument(
        "--shard-workers", type=_worker_count, default=1, metavar="N",
        help="with --fast: dispatch per-bank lanes across N processes "
             "from the persistent shard pool inside each simulation "
             "cell (workers spawn once and are reused across cells; "
             "traces cross via shared memory; byte-identical results; "
             "1 = serial fast mode; see docs/scaling.md for sizing, "
             "and note --jobs parallelism composes multiplicatively "
             "with this)",
    )
    experiment.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job progress lines on stderr",
    )
    experiment.add_argument(
        "--telemetry", action="store_true",
        help="collect engine-event telemetry for every computed cell "
             "and print a summary after the tables",
    )
    experiment.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="write merged telemetry artifacts (events.jsonl, "
             "trace.json) to DIR; implies --telemetry",
    )
    experiment.add_argument(
        "--sample-interval-us", type=float, default=100.0, metavar="US",
        help="telemetry time-series sampling interval in simulated "
             "microseconds (default 100)",
    )

    derive = commands.add_parser(
        "derive", help="derive a Graphene configuration"
    )
    derive.add_argument("--trh", type=int, default=50_000,
                        help="Row Hammer threshold (default 50000)")
    derive.add_argument("--k", type=int, default=2,
                        help="reset-window divisor (default 2)")
    derive.add_argument("--radius", type=int, default=1,
                        help="blast radius n for +-n protection")
    derive.add_argument("--rows", type=int, default=65536,
                        help="rows per bank (default 65536)")

    attack = commands.add_parser(
        "attack", help="run an attack pattern against a defense"
    )
    attack.add_argument("--pattern", choices=sorted(SYNTHETIC_PATTERNS),
                        default="S3")
    attack.add_argument("--scheme", choices=TRACE_SCHEMES,
                        default="graphene")
    attack.add_argument("--trh", type=int, default=3_000,
                        help="Row Hammer threshold (scaled default 3000)")
    attack.add_argument("--duration-ms", type=float, default=16.0)
    attack.add_argument("--seed", type=int, default=42)

    trace = commands.add_parser(
        "trace",
        help="run a traced simulation (telemetry) or export an ACT "
             "trace file (legacy --out mode)",
    )
    trace.add_argument(
        "workload", nargs="?", choices=TRACE_WORKLOADS, default=None,
        help="workload to trace (realistic profile, adversarial "
             "pattern, or 'double-sided')",
    )
    trace.add_argument(
        "scheme", nargs="?", choices=TRACE_SCHEMES, default="graphene",
        help="mitigation scheme (default graphene)",
    )
    trace.add_argument("--trh", type=int, default=3_000,
                       help="Row Hammer threshold (scaled default 3000)")
    trace.add_argument(
        "--k", type=int, default=8, dest="k",
        help="reset-window divisor; the default 8 gives an 8 ms window "
             "so short traces still cross a WindowReset boundary",
    )
    trace.add_argument(
        "--duration-ms", type=float, default=None,
        help="simulated time (default 12 for telemetry traces, 4 for "
             "legacy --out mode)",
    )
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument(
        "--sample-interval-us", type=float, default=10.0, metavar="US",
        help="time-series sampling interval in simulated microseconds "
             "(default 10)",
    )
    trace.add_argument(
        "--max-events", type=int, default=1_000_000,
        help="event-retention cap; overflow is counted, not silently "
             "dropped (default 1000000)",
    )
    trace.add_argument(
        "--jsonl-out", default=None, metavar="FILE",
        help="JSONL event-log path "
             "(default trace-<workload>-<scheme>.jsonl)",
    )
    trace.add_argument(
        "--chrome-out", default=None, metavar="FILE",
        help="Chrome trace_event path "
             "(default trace-<workload>-<scheme>.trace.json)",
    )
    trace.add_argument(
        "--workload", dest="workload_flag", default=None,
        metavar="W", choices=sorted(REALISTIC_PROFILES),
        help="legacy flag form: workload profile for --out export",
    )
    trace.add_argument(
        "--out", default=None,
        help="legacy mode: write a raw ACT trace of the workload to "
             "this path instead of running a traced simulation",
    )

    verify = commands.add_parser(
        "verify",
        help="differential fuzzing against the protection oracle",
    )
    verify_sub = verify.add_subparsers(dest="verify_command", required=True)

    fuzz = verify_sub.add_parser(
        "fuzz", help="run a budgeted fuzz campaign (exit 1 on violations)"
    )
    fuzz.add_argument(
        "--budget", type=int, default=50, metavar="N",
        help="number of fuzz cells; generators and probabilistic "
             "schemes rotate round-robin (default 50)",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed (default 0)")
    fuzz.add_argument(
        "--length", type=int, default=1000, metavar="N",
        help="ACTs per generated stream (default 1000)",
    )
    fuzz.add_argument(
        "--jobs", type=_job_count, default=1, metavar="N",
        help="worker processes for fuzz cells "
             "(1 = serial, 0 = all CPU cores; default 1)",
    )
    fuzz.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell, bypassing the on-disk result cache",
    )
    fuzz.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-graphene)",
    )
    fuzz.add_argument(
        "--artifact-dir", default="verify-artifacts", metavar="DIR",
        help="where shrunken failing-stream reproducers are written "
             "(default verify-artifacts/)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging of failing streams",
    )
    fuzz.add_argument(
        "--telemetry", action="store_true",
        help="collect telemetry (OracleViolation events included) and "
             "print a summary",
    )
    fuzz.add_argument(
        "--quiet", action="store_true",
        help="suppress per-cell progress lines on stderr",
    )
    fuzz.add_argument(
        "--parallel", action="store_true",
        help="extend the fastpath differential subject with a sharded+"
             "chunked leg: every stream additionally runs through the "
             "fast engine with 2 shard workers and chunked streaming, "
             "and must stay byte-identical to the reference",
    )

    replay = verify_sub.add_parser(
        "replay", help="re-run saved reproducer artifacts"
    )
    replay.add_argument(
        "artifact", nargs="+",
        help="artifact JSON path(s) written by 'verify fuzz'",
    )
    replay.add_argument(
        "--parallel", action="store_true",
        help="include the sharded+chunked fastpath leg in the replay",
    )

    corpus = verify_sub.add_parser(
        "corpus", help="replay the committed regression corpus"
    )
    corpus.add_argument(
        "--dir", default="tests/corpus", metavar="DIR",
        help="corpus directory of artifact JSONs (default tests/corpus)",
    )
    corpus.add_argument(
        "--parallel", action="store_true",
        help="include the sharded+chunked fastpath leg in every replay",
    )

    campaign = commands.add_parser(
        "campaign",
        help="checkpointed grid sweeps with live observability",
    )
    campaign_sub = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    def _campaign_run_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workers", type=_job_count, default=1, metavar="N",
            help="worker processes for simulation cells "
                 "(1 = serial, 0 = all CPU cores; default 1)",
        )
        sub.add_argument(
            "--max-cells", type=int, default=None, metavar="N",
            help="stop after N pending cells (checkpoint-then-exit; "
                 "exit code 3 when cells remain)",
        )
        sub.add_argument(
            "--batch-size", type=int, default=None, metavar="N",
            help="cells per runner batch (default 4 x workers)",
        )
        sub.add_argument(
            "--no-cache", action="store_true",
            help="recompute every cell, bypassing the campaign's "
                 "result cache",
        )
        sub.add_argument(
            "--no-dashboard", action="store_true",
            help="suppress the live terminal dashboard",
        )
        sub.add_argument(
            "--heartbeat-s", type=float, default=10.0, metavar="S",
            help="minimum spacing of manifest heartbeat lines "
                 "(default 10)",
        )

    campaign_run = campaign_sub.add_parser(
        "run", help="start a fresh campaign from a JSON grid spec"
    )
    campaign_run.add_argument("spec", help="campaign grid spec (JSON file)")
    campaign_run.add_argument(
        "--dir", required=True, metavar="DIR", dest="directory",
        help="campaign directory (manifest, telemetry, cache, report)",
    )
    _campaign_run_args(campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume",
        help="resume an interrupted campaign (spec comes from the "
             "manifest; completed cells are never recomputed)",
    )
    campaign_resume.add_argument(
        "directory", metavar="DIR", help="campaign directory"
    )
    _campaign_run_args(campaign_resume)

    campaign_status = campaign_sub.add_parser(
        "status", help="summarize a campaign directory's manifest"
    )
    campaign_status.add_argument(
        "directory", metavar="DIR", help="campaign directory"
    )

    campaign_report = campaign_sub.add_parser(
        "report", help="render the self-contained HTML report"
    )
    campaign_report.add_argument(
        "directory", metavar="DIR", help="campaign directory"
    )
    campaign_report.add_argument(
        "--out", default=None, metavar="FILE",
        help="report path (default <DIR>/report.html)",
    )
    return parser


def _command_list() -> int:
    print("experiments:")
    for name in sorted(EXPERIMENT_NAMES):
        print(f"  {name}")
    print("\nrealistic workloads:")
    for name, profile in REALISTIC_PROFILES.items():
        print(f"  {name:12s} {profile.kind:16s} "
              f"{profile.acts_per_second_per_bank / 1e6:4.1f}M ACT/s/bank")
    print("\nadversarial patterns:", ", ".join(sorted(SYNTHETIC_PATTERNS)))
    print("schemes: none, para, prohit, mrloc, cbt, twice, cra, graphene, "
          "comet, abacus, refresh-rate")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    cache = (
        None
        if args.no_cache
        else ResultCache(args.cache_dir or default_cache_dir())
    )
    telemetry_on = args.telemetry or args.trace_out is not None
    runner = ExperimentRunner(
        jobs=args.jobs,
        cache=cache,
        progress=not args.quiet,
        sample_interval_ns=(
            args.sample_interval_us * 1e3 if telemetry_on else None
        ),
    )
    names = (
        sorted(EXPERIMENT_NAMES) if args.name == "all" else [args.name]
    )
    engine = "fast" if args.fast else "reference"
    bus = TelemetryBus() if telemetry_on else None
    with telemetry_session(bus) if bus is not None else nullcontext():
        with using_runner(runner), using_engine(engine), \
                using_shard_workers(args.shard_workers):
            for index, name in enumerate(names):
                if len(names) > 1:
                    prefix = "\n" if index else ""
                    print(f"{prefix}=== {name} ===")
                load(name).main()
        print(f"\n[{runner.stats.summary()}]")
        for line in runner.stats.breakdown():
            print(f"  {line}")
        cache_line = runner.cache_summary()
        if cache_line is not None:
            print(f"  {cache_line}")
    if bus is not None:
        print()
        print(summarize(bus.events, bus.registry.snapshot(), bus.dropped))
        if args.trace_out is not None:
            out_dir = Path(args.trace_out)
            out_dir.mkdir(parents=True, exist_ok=True)
            lines = write_jsonl(bus.events, out_dir / "events.jsonl")
            entries = write_chrome_trace(
                bus.events, out_dir / "trace.json",
                samples=bus.all_samples(), trace_name="repro-experiment",
            )
            print(f"wrote {lines:,} JSONL lines and a Chrome trace "
                  f"({entries:,} entries) to {out_dir}/")
    return 0


def _command_derive(args: argparse.Namespace) -> int:
    coupling = (
        CouplingProfile.adjacent_only()
        if args.radius == 1
        else CouplingProfile.inverse_square(args.radius)
    )
    config = GrapheneConfig(
        hammer_threshold=args.trh,
        reset_window_divisor=args.k,
        rows_per_bank=args.rows,
        coupling=coupling,
    )
    for key, value in config.summary().items():
        print(f"{key:32s} {value}")
    print(f"{'worst_case_energy_increase':32s} "
          f"{100 * config.worst_case_refresh_energy_increase():.3f}%")
    return 0


def _command_attack(args: argparse.Namespace) -> int:
    duration_ns = args.duration_ms * 1e6
    if args.scheme == "none":
        factory = no_mitigation_factory()
    else:
        factory = scheme_factories(args.trh)[args.scheme]
    rows = SYNTHETIC_PATTERNS[args.pattern](65536, args.seed)
    result = simulate(
        synthetic_events(rows, duration_ns=duration_ns),
        factory,
        scheme=args.scheme,
        workload=args.pattern,
        hammer_threshold=args.trh,
        duration_ns=duration_ns,
    )
    print(f"pattern={args.pattern} scheme={args.scheme} "
          f"T_RH={args.trh:,} duration={args.duration_ms:g}ms")
    print(f"  ACTs issued:          {result.acts:,}")
    print(f"  victim refreshes:     {result.victim_refresh_directives:,} "
          f"({result.victim_rows_refreshed:,} rows)")
    print(f"  refresh energy:       +{100 * result.refresh_energy_increase():.3f}%")
    print(f"  bit flips:            {result.bit_flips}")
    return 1 if result.bit_flips else 0


def _trace_events(workload: str, duration_ns: float, seed: int):
    """ACT stream for any traceable workload name."""
    if workload == "double-sided":
        rows = double_sided_rows(rows_per_bank=65536, seed=seed)
        return synthetic_events(rows, duration_ns=duration_ns)
    if workload in SYNTHETIC_PATTERNS:
        rows = SYNTHETIC_PATTERNS[workload](65536, seed)
        return synthetic_events(rows, duration_ns=duration_ns)
    return profile_events(
        REALISTIC_PROFILES[workload], duration_ns=duration_ns, seed=seed
    )


def _command_trace(args: argparse.Namespace) -> int:
    # Legacy mode: export a raw ACT trace, no telemetry.
    if args.out is not None:
        workload = args.workload_flag or args.workload or "mcf"
        if workload not in REALISTIC_PROFILES:
            print(f"error: --out export needs a realistic profile, "
                  f"not {workload!r}", file=sys.stderr)
            return 2
        duration_ms = 4.0 if args.duration_ms is None else args.duration_ms
        events = profile_events(
            REALISTIC_PROFILES[workload],
            duration_ns=duration_ms * 1e6,
            seed=args.seed,
        )
        count = write_trace(events, args.out)
        print(f"wrote {count:,} ACT events to {args.out}")
        return 0

    # Telemetry mode: run one simulation with the event bus installed.
    if args.workload is None:
        print("error: trace needs a workload (or --out for the legacy "
              "ACT-trace export)", file=sys.stderr)
        return 2
    duration_ms = 12.0 if args.duration_ms is None else args.duration_ms
    duration_ns = duration_ms * 1e6
    if args.scheme == "none":
        factory = no_mitigation_factory()
    else:
        factory = scheme_factories(
            args.trh, reset_window_divisor=args.k
        )[args.scheme]
    sampler = TimeSeriesSampler(args.sample_interval_us * 1e3)
    bus = TelemetryBus(sampler=sampler, max_events=args.max_events)
    with telemetry_session(bus):
        result = simulate(
            _trace_events(args.workload, duration_ns, args.seed),
            factory,
            scheme=args.scheme,
            workload=args.workload,
            hammer_threshold=args.trh,
            duration_ns=duration_ns,
        )
    sampler.finish()

    stem = f"trace-{args.workload}-{args.scheme}"
    jsonl_path = Path(args.jsonl_out or f"{stem}.jsonl")
    chrome_path = Path(args.chrome_out or f"{stem}.trace.json")
    lines = write_jsonl(
        bus.events, jsonl_path, run_summary=result.to_dict()
    )
    entries = write_chrome_trace(
        bus.events, chrome_path, samples=bus.all_samples(),
        trace_name=stem,
    )

    print(f"workload={args.workload} scheme={args.scheme} "
          f"T_RH={args.trh:,} k={args.k} duration={duration_ms:g}ms")
    print(f"  ACTs issued:          {result.acts:,}")
    print(f"  victim refreshes:     {result.victim_refresh_directives:,} "
          f"({result.victim_rows_refreshed:,} rows)")
    print(f"  bit flips:            {result.bit_flips}")
    print()
    print(summarize(bus.events, bus.registry.snapshot(), bus.dropped))
    print()
    print(f"wrote {lines:,} JSONL lines to {jsonl_path}")
    print(f"wrote Chrome trace ({entries:,} entries) to {chrome_path} "
          f"-- open in chrome://tracing or https://ui.perfetto.dev")
    return 0


def _replay_paths(paths, parallel: bool = False) -> int:
    """Replay artifacts; print one verdict line each; exit 1 on any FAIL."""
    from .verify import artifact_verdict, replay_artifact

    paths = list(paths)
    failures = 0
    for path in paths:
        report, artifact = replay_artifact(path, parallel_fastpath=parallel)
        ok, message = artifact_verdict(report, artifact)
        status = "ok" if ok else "FAIL"
        print(
            f"{status:4s} {path}: {message} "
            f"[{artifact['acts']} ACTs, {artifact['generator']} "
            f"seed {artifact['seed']}]"
        )
        failures += not ok
    print(f"{len(paths) - failures}/{len(paths)} artifacts ok")
    return 1 if failures else 0


def _command_verify(args: argparse.Namespace) -> int:
    from .verify import run_campaign

    if args.verify_command == "fuzz":
        cache = (
            None
            if args.no_cache
            else ResultCache(args.cache_dir or default_cache_dir())
        )
        runner = ExperimentRunner(
            jobs=args.jobs, cache=cache, progress=not args.quiet
        )
        bus = TelemetryBus() if args.telemetry else None
        with telemetry_session(bus) if bus is not None else nullcontext():
            report = run_campaign(
                args.budget,
                args.seed,
                length=args.length,
                runner=runner,
                shrink=not args.no_shrink,
                artifact_dir=args.artifact_dir,
                parallel_fastpath=args.parallel,
            )
        for line in report.summary():
            print(line)
        print(f"[{runner.stats.summary()}]")
        if bus is not None:
            print()
            print(summarize(bus.events, bus.registry.snapshot(),
                            bus.dropped))
        return 0 if report.ok else 1
    if args.verify_command == "replay":
        return _replay_paths(args.artifact, parallel=args.parallel)
    if args.verify_command == "corpus":
        paths = sorted(str(p) for p in Path(args.dir).glob("*.json"))
        if not paths:
            print(f"error: no artifact JSONs under {args.dir}/",
                  file=sys.stderr)
            return 2
        return _replay_paths(paths, parallel=args.parallel)
    raise AssertionError("unreachable")


def _campaign_summary_lines(summary: dict) -> list[str]:
    counts = summary["manifest"]
    lines = [
        f"campaign {summary['name']}: {summary['status']}",
        f"  {counts['completed']}/{counts['total']} completed, "
        f"{counts['failed']} failed, {counts['pending']} pending "
        f"({summary['cells_skipped']} already done, "
        f"{len(summary['computed_keys'])} computed this run)",
    ]
    counters = summary.get("cache_counters")
    if counters:
        lines.append(
            f"  cache: {counters['hits']:,} hits / "
            f"{counters['misses']:,} misses "
            f"({100.0 * counters['hit_ratio']:.1f}% hit rate)"
        )
    snapshot = summary.get("snapshot") or {}
    if snapshot.get("violations"):
        lines.append(f"  oracle violations: {snapshot['violations']}")
    lines.append(f"  manifest:  {summary['manifest_path']}")
    lines.append(f"  telemetry: {summary['telemetry_path']}")
    return lines


def _command_campaign(args: argparse.Namespace) -> int:
    from .campaign import (
        CampaignDriver,
        CampaignManifest,
        DashboardRenderer,
        load_spec,
        write_report,
    )

    if args.campaign_command == "report":
        target = write_report(args.directory, output=args.out)
        print(f"wrote {target}")
        return 0

    if args.campaign_command == "status":
        manifest = CampaignManifest.open(args.directory)
        counts = manifest.status_counts()
        header = manifest.header or {}
        print(
            f"campaign {header.get('name', '?')} "
            f"(spec {manifest.spec_digest[:12]})"
        )
        print(
            f"  {counts['completed']}/{counts['total']} completed, "
            f"{counts['failed']} failed, {counts['pending']} pending"
        )
        for record in sorted(
            manifest.failed().values(), key=lambda r: r.cell_id
        ):
            print(f"  FAILED {record.cell_id}: {record.error}")
        return 0

    dashboard = (
        None if args.no_dashboard else DashboardRenderer(stream=sys.stderr)
    )
    kwargs = dict(
        workers=args.workers,
        use_cache=not args.no_cache,
        dashboard=dashboard,
        heartbeat_s=args.heartbeat_s,
        batch_size=args.batch_size,
    )
    if args.campaign_command == "run":
        driver = CampaignDriver.start(
            load_spec(args.spec), args.directory, **kwargs
        )
    else:
        driver = CampaignDriver.resume(args.directory, **kwargs)
    summary = driver.run(max_cells=args.max_cells)
    for line in _campaign_summary_lines(summary):
        print(line)
    if summary["status"] == "interrupted":
        return 3
    return 1 if summary["manifest"]["failed"] else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "experiment":
            return _command_experiment(args)
        if args.command == "derive":
            return _command_derive(args)
        if args.command == "attack":
            return _command_attack(args)
        if args.command == "trace":
            return _command_trace(args)
        if args.command == "verify":
            return _command_verify(args)
        if args.command == "campaign":
            return _command_campaign(args)
        raise AssertionError("unreachable")
    finally:
        # Deterministic shard-pool teardown on every exit path,
        # KeyboardInterrupt included: stops the persistent workers and
        # unlinks any shared-memory segments a dying run left mapped.
        # (atexit would catch a clean interpreter exit; this also
        # covers main() being driven in-process, e.g. from tests.)
        from .core.shard_pool import close_pool

        close_pool()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
