"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` -- show available experiments, workloads and schemes;
* ``experiment <name>`` -- regenerate one paper table/figure (or
  ``all`` of them) through the shared runner: ``--jobs N`` fans
  simulation cells across CPU cores, results are cached on disk under
  ``--cache-dir`` (disable with ``--no-cache``), and a wall-clock /
  cache-hit summary is printed after the tables;
* ``derive --trh N [--k K] [--radius N]`` -- print a Graphene
  configuration for arbitrary parameters;
* ``attack --pattern P --scheme S`` -- run one attack/defense pair on
  the simulator and report flips/refreshes;
* ``trace --workload W --out FILE`` -- generate and save an ACT trace.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.scaling import scheme_factories
from .core.config import GrapheneConfig
from .dram.faults import CouplingProfile
from .experiments import EXPERIMENT_NAMES, load
from .experiments.runner import ExperimentRunner, using_runner
from .mitigations import no_mitigation_factory
from .sim.cache import ResultCache, default_cache_dir
from .sim.simulator import simulate
from .workloads.spec_like import REALISTIC_PROFILES, profile_events
from .workloads.synthetic import SYNTHETIC_PATTERNS, synthetic_events
from .workloads.trace import write_trace

__all__ = ["main", "build_parser"]


def _job_count(text: str) -> int:
    """argparse type for ``--jobs``: non-negative int (0 = all cores)."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = all CPU cores), got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Graphene: Strong yet Lightweight Row "
            "Hammer Protection' (MICRO 2020)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiments/workloads/schemes")

    experiment = commands.add_parser(
        "experiment", help="regenerate one paper table/figure (or all)"
    )
    experiment.add_argument(
        "name", choices=sorted(EXPERIMENT_NAMES) + ["all"],
        help="experiment id, or 'all' for every table/figure",
    )
    experiment.add_argument(
        "--jobs", type=_job_count, default=1, metavar="N",
        help="worker processes for simulation cells "
             "(1 = serial, 0 = all CPU cores; default 1)",
    )
    experiment.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell, bypassing the on-disk result cache",
    )
    experiment.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-graphene)",
    )
    experiment.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job progress lines on stderr",
    )

    derive = commands.add_parser(
        "derive", help="derive a Graphene configuration"
    )
    derive.add_argument("--trh", type=int, default=50_000,
                        help="Row Hammer threshold (default 50000)")
    derive.add_argument("--k", type=int, default=2,
                        help="reset-window divisor (default 2)")
    derive.add_argument("--radius", type=int, default=1,
                        help="blast radius n for +-n protection")
    derive.add_argument("--rows", type=int, default=65536,
                        help="rows per bank (default 65536)")

    attack = commands.add_parser(
        "attack", help="run an attack pattern against a defense"
    )
    attack.add_argument("--pattern", choices=sorted(SYNTHETIC_PATTERNS),
                        default="S3")
    attack.add_argument("--scheme",
                        choices=["none", "para", "cbt", "twice", "graphene"],
                        default="graphene")
    attack.add_argument("--trh", type=int, default=3_000,
                        help="Row Hammer threshold (scaled default 3000)")
    attack.add_argument("--duration-ms", type=float, default=16.0)
    attack.add_argument("--seed", type=int, default=42)

    trace = commands.add_parser(
        "trace", help="generate a workload ACT trace file"
    )
    trace.add_argument("--workload", choices=sorted(REALISTIC_PROFILES),
                       default="mcf")
    trace.add_argument("--duration-ms", type=float, default=4.0)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--out", required=True, help="output path")
    return parser


def _command_list() -> int:
    print("experiments:")
    for name in sorted(EXPERIMENT_NAMES):
        print(f"  {name}")
    print("\nrealistic workloads:")
    for name, profile in REALISTIC_PROFILES.items():
        print(f"  {name:12s} {profile.kind:16s} "
              f"{profile.acts_per_second_per_bank / 1e6:4.1f}M ACT/s/bank")
    print("\nadversarial patterns:", ", ".join(sorted(SYNTHETIC_PATTERNS)))
    print("schemes: none, para, prohit, mrloc, cbt, twice, cra, graphene, "
          "refresh-rate")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    cache = (
        None
        if args.no_cache
        else ResultCache(args.cache_dir or default_cache_dir())
    )
    runner = ExperimentRunner(
        jobs=args.jobs, cache=cache, progress=not args.quiet
    )
    names = (
        sorted(EXPERIMENT_NAMES) if args.name == "all" else [args.name]
    )
    with using_runner(runner):
        for index, name in enumerate(names):
            if len(names) > 1:
                prefix = "\n" if index else ""
                print(f"{prefix}=== {name} ===")
            load(name).main()
    print(f"\n[{runner.stats.summary()}]")
    return 0


def _command_derive(args: argparse.Namespace) -> int:
    coupling = (
        CouplingProfile.adjacent_only()
        if args.radius == 1
        else CouplingProfile.inverse_square(args.radius)
    )
    config = GrapheneConfig(
        hammer_threshold=args.trh,
        reset_window_divisor=args.k,
        rows_per_bank=args.rows,
        coupling=coupling,
    )
    for key, value in config.summary().items():
        print(f"{key:32s} {value}")
    print(f"{'worst_case_energy_increase':32s} "
          f"{100 * config.worst_case_refresh_energy_increase():.3f}%")
    return 0


def _command_attack(args: argparse.Namespace) -> int:
    duration_ns = args.duration_ms * 1e6
    if args.scheme == "none":
        factory = no_mitigation_factory()
    else:
        factory = scheme_factories(args.trh)[args.scheme]
    rows = SYNTHETIC_PATTERNS[args.pattern](65536, args.seed)
    result = simulate(
        synthetic_events(rows, duration_ns=duration_ns),
        factory,
        scheme=args.scheme,
        workload=args.pattern,
        hammer_threshold=args.trh,
        duration_ns=duration_ns,
    )
    print(f"pattern={args.pattern} scheme={args.scheme} "
          f"T_RH={args.trh:,} duration={args.duration_ms:g}ms")
    print(f"  ACTs issued:          {result.acts:,}")
    print(f"  victim refreshes:     {result.victim_refresh_directives:,} "
          f"({result.victim_rows_refreshed:,} rows)")
    print(f"  refresh energy:       +{100 * result.refresh_energy_increase():.3f}%")
    print(f"  bit flips:            {result.bit_flips}")
    return 1 if result.bit_flips else 0


def _command_trace(args: argparse.Namespace) -> int:
    events = profile_events(
        REALISTIC_PROFILES[args.workload],
        duration_ns=args.duration_ms * 1e6,
        seed=args.seed,
    )
    count = write_trace(events, args.out)
    print(f"wrote {count:,} ACT events to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "derive":
        return _command_derive(args)
    if args.command == "attack":
        return _command_attack(args)
    if args.command == "trace":
        return _command_trace(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
