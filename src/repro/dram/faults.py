"""Row Hammer fault model.

This module is the *ground truth* the mitigation schemes are judged
against.  It implements the disturbance abstraction the paper's own
guarantee proof rests on (Sections II-B, III-C, III-D):

* every ACT on an aggressor row deposits charge disturbance on nearby
  victim rows;
* a victim at distance ``i`` receives a fraction ``mu_i`` of the
  disturbance an immediately adjacent victim receives (``mu_1 = 1``,
  ``mu_i`` decreasing with ``i`` -- Section III-D);
* a victim whose accumulated disturbance since its last refresh reaches
  the Row Hammer threshold ``T_RH`` suffers a bit flip;
* any refresh of the victim (regular auto-refresh or a victim-row/NRR
  refresh) restores full charge, i.e. resets the accumulator.

A double-sided attack where both neighbors of one victim each receive
``T_RH / 2`` ACTs therefore flips the victim -- exactly the worst case
the paper sizes ``T`` against (Inequality 2).

The model deliberately has **no false tolerance**: it flips a bit the
moment the threshold is reached, making it a strict adversarial referee
for protection-guarantee tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = ["CouplingProfile", "BitFlip", "HammerFaultModel"]


@dataclass(frozen=True)
class CouplingProfile:
    """Distance-dependent disturbance coefficients ``mu_i``.

    Attributes:
        blast_radius: Farthest distance ``n`` at which an ACT disturbs a
            victim (the paper's "non-adjacent (+-n) Row Hammer").
        coefficients: ``(mu_1, mu_2, ..., mu_n)`` with ``mu_1 == 1``.
    """

    blast_radius: int = 1
    coefficients: tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        if self.blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        if len(self.coefficients) != self.blast_radius:
            raise ValueError(
                "need exactly one coefficient per distance: "
                f"{len(self.coefficients)} given for radius {self.blast_radius}"
            )
        if abs(self.coefficients[0] - 1.0) > 1e-12:
            raise ValueError("mu_1 must be 1.0 by definition")
        previous = float("inf")
        for mu in self.coefficients:
            if not 0.0 < mu <= 1.0:
                raise ValueError(f"coefficients must be in (0, 1], got {mu}")
            if mu > previous + 1e-12:
                raise ValueError("coefficients must be non-increasing with distance")
            previous = mu

    @classmethod
    def adjacent_only(cls) -> "CouplingProfile":
        """The classic +-1 model used in most of the paper."""
        return cls(blast_radius=1, coefficients=(1.0,))

    @classmethod
    def inverse_square(cls, blast_radius: int) -> "CouplingProfile":
        """``mu_i = 1 / i**2`` -- the paper's Section III-D example.

        The amplification factor ``1 + mu_2 + ... + mu_n`` then stays
        below ``pi**2 / 6 ~= 1.64`` for any radius.
        """
        return cls(
            blast_radius=blast_radius,
            coefficients=tuple(1.0 / (i * i) for i in range(1, blast_radius + 1)),
        )

    @classmethod
    def uniform(cls, blast_radius: int) -> "CouplingProfile":
        """``mu_i = 1`` for all distances -- the conservative worst case."""
        return cls(blast_radius=blast_radius, coefficients=(1.0,) * blast_radius)

    def mu(self, distance: int) -> float:
        """Disturbance coefficient for a victim ``distance`` rows away."""
        if distance < 1:
            raise ValueError("distance must be >= 1")
        if distance > self.blast_radius:
            return 0.0
        return self.coefficients[distance - 1]

    @property
    def amplification_factor(self) -> float:
        """``1 + mu_2 + ... + mu_n`` (Section III-D).

        Scales both the required table size and the inverse of ``T`` when
        non-adjacent victims must be protected.
        """
        return sum(self.coefficients)


@dataclass(frozen=True)
class BitFlip:
    """Record of a Row Hammer-induced bit flip in a victim row."""

    bank: int
    row: int
    time_ns: float
    #: Accumulated mu-weighted disturbance when the flip occurred.
    disturbance: float
    #: The aggressor whose ACT pushed the victim over the threshold.
    triggering_aggressor: int


class HammerFaultModel:
    """Per-bank charge-disturbance bookkeeping and bit-flip injection.

    Args:
        threshold: Row Hammer threshold ``T_RH`` -- the mu-weighted ACT
            count a victim must absorb (without an intervening refresh)
            to flip.
        rows: Number of rows in the bank; ACT/refresh row operands are
            validated against it.
        coupling: Distance model for disturbance deposition.
        bank: Flat bank index used only for labelling :class:`BitFlip`
            records.
        flip_once: When True (default) a row reports at most one flip and
            further disturbance on it is ignored, which keeps adversarial
            traces from generating unbounded flip lists.
    """

    def __init__(
        self,
        threshold: float,
        rows: int,
        coupling: CouplingProfile | None = None,
        bank: int = 0,
        flip_once: bool = True,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if rows <= 0:
            raise ValueError("rows must be positive")
        self.threshold = float(threshold)
        self.rows = int(rows)
        self.coupling = coupling or CouplingProfile.adjacent_only()
        self.bank = bank
        self.flip_once = flip_once
        #: Accumulated disturbance per victim row since its last refresh.
        self._disturbance: dict[int, float] = {}
        self._flipped: set[int] = set()
        self.flips: list[BitFlip] = []
        self.activations = 0
        self.refreshes = 0

    # ------------------------------------------------------------------
    # Event entry points
    # ------------------------------------------------------------------

    def on_activate(self, row: int, time_ns: float) -> list[BitFlip]:
        """Record an ACT on ``row``; return any bit flips it caused."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        self.activations += 1
        new_flips: list[BitFlip] = []
        for distance in range(1, self.coupling.blast_radius + 1):
            mu = self.coupling.mu(distance)
            for victim in (row - distance, row + distance):
                if not 0 <= victim < self.rows:
                    continue
                if self.flip_once and victim in self._flipped:
                    continue
                total = self._disturbance.get(victim, 0.0) + mu
                self._disturbance[victim] = total
                if total >= self.threshold:
                    flip = BitFlip(
                        bank=self.bank,
                        row=victim,
                        time_ns=time_ns,
                        disturbance=total,
                        triggering_aggressor=row,
                    )
                    self.flips.append(flip)
                    new_flips.append(flip)
                    if self.flip_once:
                        self._flipped.add(victim)
                        self._disturbance.pop(victim, None)
                    else:
                        self._disturbance[victim] = 0.0
        return new_flips

    def on_refresh(self, row: int) -> None:
        """A refresh of ``row`` restores its charge fully."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        self.refreshes += 1
        self._disturbance.pop(row, None)

    def on_refresh_range(self, rows: Iterable[int]) -> None:
        """Refresh several rows at once (auto-refresh chunks, NRR bursts)."""
        for row in rows:
            self.on_refresh(row)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def disturbance_of(self, row: int) -> float:
        """Current accumulated disturbance of ``row`` (0.0 if clean)."""
        return self._disturbance.get(row, 0.0)

    @property
    def flip_count(self) -> int:
        return len(self.flips)

    @property
    def max_disturbance(self) -> float:
        """Largest outstanding accumulator -- the attack's best progress."""
        return max(self._disturbance.values(), default=0.0)

    def rows_above(self, fraction: float) -> list[int]:
        """Rows whose accumulator exceeds ``fraction * threshold``.

        Handy for visualizing how close an attack came to flipping bits.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        bar = fraction * self.threshold
        return sorted(r for r, d in self._disturbance.items() if d >= bar)

    def headroom(self) -> float:
        """Remaining margin before the closest victim flips, in ACTs."""
        return self.threshold - self.max_disturbance

    def reset(self) -> None:
        """Forget all accumulated state (fresh bank)."""
        self._disturbance.clear()
        self._flipped.clear()
        self.flips.clear()
        self.activations = 0
        self.refreshes = 0
