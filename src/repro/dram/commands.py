"""DRAM command vocabulary.

The simulator speaks the standard DDR4 command set plus the paper's one
protocol extension: **Nearby Row Refresh (NRR)** (Section IV-A).  NRR
names an *aggressor* row; the device refreshes the potentially disturbed
neighbor rows itself, which keeps the aggressor-to-victim mapping (and
any internal row remapping) inside the DRAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["CommandKind", "Command"]


class CommandKind(enum.Enum):
    """The command types the bank state machine understands."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    REFRESH = "REF"
    #: Nearby Row Refresh -- the Graphene protocol extension.  The
    #: operand row is the *aggressor*; the device refreshes its
    #: neighbors out to the configured blast radius.
    NEARBY_ROW_REFRESH = "NRR"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Command:
    """One command as issued by the memory controller to a bank.

    Attributes:
        kind: The command type.
        bank: Flat bank index the command targets (REF targets a rank but
            the simulator tracks refresh per bank for accounting).
        row: Row operand; required for ACT and NRR, ignored otherwise.
        time_ns: Issue time in nanoseconds.
        meta: Free-form annotations (e.g. which mitigation emitted an NRR).
    """

    kind: CommandKind
    bank: int
    time_ns: float
    row: int | None = None
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        needs_row = self.kind in (
            CommandKind.ACTIVATE,
            CommandKind.NEARBY_ROW_REFRESH,
        )
        if needs_row and self.row is None:
            raise ValueError(f"{self.kind} requires a row operand")
        if self.time_ns < 0:
            raise ValueError(f"negative command time {self.time_ns}")

    def describe(self) -> str:
        """Human-readable one-liner, used by trace dumps."""
        row = f" row=0x{self.row:05x}" if self.row is not None else ""
        return f"@{self.time_ns:12.1f}ns bank={self.bank:3d} {self.kind.value}{row}"
