"""SECDED ECC over 64-bit words (the related-work ECC discussion).

Server memory protects each 64-bit word with an (72, 64) Hamming
SECDED code: any single bit error is corrected, any double bit error is
detected (uncorrectable), and three-or-more errors can *miscorrect*
silently.  Cojocar et al. (S&P 2019, cited by the paper) showed Row
Hammer produces enough multi-flips per word to defeat SECDED -- which
is why the paper's position is that Row Hammer must be *prevented*, not
just detected.

This is a real encoder/decoder (Hsiao-style construction: 8 check bits
over 64 data bits, parity-of-everything as the extended bit), not a
probability model, so multi-flip scenarios can be exercised concretely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["EccOutcome", "EccResult", "SecdedCode"]


class EccOutcome(enum.Enum):
    """Decoder verdicts."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED_UNCORRECTABLE = "detected-uncorrectable"
    #: >= 3 flips aliasing to a valid-looking single-bit syndrome: the
    #: decoder "corrects" the wrong bit and corrupts data silently.
    MISCORRECTED = "miscorrected"


@dataclass(frozen=True)
class EccResult:
    """One decode: the data returned and how it was obtained."""

    data: int
    outcome: EccOutcome
    corrected_bit: int | None = None


class SecdedCode:
    """(72, 64) SECDED: 64 data bits + 8 check bits.

    Check bits 0..6 are Hamming parities over data-bit subsets chosen by
    the standard position construction; check bit 7 is overall parity
    (the "extended" bit that separates single from double errors).
    """

    DATA_BITS = 64
    CHECK_BITS = 8
    CODE_BITS = DATA_BITS + CHECK_BITS

    def __init__(self) -> None:
        # Position-based Hamming layout: codeword positions 1..72 with
        # powers of two as check positions; map the remaining positions
        # to data bits in order.
        self._data_positions: list[int] = []
        position = 1
        while len(self._data_positions) < self.DATA_BITS:
            if position & (position - 1) != 0:  # not a power of two
                self._data_positions.append(position)
            position += 1
        #: For each of the 7 Hamming checks, the data-bit indices it covers.
        self._check_masks: list[int] = []
        for check in range(7):
            mask = 0
            for data_index, pos in enumerate(self._data_positions):
                if pos & (1 << check):
                    mask |= 1 << data_index
            self._check_masks.append(mask)
        #: Syndrome (codeword position) -> data bit index.
        self._position_to_data_index = {
            pos: index for index, pos in enumerate(self._data_positions)
        }

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    @staticmethod
    def _parity(value: int) -> int:
        return bin(value).count("1") & 1

    def encode(self, data: int) -> int:
        """Return the 72-bit codeword for a 64-bit data word.

        Layout: bits [0, 64) data, bits [64, 71) Hamming checks,
        bit 71 overall parity.
        """
        if not 0 <= data < (1 << self.DATA_BITS):
            raise ValueError("data must be a 64-bit unsigned value")
        codeword = data
        for check, mask in enumerate(self._check_masks):
            codeword |= self._parity(data & mask) << (self.DATA_BITS + check)
        overall = self._parity(codeword)
        codeword |= overall << (self.CODE_BITS - 1)
        return codeword

    def decode(self, codeword: int) -> EccResult:
        """Decode a possibly corrupted 72-bit codeword."""
        if not 0 <= codeword < (1 << self.CODE_BITS):
            raise ValueError("codeword must be a 72-bit unsigned value")
        data = codeword & ((1 << self.DATA_BITS) - 1)
        syndrome = 0
        for check, mask in enumerate(self._check_masks):
            stored = (codeword >> (self.DATA_BITS + check)) & 1
            if self._parity(data & mask) != stored:
                syndrome |= 1 << check
        overall_error = self._parity(codeword) != 0

        if syndrome == 0 and not overall_error:
            return EccResult(data=data, outcome=EccOutcome.CLEAN)
        if syndrome == 0 and overall_error:
            # The overall parity bit itself flipped; data is intact.
            return EccResult(
                data=data, outcome=EccOutcome.CORRECTED,
                corrected_bit=self.CODE_BITS - 1,
            )
        if not overall_error:
            # Even number of flips with nonzero syndrome: detected.
            return EccResult(
                data=data, outcome=EccOutcome.DETECTED_UNCORRECTABLE
            )
        # Odd flip count with a syndrome: the decoder assumes a single
        # bit error at the position the syndrome names.  With exactly
        # one flip this is right; with >= 3 flips the syndrome may name
        # an innocent bit -> silent miscorrection (exposed by
        # :meth:`transmit`, which compares against ground truth).
        if syndrome in self._position_to_data_index:
            data_index = self._position_to_data_index[syndrome]
            corrected = data ^ (1 << data_index)
            return EccResult(
                data=corrected, outcome=EccOutcome.CORRECTED,
                corrected_bit=data_index,
            )
        if (syndrome & (syndrome - 1)) == 0:
            # Syndrome names a check-bit position: a check bit flipped;
            # the data itself is intact.
            return EccResult(data=data, outcome=EccOutcome.CORRECTED,
                             corrected_bit=None)
        # Syndrome names no valid position: >= 3 flips, detected.
        return EccResult(
            data=data, outcome=EccOutcome.DETECTED_UNCORRECTABLE
        )

    # ------------------------------------------------------------------
    # Experiment helpers
    # ------------------------------------------------------------------

    def transmit(self, data: int, flip_bits: list[int]) -> EccResult:
        """Encode, flip the given codeword bit positions, decode.

        Classifies the outcome against the ground truth, upgrading a
        "corrected" verdict to MISCORRECTED when the returned data does
        not match what was stored -- the silent-failure case multi-flip
        Row Hammer exploits.
        """
        codeword = self.encode(data)
        for bit in flip_bits:
            if not 0 <= bit < self.CODE_BITS:
                raise ValueError(f"bit {bit} outside the 72-bit codeword")
            codeword ^= 1 << bit
        result = self.decode(codeword)
        if (
            result.outcome in (EccOutcome.CLEAN, EccOutcome.CORRECTED)
            and result.data != data
        ):
            return EccResult(
                data=result.data,
                outcome=EccOutcome.MISCORRECTED,
                corrected_bit=result.corrected_bit,
            )
        return result

    def miscorrection_rate(
        self, flips: int, trials: int = 2_000, seed: int = 0
    ) -> dict[str, float]:
        """Monte-Carlo outcome distribution for ``flips`` random flips."""
        rng = np.random.default_rng(seed)
        counts = {outcome: 0 for outcome in EccOutcome}
        for _ in range(trials):
            data = int(rng.integers(0, 1 << 63, dtype=np.int64))
            positions = rng.choice(
                self.CODE_BITS, size=flips, replace=False
            ).tolist()
            result = self.transmit(data, positions)
            counts[result.outcome] += 1
        return {
            outcome.value: count / trials
            for outcome, count in counts.items()
        }
