"""DRAM device model: banks + auto refresh + the fault referee.

:class:`DramBankModel` is the unit of simulation: one bank's state
machine, its distributed-refresh schedule, and the Row Hammer fault
model, kept mutually consistent.  :class:`DramDevice` is a thin
container over all banks of a system.

The device understands the paper's NRR protocol extension natively
(Section IV-A): :meth:`DramBankModel.nearby_row_refresh` takes an
*aggressor* row and refreshes its neighborhood out to the device's
blast radius, so the aggressor-to-victim mapping stays inside the
device, as the paper argues it must (internal remapping).
"""

from __future__ import annotations

from dataclasses import dataclass

from .bank import Bank, BankStats
from .faults import BitFlip, CouplingProfile, HammerFaultModel
from .geometry import DramGeometry
from .refresh import AutoRefreshEngine, RefreshEvent
from .timing import DramTimings

__all__ = ["DramBankModel", "DramDevice"]


class DramBankModel:
    """One protected bank: timing, auto refresh and fault bookkeeping.

    Args:
        bank_id: Flat bank index.
        rows: Rows in the bank.
        timings: DRAM timing bundle.
        hammer_threshold: ``T_RH`` for the fault model.
        coupling: Disturbance-vs-distance profile (defaults to +-1).
        track_faults: Disable to skip fault bookkeeping for pure
            performance/energy runs (large speedup on long traces).
    """

    def __init__(
        self,
        bank_id: int,
        rows: int,
        timings: DramTimings,
        hammer_threshold: float,
        coupling: CouplingProfile | None = None,
        track_faults: bool = True,
    ) -> None:
        self.bank_id = bank_id
        self.rows = rows
        self.timings = timings
        self.coupling = coupling or CouplingProfile.adjacent_only()
        self.bank = Bank(bank_id, rows, timings)
        self.refresh_engine = AutoRefreshEngine(rows, timings)
        self.faults: HammerFaultModel | None = (
            HammerFaultModel(
                threshold=hammer_threshold,
                rows=rows,
                coupling=self.coupling,
                bank=bank_id,
            )
            if track_faults
            else None
        )
        self._clock_ns = 0.0
        self._undrained_refreshes: list[RefreshEvent] = []

    # ------------------------------------------------------------------
    # Time advancement
    # ------------------------------------------------------------------

    def advance_to(self, time_ns: float) -> list["RefreshEvent"]:
        """Process all auto-refresh commands due by ``time_ns``.

        Returns the REF events executed, so the memory controller can
        forward the per-tREFI tick to mitigation engines with periodic
        behavior (TWiCe pruning, PRoHIT's piggybacked refreshes).
        """
        if time_ns < self._clock_ns:
            raise ValueError(
                f"time moved backwards: {time_ns} < {self._clock_ns}"
            )
        processed: list[RefreshEvent] = []
        for event in self.refresh_engine.pop_due(time_ns):
            self.bank.auto_refresh(event.time_ns)
            if self.faults is not None:
                self.faults.on_refresh_range(event.rows)
            processed.append(event)
        self._clock_ns = time_ns
        self._undrained_refreshes.extend(processed)
        return processed

    def drain_refresh_events(self) -> list["RefreshEvent"]:
        """Return (and clear) REF events executed since the last drain.

        ``activate``/``earliest_activate`` advance time implicitly; this
        buffer lets the controller observe every REF tick regardless of
        which call triggered it.
        """
        drained = self._undrained_refreshes
        self._undrained_refreshes = []
        return drained

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def earliest_activate(self, now_ns: float) -> float:
        """First legal ACT time at or after ``now_ns``.

        Accounts for pending auto-refresh commands, including REFs that
        fall *inside* the wait itself: executing the refreshes due by a
        candidate issue time can push the bank's ready time further
        out, so iterate until the candidate is stable.
        """
        candidate = max(now_ns, self._clock_ns)
        while True:
            self.advance_to(candidate)
            legal = self.bank.earliest_activate(candidate)
            if legal <= candidate + 1e-9:
                return candidate
            candidate = legal

    def activate(self, row: int, now_ns: float) -> list[BitFlip]:
        """Execute ACT at ``now_ns``; returns bit flips it caused."""
        self.advance_to(max(now_ns, self._clock_ns))
        self.bank.activate(row, now_ns)
        if self.faults is None:
            return []
        return self.faults.on_activate(row, now_ns)

    def nearby_row_refresh(self, aggressor_row: int, now_ns: float) -> float:
        """Execute NRR for ``aggressor_row``; returns completion time.

        Refreshes every potential victim within the coupling profile's
        blast radius (clipped at bank edges).
        """
        self.advance_to(max(now_ns, self._clock_ns))
        victims = [
            victim
            for distance in range(1, self.coupling.blast_radius + 1)
            for victim in (aggressor_row - distance, aggressor_row + distance)
            if 0 <= victim < self.rows
        ]
        if not victims:
            raise ValueError(
                f"row {aggressor_row} has no in-range victims to refresh"
            )
        done = self.bank.nearby_row_refresh(len(victims), now_ns)
        if self.faults is not None:
            self.faults.on_refresh_range(victims)
        return done

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> BankStats:
        return self.bank.stats

    @property
    def bit_flips(self) -> list[BitFlip]:
        return [] if self.faults is None else self.faults.flips

    @property
    def clock_ns(self) -> float:
        return self._clock_ns


@dataclass
class DramDevice:
    """All banks of a memory system, indexed flat.

    Construct via :meth:`build`; direct instantiation takes a prebuilt
    bank list (useful in tests).
    """

    geometry: DramGeometry
    timings: DramTimings
    banks: list[DramBankModel]

    @classmethod
    def build(
        cls,
        geometry: DramGeometry,
        timings: DramTimings,
        hammer_threshold: float,
        coupling: CouplingProfile | None = None,
        track_faults: bool = True,
    ) -> "DramDevice":
        banks = [
            DramBankModel(
                bank_id=index,
                rows=geometry.rows_per_bank,
                timings=timings,
                hammer_threshold=hammer_threshold,
                coupling=coupling,
                track_faults=track_faults,
            )
            for index in range(geometry.total_banks)
        ]
        return cls(geometry=geometry, timings=timings, banks=banks)

    def bank(self, index: int) -> DramBankModel:
        return self.banks[index]

    def total_stats(self) -> BankStats:
        """Aggregate statistics across every bank."""
        total = BankStats()
        for bank in self.banks:
            total = total.merged_with(bank.stats)
        return total

    def all_bit_flips(self) -> list[BitFlip]:
        flips: list[BitFlip] = []
        for bank in self.banks:
            flips.extend(bank.bit_flips)
        return flips
