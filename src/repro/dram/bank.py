"""Per-bank DRAM state machine with timing enforcement.

The bank tracks the open row, the earliest time each command class may
be issued, and occupancy statistics.  Victim-row refreshes (NRR) follow
the paper's overhead accounting (Section V-B "Methodology"): an NRR that
refreshes ``v`` victim rows blocks the bank for ``v * tRC`` plus a
``tRP`` penalty for the precharge of the bank in question.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timing import DramTimings

__all__ = ["BankStats", "Bank"]


@dataclass
class BankStats:
    """Running counters of everything a bank did."""

    activations: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    auto_refreshes: int = 0
    #: Number of NRR commands received.
    nrr_commands: int = 0
    #: Number of individual rows refreshed by NRR commands.
    nrr_rows_refreshed: int = 0
    #: Total time (ns) the bank was blocked executing NRR refreshes.
    nrr_busy_ns: float = 0.0
    #: Total time (ns) the bank was blocked executing auto-refresh.
    refresh_busy_ns: float = 0.0
    row_buffer_hits: int = 0
    row_buffer_misses: int = 0

    def merged_with(self, other: "BankStats") -> "BankStats":
        """Element-wise sum, for aggregating across banks."""
        return BankStats(
            activations=self.activations + other.activations,
            precharges=self.precharges + other.precharges,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            auto_refreshes=self.auto_refreshes + other.auto_refreshes,
            nrr_commands=self.nrr_commands + other.nrr_commands,
            nrr_rows_refreshed=self.nrr_rows_refreshed + other.nrr_rows_refreshed,
            nrr_busy_ns=self.nrr_busy_ns + other.nrr_busy_ns,
            refresh_busy_ns=self.refresh_busy_ns + other.refresh_busy_ns,
            row_buffer_hits=self.row_buffer_hits + other.row_buffer_hits,
            row_buffer_misses=self.row_buffer_misses + other.row_buffer_misses,
        )


class Bank:
    """One DRAM bank: open-row tracking plus timing bookkeeping.

    The simulator is event-driven rather than cycle-stepped: callers ask
    :meth:`earliest_activate` (etc.) for the first legal issue time and
    then commit the command.  Timing violations raise, which keeps
    scheduler bugs loud in tests.

    Args:
        bank_id: Flat bank index (labelling only).
        rows: Number of rows (row operands validated against it).
        timings: DRAM timing bundle to enforce.
    """

    def __init__(self, bank_id: int, rows: int, timings: DramTimings) -> None:
        if rows <= 0:
            raise ValueError("rows must be positive")
        self.bank_id = bank_id
        self.rows = rows
        self.timings = timings
        self.open_row: int | None = None
        #: Earliest time the next ACT may be issued (tRC from last ACT,
        #: and not before outstanding refresh work completes).
        self._next_act_ns: float = 0.0
        #: Time at which the bank becomes idle (refresh/NRR completion).
        self._busy_until_ns: float = 0.0
        self._last_act_ns: float = float("-inf")
        self.stats = BankStats()

    # ------------------------------------------------------------------
    # Timing queries
    # ------------------------------------------------------------------

    def earliest_activate(self, now_ns: float) -> float:
        """First legal issue time for an ACT at or after ``now_ns``."""
        return max(now_ns, self._next_act_ns, self._busy_until_ns)

    def busy_until(self) -> float:
        """Completion time of outstanding refresh work (0 if idle)."""
        return self._busy_until_ns

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------

    def activate(self, row: int, now_ns: float) -> float:
        """Issue ACT at ``now_ns``; returns the time data can be accessed.

        Raises:
            ValueError: if ``now_ns`` violates tRC or an ongoing refresh.
            IndexError: if ``row`` is out of range.
        """
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        legal = self.earliest_activate(now_ns)
        if now_ns + 1e-9 < legal:
            raise ValueError(
                f"ACT at {now_ns}ns violates timing; earliest legal is {legal}ns"
            )
        self.open_row = row
        self._last_act_ns = now_ns
        self._next_act_ns = now_ns + self.timings.trc
        self.stats.activations += 1
        self.stats.row_buffer_misses += 1
        return now_ns + self.timings.trcd

    def access(self, row: int, now_ns: float, is_write: bool = False) -> bool:
        """Record a column access; returns True on a row-buffer hit.

        The caller is responsible for issuing :meth:`activate` first on a
        miss; this method only updates hit/miss statistics and read/write
        counters for the energy model.
        """
        hit = self.open_row == row
        if hit:
            self.stats.row_buffer_hits += 1
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return hit

    def precharge(self, now_ns: float) -> float:
        """Close the open row; returns when the bank is precharged."""
        self.open_row = None
        self.stats.precharges += 1
        ready = now_ns + self.timings.trp
        self._next_act_ns = max(self._next_act_ns, ready)
        return ready

    def auto_refresh(self, now_ns: float) -> float:
        """Execute one REF command; bank blocked for tRFC."""
        done = max(now_ns, self._busy_until_ns) + self.timings.trfc
        self._busy_until_ns = done
        self.open_row = None
        self.stats.auto_refreshes += 1
        self.stats.refresh_busy_ns += self.timings.trfc
        return done

    def nearby_row_refresh(self, victim_rows: int, now_ns: float) -> float:
        """Execute an NRR refreshing ``victim_rows`` rows.

        Blocks the bank for ``victim_rows * tRC + tRP`` per the paper's
        accounting, and closes the open row (the device precharges the
        bank to perform the internal refreshes).
        """
        if victim_rows <= 0:
            raise ValueError("victim_rows must be positive")
        cost = victim_rows * self.timings.trc + self.timings.trp
        done = max(now_ns, self._busy_until_ns) + cost
        self._busy_until_ns = done
        self.open_row = None
        self.stats.nrr_commands += 1
        self.stats.nrr_rows_refreshed += victim_rows
        self.stats.nrr_busy_ns += cost
        return done
