"""DDR4 timing parameters and derived quantities.

The paper (Table I) anchors its analysis on three JEDEC DDR4 parameters:

============  ===========================================  =========
Parameter     Definition                                   Value
============  ===========================================  =========
``tREFI``     Refresh interval                             7.8 us
``tRFC``      Refresh command time                         350 ns
``tRC``       ACT-to-ACT interval (same bank)              45 ns
============  ===========================================  =========

plus the vendor-specific refresh window ``tREFW`` assumed to be 64 ms.
Table III adds the access timings used by the performance simulation
(tRCD, tRP, tCL = 13.3 ns for DDR4-2400).

All times in this package are expressed in **nanoseconds** as floats.
Derived quantities used throughout the paper's parameter math (Section
III-B) are exposed as properties, most importantly
:attr:`DramTimings.max_activations_per_refresh_window` -- the ``W`` of
Inequality 1, computed as ``tREFW * (1 - tRFC/tREFI) / tRC``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["DramTimings", "DDR4_2400", "NS_PER_MS", "NS_PER_US"]

NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0


@dataclass(frozen=True)
class DramTimings:
    """Bundle of DRAM timing parameters (all values in nanoseconds).

    The defaults reproduce Table I / Table III of the paper (DDR4-2400
    with a 64 ms refresh window).

    Attributes:
        trefi: Average interval between two refresh commands.
        trfc: Time a rank is blocked while executing one refresh command.
        trc: Minimum interval between two ACT commands to the same bank.
        trefw: Refresh window -- every row is refreshed once per ``trefw``.
        trcd: ACT-to-column-command delay.
        trp: Precharge time.
        tcl: CAS latency.
        tbus: Data burst occupancy of the data bus for one access.
    """

    trefi: float = 7.8 * NS_PER_US
    trfc: float = 350.0
    trc: float = 45.0
    trefw: float = 64.0 * NS_PER_MS
    trcd: float = 13.3
    trp: float = 13.3
    tcl: float = 13.3
    tbus: float = 3.33  # BL8 at DDR4-2400: 8 beats / 2.4 GT/s
    trrd: float = 3.3   # ACT-to-ACT, different banks (tRRD_S)
    tfaw: float = 30.0  # four-activate window (rank-level ACT cap)

    def __post_init__(self) -> None:
        for name in ("trefi", "trfc", "trc", "trefw", "trcd", "trp", "tcl"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if self.trfc >= self.trefi:
            raise ValueError(
                "tRFC must be smaller than tREFI; otherwise the bank would "
                f"spend all its time refreshing (tRFC={self.trfc}, "
                f"tREFI={self.trefi})"
            )
        if self.trefi >= self.trefw:
            raise ValueError("tREFI must be smaller than tREFW")

    # ------------------------------------------------------------------
    # Derived quantities used by the paper's parameter derivations.
    # ------------------------------------------------------------------

    @property
    def refresh_duty_factor(self) -> float:
        """Fraction of time a bank is available (not blocked by refresh).

        Equals ``1 - tRFC/tREFI``; the complement is spent executing
        refresh commands.
        """
        return 1.0 - self.trfc / self.trefi

    @property
    def refreshes_per_window(self) -> int:
        """Number of refresh commands issued within one refresh window."""
        return int(self.trefw // self.trefi)

    @property
    def max_activations_per_refresh_window(self) -> int:
        """``W``: the maximum number of ACTs a bank can receive per tREFW.

        This is the paper's ``W = tREFW * (1 - tRFC/tREFI) / tRC``
        (Section III-B, "Configuring N_entry"), evaluating to ~1,360K for
        the default DDR4 parameters.
        """
        return int(self.trefw * self.refresh_duty_factor / self.trc)

    def max_activations_in(self, window_ns: float) -> int:
        """Maximum number of ACTs a bank can receive in ``window_ns``.

        Used for the adjustable reset window of Section IV-C where the
        window is ``tREFW / k``.
        """
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns!r}")
        return int(window_ns * self.refresh_duty_factor / self.trc)

    @property
    def activation_rate_per_ns(self) -> float:
        """Sustained maximum ACT rate of one bank (ACTs per nanosecond)."""
        return self.refresh_duty_factor / self.trc

    @property
    def rank_activation_rate_per_ns(self) -> float:
        """Sustained maximum ACT rate of a whole rank.

        Bounded by the four-activate window (4 ACTs per tFAW) and by
        tRRD; for standard DDR4 parts tFAW is the binding constraint.
        """
        per_faw = 4.0 / self.tfaw
        per_trrd = 1.0 / self.trrd
        return self.refresh_duty_factor * min(per_faw, per_trrd)

    def max_rank_activations_in(self, window_ns: float) -> int:
        """Maximum ACTs an entire rank can receive in ``window_ns``.

        The rank-level analogue of :meth:`max_activations_in`, used by
        the shared-table ablation (one tracker per rank instead of one
        per bank).
        """
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns!r}")
        return int(window_ns * self.rank_activation_rate_per_ns)

    def scaled(self, **overrides: float) -> "DramTimings":
        """Return a copy with selected parameters replaced.

        Convenience for sensitivity studies, e.g.
        ``DDR4_2400.scaled(trefw=32 * NS_PER_MS)``.
        """
        return replace(self, **overrides)

    def row_read_latency(self) -> float:
        """Latency of a row-miss read: ACT + CAS (tRCD + tCL)."""
        return self.trcd + self.tcl

    def row_cycle_floor(self, accesses_per_row: float) -> float:
        """Effective per-access bank occupancy given a row-buffer run length.

        A row that serves ``accesses_per_row`` column accesses occupies the
        bank for at least ``max(tRC, tRCD + accesses * tBUS + tRP)``;
        this helper returns that occupancy divided by the access count.
        """
        if accesses_per_row <= 0:
            raise ValueError("accesses_per_row must be positive")
        occupancy = max(
            self.trc, self.trcd + accesses_per_row * self.tbus + self.trp
        )
        return occupancy / accesses_per_row

    def align_to_trefi(self, time_ns: float) -> float:
        """Next refresh-command boundary at or after ``time_ns``."""
        return math.ceil(time_ns / self.trefi) * self.trefi


#: The default timing set used across the paper's evaluation.
DDR4_2400 = DramTimings()
