"""Time-resolved DRAM power accounting.

The row-count energy model (:mod:`repro.dram.energy`) answers the
paper's metric (relative refresh-energy increase).  This module answers
the adjacent question a memory designer asks: *absolute* power.  It
integrates, per bank over a run:

* background power (precharge/active standby);
* ACT+PRE energy per activation;
* read/write burst energy;
* refresh energy (both the regular schedule and victim refreshes).

Constants follow the Micron DDR4 power-calculation methodology in
spirit: per-operation energies from :class:`~repro.dram.energy.
DramEnergyModel` plus standby power parameters here.  The output is a
:class:`PowerBreakdown` in milliwatts, with the victim-refresh share
isolated so the paper's "nearly zero energy overhead" claim can also be
stated in absolute terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bank import BankStats
from .energy import PAPER_DRAM_ENERGY, DramEnergyModel
from .timing import DDR4_2400, DramTimings

__all__ = ["StandbyPower", "PowerBreakdown", "bank_power"]


@dataclass(frozen=True)
class StandbyPower:
    """Background power parameters for one bank (milliwatts).

    Defaults approximate a DDR4-2400 x8 device's IDD2N/IDD3N split
    scaled per bank; they matter only for the absolute totals, not for
    any relative claim.
    """

    precharge_standby_mw: float = 4.0
    active_standby_mw: float = 6.5

    def __post_init__(self) -> None:
        if self.precharge_standby_mw < 0 or self.active_standby_mw < 0:
            raise ValueError("standby powers must be non-negative")


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power of one bank over a run, by component (mW)."""

    background_mw: float
    activation_mw: float
    access_mw: float
    regular_refresh_mw: float
    victim_refresh_mw: float
    duration_ns: float

    @property
    def total_mw(self) -> float:
        return (
            self.background_mw
            + self.activation_mw
            + self.access_mw
            + self.regular_refresh_mw
            + self.victim_refresh_mw
        )

    @property
    def victim_refresh_share(self) -> float:
        """Victim-refresh power as a share of total power."""
        total = self.total_mw
        return self.victim_refresh_mw / total if total > 0 else 0.0

    @property
    def refresh_increase(self) -> float:
        """Victim / regular refresh power -- the paper's Fig. 8 ratio,
        recovered from the absolute accounting (cross-check)."""
        if self.regular_refresh_mw == 0:
            return 0.0
        return self.victim_refresh_mw / self.regular_refresh_mw

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("background", self.background_mw),
            ("activation (ACT+PRE)", self.activation_mw),
            ("read/write bursts", self.access_mw),
            ("regular refresh", self.regular_refresh_mw),
            ("victim refresh (NRR)", self.victim_refresh_mw),
            ("total", self.total_mw),
        ]


def bank_power(
    stats: BankStats,
    duration_ns: float,
    energy: DramEnergyModel = PAPER_DRAM_ENERGY,
    standby: StandbyPower = StandbyPower(),
    timings: DramTimings = DDR4_2400,
) -> PowerBreakdown:
    """Average power of one bank given its run statistics.

    Args:
        stats: The bank's accumulated counters.
        duration_ns: Run length.
        energy: Per-operation energy constants.
        standby: Background power parameters.
        timings: Used to estimate the active-standby fraction (each ACT
            holds the row open for at least tRC).
    """
    if duration_ns <= 0:
        raise ValueError("duration_ns must be positive")
    seconds = duration_ns / 1e9

    # Background: active standby while rows are open (approximated by
    # ACT occupancy), precharge standby the rest of the time.
    active_fraction = min(
        1.0, stats.activations * timings.trc / duration_ns
    )
    background_mw = (
        active_fraction * standby.active_standby_mw
        + (1.0 - active_fraction) * standby.precharge_standby_mw
    )

    activation_mw = (
        energy.activation_energy_nj(stats.activations) / seconds / 1e6
    )
    access_mw = (
        energy.access_energy_nj(stats.reads, stats.writes) / seconds / 1e6
    )
    # Rows per REF command: ceil, matching AutoRefreshEngine's schedule.
    commands_per_window = max(1, timings.refreshes_per_window)
    rows_per_command = -(-energy.rows_per_bank // commands_per_window)
    regular_rows = stats.auto_refreshes * rows_per_command
    regular_refresh_mw = (
        energy.victim_refresh_energy_nj(regular_rows) / seconds / 1e6
    )
    victim_refresh_mw = (
        energy.victim_refresh_energy_nj(stats.nrr_rows_refreshed)
        / seconds
        / 1e6
    )
    return PowerBreakdown(
        background_mw=background_mw,
        activation_mw=activation_mw,
        access_mw=access_mw,
        regular_refresh_mw=regular_refresh_mw,
        victim_refresh_mw=victim_refresh_mw,
        duration_ns=duration_ns,
    )
