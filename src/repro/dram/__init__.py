"""DDR4 DRAM substrate: timing, geometry, banks, refresh, faults, energy.

This subpackage is the simulated hardware the paper's evaluation runs
on.  It is self-contained (no dependency on the mitigation schemes) so
that the fault model can act as an impartial referee.
"""

from .bank import Bank, BankStats
from .commands import Command, CommandKind
from .device import DramBankModel, DramDevice
from .energy import PAPER_DRAM_ENERGY, DramEnergyModel
from .faults import BitFlip, CouplingProfile, HammerFaultModel
from .geometry import PAPER_SYSTEM_GEOMETRY, BankAddress, DramGeometry
from .refresh import AutoRefreshEngine, RefreshEvent
from .data import CorruptionEvent, RowDataStore
from .ecc import EccOutcome, EccResult, SecdedCode
from .power import PowerBreakdown, StandbyPower, bank_power
from .remap import RemappedBankModel, RowRemapper
from .timing import DDR4_2400, NS_PER_MS, NS_PER_US, DramTimings

__all__ = [
    "Bank",
    "BankStats",
    "Command",
    "CommandKind",
    "DramBankModel",
    "DramDevice",
    "DramEnergyModel",
    "PAPER_DRAM_ENERGY",
    "BitFlip",
    "CouplingProfile",
    "HammerFaultModel",
    "BankAddress",
    "DramGeometry",
    "PAPER_SYSTEM_GEOMETRY",
    "AutoRefreshEngine",
    "RefreshEvent",
    "RowRemapper",
    "RemappedBankModel",
    "RowDataStore",
    "CorruptionEvent",
    "SecdedCode",
    "EccOutcome",
    "EccResult",
    "PowerBreakdown",
    "StandbyPower",
    "bank_power",
    "DDR4_2400",
    "DramTimings",
    "NS_PER_MS",
    "NS_PER_US",
]
