"""Internal row-address remapping (paper Section II-C).

DRAM devices may remap logical row addresses to different physical
locations (post-repair redundancy, vendor scrambling).  Physical
adjacency -- which is what Row Hammer disturbance follows -- then no
longer matches logical adjacency.  The paper raises this against CBT:
its "refresh the counter's row range + 2" trick assumes the 2^l rows
under one counter are physically contiguous; under remapping it would
have to refresh 2x the range to cover all possible victims.

Graphene (and the NRR command) are immune by construction: NRR names
the *aggressor* and the device -- which knows its own mapping --
refreshes the physical neighbors.

:class:`RowRemapper` models the device-internal map; the fault model
and auto-refresh operate in physical space while the controller-side
schemes see only logical addresses.  :func:`remapped_bank_model` builds
a bank whose interface is logical but whose disturbance referee is
physical, for end-to-end experiments (see
``benchmarks/bench_remapping.py``).
"""

from __future__ import annotations

import random
from typing import Sequence

from .device import DramBankModel
from .faults import BitFlip, CouplingProfile
from .timing import DDR4_2400, DramTimings

__all__ = ["RowRemapper", "RemappedBankModel"]


class RowRemapper:
    """Bijective logical->physical row map.

    Args:
        rows: Row count.
        swap_fraction: Fraction of rows participating in pairwise swaps
            (models sparse post-repair remapping; 0 = identity map,
            1 = a full permutation of paired rows).
        seed: RNG seed for the swap selection.
    """

    def __init__(
        self, rows: int, swap_fraction: float = 0.05, seed: int = 0
    ) -> None:
        if rows < 2:
            raise ValueError("rows must be >= 2")
        if not 0.0 <= swap_fraction <= 1.0:
            raise ValueError("swap_fraction outside [0, 1]")
        self.rows = rows
        self.swap_fraction = swap_fraction
        self._to_physical = list(range(rows))
        rng = random.Random(seed)
        swap_count = int(rows * swap_fraction) // 2
        candidates = rng.sample(range(rows), 2 * swap_count)
        for left, right in zip(candidates[::2], candidates[1::2]):
            self._to_physical[left], self._to_physical[right] = (
                self._to_physical[right],
                self._to_physical[left],
            )
        self._to_logical = [0] * rows
        for logical, physical in enumerate(self._to_physical):
            self._to_logical[physical] = logical

    def physical(self, logical_row: int) -> int:
        return self._to_physical[logical_row]

    def logical(self, physical_row: int) -> int:
        return self._to_logical[physical_row]

    def remapped_rows(self) -> list[int]:
        """Logical rows whose physical location differs."""
        return [
            logical
            for logical, physical in enumerate(self._to_physical)
            if logical != physical
        ]

    def breaks_logical_adjacency(self, logical_row: int) -> bool:
        """True if this row's physical neighbors differ from the
        physical locations of its logical neighbors."""
        physical = self.physical(logical_row)
        for offset in (-1, 1):
            neighbor_physical = physical + offset
            if not 0 <= neighbor_physical < self.rows:
                continue
            if abs(self.logical(neighbor_physical) - logical_row) != 1:
                return True
        return False


class RemappedBankModel:
    """A bank with an internal remap: logical interface, physical faults.

    The controller issues commands in *logical* space.  ACT disturbance
    lands on *physical* neighbors.  Two refresh semantics are exposed:

    * :meth:`nrr_logical` -- what a scheme that believes in logical
      adjacency achieves: it refreshes the physical locations of the
      *logical* neighborhood (potentially the wrong rows);
    * :meth:`nrr_device` -- the paper's NRR: the device refreshes the
      *physical* neighborhood of the aggressor (always the right rows).
    """

    def __init__(
        self,
        rows: int,
        hammer_threshold: float,
        remapper: RowRemapper,
        timings: DramTimings = DDR4_2400,
        coupling: CouplingProfile | None = None,
    ) -> None:
        if remapper.rows != rows:
            raise ValueError("remapper row count mismatch")
        self.remapper = remapper
        self._bank = DramBankModel(
            bank_id=0,
            rows=rows,
            timings=timings,
            hammer_threshold=hammer_threshold,
            coupling=coupling,
        )

    def activate(self, logical_row: int, time_ns: float) -> list[BitFlip]:
        """ACT a logical row; disturbance hits physical neighbors."""
        return self._bank.activate(
            self.remapper.physical(logical_row), time_ns
        )

    def earliest_activate(self, now_ns: float) -> float:
        return self._bank.earliest_activate(now_ns)

    def nrr_logical(
        self, logical_victims: Sequence[int], now_ns: float
    ) -> None:
        """Refresh the physical rows backing a *logical* victim list --
        what a controller-side scheme assuming logical adjacency does."""
        physical = [self.remapper.physical(v) for v in logical_victims]
        self._bank.bank.nearby_row_refresh(len(physical), now_ns)
        if self._bank.faults is not None:
            self._bank.faults.on_refresh_range(physical)

    def nrr_device(self, logical_aggressor: int, now_ns: float) -> None:
        """The paper's NRR: device-side refresh of the aggressor's
        *physical* neighborhood (correct under any mapping)."""
        self._bank.nearby_row_refresh(
            self.remapper.physical(logical_aggressor), now_ns
        )

    @property
    def bit_flips(self) -> list[BitFlip]:
        return self._bank.bit_flips

    def flipped_logical_rows(self) -> list[int]:
        """Flipped rows translated back to logical addresses."""
        return sorted(
            self.remapper.logical(flip.row) for flip in self.bit_flips
        )
