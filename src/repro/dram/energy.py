"""DRAM-side energy model.

Constants follow Table V of the paper (sourced from the Micron DDR4
system-power calculator):

* one ACT + PRE pair costs 11.49 nJ;
* the regular refreshes of one bank over one tREFW cost 1.08e6 nJ.

The evaluation's energy metric (Figures 8 and 9) is the *increase of
refresh energy*: extra victim-row refreshes relative to the regular
refresh energy over the same period.  Because every refreshed row costs
the same, this equals ``extra_rows_refreshed / rows_refreshed_normally``
-- which is how :meth:`DramEnergyModel.refresh_energy_increase` computes
it, with the absolute-energy helpers available for reports.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramEnergyModel", "PAPER_DRAM_ENERGY"]


@dataclass(frozen=True)
class DramEnergyModel:
    """Energy constants for one DRAM bank (all energies in nJ).

    Attributes:
        act_pre_nj: Energy of a single ACT + PRE pair.
        refresh_per_window_nj: Energy of the regular refreshes of one
            bank over one tREFW.
        rows_per_bank: Row count, used to derive per-row refresh energy.
        read_nj: Energy of one column read burst.
        write_nj: Energy of one column write burst.
    """

    act_pre_nj: float = 11.49
    refresh_per_window_nj: float = 1.08e6
    rows_per_bank: int = 65536
    read_nj: float = 4.74
    write_nj: float = 5.24

    def __post_init__(self) -> None:
        if self.act_pre_nj <= 0 or self.refresh_per_window_nj <= 0:
            raise ValueError("energies must be positive")
        if self.rows_per_bank <= 0:
            raise ValueError("rows_per_bank must be positive")

    @property
    def refresh_per_row_nj(self) -> float:
        """Energy to refresh a single row (~16.5 nJ at the defaults)."""
        return self.refresh_per_window_nj / self.rows_per_bank

    def activation_energy_nj(self, activations: int) -> float:
        """Energy of ``activations`` ACT+PRE pairs."""
        if activations < 0:
            raise ValueError("activations must be non-negative")
        return activations * self.act_pre_nj

    def access_energy_nj(self, reads: int, writes: int) -> float:
        """Energy of column accesses (excludes ACT/PRE)."""
        if reads < 0 or writes < 0:
            raise ValueError("access counts must be non-negative")
        return reads * self.read_nj + writes * self.write_nj

    def victim_refresh_energy_nj(self, rows_refreshed: int) -> float:
        """Energy of ``rows_refreshed`` victim-row refreshes."""
        if rows_refreshed < 0:
            raise ValueError("rows_refreshed must be non-negative")
        return rows_refreshed * self.refresh_per_row_nj

    def normal_refresh_energy_nj(self, windows: float) -> float:
        """Regular refresh energy of one bank over ``windows`` tREFWs."""
        if windows < 0:
            raise ValueError("windows must be non-negative")
        return windows * self.refresh_per_window_nj

    def refresh_energy_increase(
        self, extra_rows_refreshed: int, windows: float
    ) -> float:
        """Fractional increase of refresh energy (the Fig. 8/9 metric).

        Args:
            extra_rows_refreshed: Victim rows refreshed beyond the
                regular schedule during the measured period.
            windows: Measured period expressed in refresh windows.

        Returns:
            ``extra refresh energy / normal refresh energy`` over the
            period; multiply by 100 for the paper's percentages.
        """
        if windows <= 0:
            raise ValueError("windows must be positive")
        extra = self.victim_refresh_energy_nj(extra_rows_refreshed)
        return extra / self.normal_refresh_energy_nj(windows)


#: Constants as reported in Table V.
PAPER_DRAM_ENERGY = DramEnergyModel()
