"""DRAM organization: channels, ranks, banks, rows, and address mapping.

The paper's evaluation system (Table III) is a 4-channel DDR4-2400 setup
with one rank per channel and 16 banks per rank, 128 GB total.  Graphene
maintains one counter table *per bank*, so bank-level geometry is the
unit the rest of this package cares about; row counts per bank determine
address field widths in the area model (Section IV-B: 64K rows -> 16
address bits per CAM entry).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = ["DramGeometry", "BankAddress", "PAPER_SYSTEM_GEOMETRY"]


@dataclass(frozen=True, order=True)
class BankAddress:
    """Fully qualified bank coordinates within the memory system."""

    channel: int
    rank: int
    bank: int

    def flat_index(self, geometry: "DramGeometry") -> int:
        """Dense index of this bank in ``range(geometry.total_banks)``."""
        return (
            self.channel * geometry.ranks_per_channel + self.rank
        ) * geometry.banks_per_rank + self.bank


@dataclass(frozen=True)
class DramGeometry:
    """Static shape of the simulated memory system.

    Attributes:
        channels: Number of independent memory channels.
        ranks_per_channel: Ranks per channel (paper: 1).
        banks_per_rank: Banks per rank (DDR4: 16).
        rows_per_bank: Rows per bank (paper's area math uses 64K).
        columns_per_row: Column (cache-line) slots per row; only used by
            the row-buffer-locality model in the performance simulator.
    """

    channels: int = 4
    ranks_per_channel: int = 1
    banks_per_rank: int = 16
    rows_per_bank: int = 65536
    columns_per_row: int = 128

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "ranks_per_channel",
            "banks_per_rank",
            "rows_per_bank",
            "columns_per_row",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{name} must be a positive int, got {value!r}")

    @property
    def total_ranks(self) -> int:
        return self.channels * self.ranks_per_channel

    @property
    def total_banks(self) -> int:
        return self.total_ranks * self.banks_per_rank

    @property
    def row_address_bits(self) -> int:
        """Bits needed to name one row in a bank (16 for 64K rows)."""
        return max(1, math.ceil(math.log2(self.rows_per_bank)))

    def iter_banks(self) -> Iterator[BankAddress]:
        """Yield every bank address in the system in flat order."""
        for channel in range(self.channels):
            for rank in range(self.ranks_per_channel):
                for bank in range(self.banks_per_rank):
                    yield BankAddress(channel, rank, bank)

    def bank_from_flat(self, index: int) -> BankAddress:
        """Inverse of :meth:`BankAddress.flat_index`."""
        if not 0 <= index < self.total_banks:
            raise IndexError(
                f"bank index {index} out of range [0, {self.total_banks})"
            )
        bank = index % self.banks_per_rank
        index //= self.banks_per_rank
        rank = index % self.ranks_per_channel
        channel = index // self.ranks_per_channel
        return BankAddress(channel, rank, bank)

    def validate_row(self, row: int) -> int:
        """Check that ``row`` is a legal row index and return it."""
        if not 0 <= row < self.rows_per_bank:
            raise IndexError(
                f"row {row} out of range [0, {self.rows_per_bank})"
            )
        return row

    def neighbors(self, row: int, distance: int = 1) -> list[int]:
        """Rows within ``distance`` of ``row`` (excluding ``row`` itself).

        These are the potential Row Hammer victims of an aggressor at
        ``row`` under the non-adjacent (+-n) model of Section III-D; rows
        that would fall off either edge of the bank are clipped.
        """
        if distance < 1:
            raise ValueError(f"distance must be >= 1, got {distance}")
        self.validate_row(row)
        result = []
        for offset in range(-distance, distance + 1):
            if offset == 0:
                continue
            candidate = row + offset
            if 0 <= candidate < self.rows_per_bank:
                result.append(candidate)
        return result


#: Geometry of the paper's evaluated system (Table III).
PAPER_SYSTEM_GEOMETRY = DramGeometry()
