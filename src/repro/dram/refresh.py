"""Auto-refresh engine.

DDR4 refresh is distributed: the memory controller issues one REF
command every tREFI, and the device refreshes an implementation-chosen
chunk of rows per command such that every row is visited once per tREFW
(Section II-A).  With 64K rows, tREFW = 64 ms and tREFI = 7.8 us this is
8 rows per command across 8192 commands.

The engine produces the (time, rows) schedule; the simulator feeds the
rows into the fault model (restoring victim charge) and charges tRFC of
bank-blocked time per command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .timing import DramTimings

__all__ = ["RefreshEvent", "AutoRefreshEngine"]


@dataclass(frozen=True)
class RefreshEvent:
    """One REF command: ``rows`` are refreshed starting at ``time_ns``."""

    time_ns: float
    first_row: int
    row_count: int

    @property
    def rows(self) -> range:
        return range(self.first_row, self.first_row + self.row_count)


class AutoRefreshEngine:
    """Generates the per-bank distributed refresh schedule.

    Args:
        rows: Rows in the bank.
        timings: Timing bundle; tREFI/tREFW define the schedule.
        start_ns: Time of the first REF command (defaults to one tREFI).
    """

    def __init__(
        self, rows: int, timings: DramTimings, start_ns: float | None = None
    ) -> None:
        if rows <= 0:
            raise ValueError("rows must be positive")
        self.rows = rows
        self.timings = timings
        self.commands_per_window = timings.refreshes_per_window
        if self.commands_per_window <= 0:
            raise ValueError("tREFW must cover at least one tREFI")
        # Ceil so the full row space is covered even when rows does not
        # divide evenly; the final command of a window simply wraps less.
        self.rows_per_command = -(-rows // self.commands_per_window)
        self._next_time_ns = timings.trefi if start_ns is None else start_ns
        self._pointer = 0
        self.commands_issued = 0

    @property
    def next_time_ns(self) -> float:
        """Issue time of the next REF command."""
        return self._next_time_ns

    def row_refresh_period_ns(self, row: int) -> float:
        """Interval between two refreshes of the same row (== tREFW)."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        return self.timings.trefi * self.commands_per_window

    def pop_due(self, until_ns: float) -> Iterator[RefreshEvent]:
        """Yield (and consume) every REF command due by ``until_ns``."""
        while self._next_time_ns <= until_ns:
            first = self._pointer
            count = min(self.rows_per_command, self.rows - first)
            yield RefreshEvent(
                time_ns=self._next_time_ns, first_row=first, row_count=count
            )
            self._pointer = (first + count) % self.rows
            self._next_time_ns += self.timings.trefi
            self.commands_issued += 1

    def peek_rows_for_next(self) -> range:
        """Rows the next REF command will refresh (schedule preview)."""
        count = min(self.rows_per_command, self.rows - self._pointer)
        return range(self._pointer, self._pointer + count)

    def rows_refreshed_per_window(self) -> int:
        """Rows refreshed by regular refresh over one tREFW.

        This is the denominator of the paper's "increase of refresh
        energy" metric: extra victim-row refreshes are reported relative
        to this count (Figures 8 and 9).
        """
        return self.rows
