"""Stored-data modeling: from abstract bit flips to corrupted words.

The fault referee (:mod:`repro.dram.faults`) decides *that* a victim
row flips; this layer decides *what that does to data*: which word and
bit are corrupted, and whether an ECC layer catches it.  It backs the
end-to-end exploit demonstrations (attacker flips a bit in a victim's
page) and the ECC discussion from the paper's related work (Cojocar et
al. showed multi-flip Row Hammer defeats SECDED ECC; a Row Hammer
*prevention* scheme like Graphene is needed precisely because ECC is
not a sufficient defense).

The store is sparse: only written rows hold data, and a row's content
is a numpy array of 64-bit words.  Flips target word/bit positions
drawn deterministically from the flip event, so runs are reproducible.
"""

from __future__ import annotations

import numpy as np

from .faults import BitFlip

__all__ = ["RowDataStore", "CorruptionEvent"]


class CorruptionEvent:
    """Record of one data corruption caused by a Row Hammer flip."""

    __slots__ = ("row", "word_index", "bit_index", "before", "after",
                 "time_ns")

    def __init__(self, row: int, word_index: int, bit_index: int,
                 before: int, after: int, time_ns: float) -> None:
        self.row = row
        self.word_index = word_index
        self.bit_index = bit_index
        self.before = before
        self.after = after
        self.time_ns = time_ns

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CorruptionEvent(row={self.row}, word={self.word_index}, "
            f"bit={self.bit_index})"
        )


class RowDataStore:
    """Sparse per-row data with Row Hammer corruption application.

    Args:
        rows: Rows in the bank.
        words_per_row: 64-bit words per row (8 KB rows -> 1024 words).
    """

    def __init__(self, rows: int, words_per_row: int = 1024) -> None:
        if rows < 1 or words_per_row < 1:
            raise ValueError("rows and words_per_row must be >= 1")
        self.rows = rows
        self.words_per_row = words_per_row
        self._data: dict[int, np.ndarray] = {}
        self.corruptions: list[CorruptionEvent] = []

    # ------------------------------------------------------------------
    # Normal access
    # ------------------------------------------------------------------

    def write_row(self, row: int, words: np.ndarray | list[int]) -> None:
        """Store a full row image."""
        self._check_row(row)
        array = np.asarray(words, dtype=np.uint64)
        if array.shape != (self.words_per_row,):
            raise ValueError(
                f"row image must have {self.words_per_row} words, got "
                f"{array.shape}"
            )
        self._data[row] = array.copy()

    def fill_row(self, row: int, pattern: int = 0x5555_5555_5555_5555) -> None:
        """Store a constant test pattern (rowhammer-test style)."""
        self._check_row(row)
        self._data[row] = np.full(
            self.words_per_row, pattern, dtype=np.uint64
        )

    def read_word(self, row: int, word_index: int) -> int:
        self._check_row(row)
        if not 0 <= word_index < self.words_per_row:
            raise IndexError(f"word {word_index} out of range")
        array = self._data.get(row)
        if array is None:
            raise KeyError(f"row {row} holds no data")
        return int(array[word_index])

    def row_image(self, row: int) -> np.ndarray:
        self._check_row(row)
        array = self._data.get(row)
        if array is None:
            raise KeyError(f"row {row} holds no data")
        return array.copy()

    def holds_data(self, row: int) -> bool:
        return row in self._data

    # ------------------------------------------------------------------
    # Corruption
    # ------------------------------------------------------------------

    def apply_flip(self, flip: BitFlip) -> CorruptionEvent | None:
        """Apply a referee bit flip to stored data (if the row is used).

        The corrupted word/bit are derived deterministically from the
        flip's coordinates so identical runs corrupt identical bits.
        """
        array = self._data.get(flip.row)
        if array is None:
            return None
        # Deterministic across processes (hash() is salted per run).
        mix = (flip.row * 2_654_435_761 + int(flip.time_ns) * 40_503) & 0xFFFFFFFF
        word_index = mix % self.words_per_row
        bit_index = (mix // 97) % 64
        before = int(array[word_index])
        after = before ^ (1 << bit_index)
        array[word_index] = np.uint64(after)
        event = CorruptionEvent(
            row=flip.row,
            word_index=word_index,
            bit_index=bit_index,
            before=before,
            after=after,
            time_ns=flip.time_ns,
        )
        self.corruptions.append(event)
        return event

    def apply_flips(self, flips: list[BitFlip]) -> list[CorruptionEvent]:
        return [e for f in flips if (e := self.apply_flip(f)) is not None]

    def verify_pattern(
        self, row: int, pattern: int = 0x5555_5555_5555_5555
    ) -> list[int]:
        """Word indices whose content deviates from the fill pattern."""
        image = self.row_image(row)
        return np.nonzero(image != np.uint64(pattern))[0].tolist()

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
