"""Common interface for all Row Hammer mitigation schemes.

Every scheme the paper compares (Graphene, PARA, PRoHIT, MRLoc, CBT,
TWiCe, plus the related-work CRA and a null baseline) is modeled as a
per-bank :class:`MitigationEngine`.  The memory controller reports
every ACT to the engine and receives :class:`RefreshDirective` objects
naming rows that must be victim-refreshed immediately; schemes with
periodic behavior (TWiCe pruning, PRoHIT's piggybacked refreshes) also
get a callback on every regular REF command.

Keeping a single interface is what lets one simulator harness produce
all of Figures 8 and 9 by swapping factories.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = [
    "RefreshDirective",
    "MitigationStats",
    "MitigationEngine",
    "MitigationFactory",
]


@dataclass(frozen=True)
class RefreshDirective:
    """An order to victim-refresh specific rows, right now.

    Attributes:
        bank: Flat bank index.
        victim_rows: Rows to refresh.  May be a ``range`` for schemes
            that refresh contiguous regions (CBT), or a tuple for
            neighborhood refreshes; only ``len`` and iteration are used.
        time_ns: When the triggering event occurred.
        aggressor_row: The suspected aggressor, when the scheme knows it
            (None for CBT's region refreshes).
        reason: Free-form label ("threshold", "probabilistic", ...).
    """

    bank: int
    victim_rows: Sequence[int]
    time_ns: float
    aggressor_row: int | None = None
    reason: str = "threshold"

    @property
    def row_count(self) -> int:
        return len(self.victim_rows)


@dataclass
class MitigationStats:
    """Counters every engine maintains, the basis of all overhead plots."""

    activations: int = 0
    refresh_directives: int = 0
    rows_refreshed: int = 0
    #: Largest single directive, to expose burstiness (CBT's weakness).
    largest_directive_rows: int = 0

    def record(self, directives: Sequence[RefreshDirective]) -> None:
        for directive in directives:
            self.refresh_directives += 1
            self.rows_refreshed += directive.row_count
            if directive.row_count > self.largest_directive_rows:
                self.largest_directive_rows = directive.row_count


class MitigationEngine(abc.ABC):
    """Per-bank Row Hammer mitigation scheme.

    Subclasses implement :meth:`_process_activation`; the public
    :meth:`on_activate` wraps it with shared statistics bookkeeping.
    """

    #: Human-readable scheme name; subclasses override.
    name: str = "abstract"

    def __init__(self, bank: int, rows: int) -> None:
        if rows < 2:
            raise ValueError("a bank needs at least 2 rows to have victims")
        self.bank = bank
        self.rows = rows
        self.stats = MitigationStats()

    # ------------------------------------------------------------------
    # Event entry points (called by the memory controller)
    # ------------------------------------------------------------------

    def on_activate(self, row: int, time_ns: float) -> list[RefreshDirective]:
        """Report one ACT; returns victim-refresh directives."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        self.stats.activations += 1
        directives = self._process_activation(row, time_ns)
        self.stats.record(directives)
        return directives

    def on_refresh_command(self, time_ns: float) -> list[RefreshDirective]:
        """Hook invoked at every regular REF command (default: no-op)."""
        directives = self._process_refresh_command(time_ns)
        self.stats.record(directives)
        return directives

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        """Scheme-specific reaction to one ACT."""

    def _process_refresh_command(
        self, time_ns: float
    ) -> list[RefreshDirective]:
        """Scheme-specific reaction to a REF command (default none)."""
        return []

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def neighbors_of(self, row: int, radius: int = 1) -> tuple[int, ...]:
        """Rows within ``radius`` of ``row``, clipped at bank edges."""
        return tuple(
            victim
            for distance in range(1, radius + 1)
            for victim in (row - distance, row + distance)
            if 0 <= victim < self.rows
        )

    def table_bits(self) -> int:
        """Tracking-state footprint in bits (0 for stateless schemes)."""
        return 0

    def describe(self) -> str:
        """One-line configuration summary for experiment logs."""
        return f"{self.name}(bank={self.bank})"


#: A factory builds one engine per bank: ``factory(bank_id, rows)``.
MitigationFactory = Callable[[int, int], MitigationEngine]
