"""ABACuS: all-bank activation counters (Olgun et al., USENIX Sec 2024).

ABACuS (arXiv 2310.09977) keeps ONE activation-counter table per rank,
indexed by **row ID**, shared by every bank -- exploiting the
observation that workloads activate the same row address in many banks
near-simultaneously, so per-bank tables mostly store duplicates.  Each
entry pairs a Row Activation Counter (RAC) with a Sibling Activation
Vector (SAV), one bit per bank:

* an ACT from bank ``b`` whose SAV bit is **clear** just sets the bit
  (a sibling catching up -- no count);
* an ACT from bank ``b`` whose SAV bit is **set** increments the RAC
  and resets the SAV to ``{b}`` (bank ``b`` pulled ahead -- everyone
  else must catch up again before their next ACT counts).

This "sibling activation count" trick keeps ``RAC >= max_b c_b - 1``
(any bank's true count exceeds the RAC by at most one), so triggering
a victim refresh in *every* bank each time the RAC crosses a multiple
of ``T - 1`` bounds every per-bank gap by ``T`` -- the same guarantee
Graphene proves per bank, at roughly ``1/banks`` the counter storage.

The table itself is Misra-Gries, like Graphene's (insert at
``spillover + 1``, evict the smallest-row entry sitting exactly at the
spillover floor), but sized against the *rank-wide* ACT budget: every
ACT in the window adds at most one unit of count mass (a RAC increment
or a spillover bump), so Lemma 2's ``spillover <= W_total/(N+1)``
argument transfers with ``W_total = banks x W_bank``.  Out-of-domain
streams (more ACTs than the configured budget) are still safe: an
entry inserted already at-or-past the trigger threshold refreshes
immediately rather than waiting for the next exact multiple.

Cross-bank sharing is what makes ABACuS the adversarial example for
the fast path: one tracking structure fed by every bank breaks the
per-bank lane-sharding assumption, which is why the fast kernel
declares ``cross_bank=True`` (see ``repro.core.fast_kernels``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.config import GrapheneConfig
from ..dram.timing import DDR4_2400, DramTimings
from .base import MitigationEngine, MitigationFactory, RefreshDirective

__all__ = [
    "AbacusEntry",
    "AbacusState",
    "AbacusMitigation",
    "abacus_factory",
]

#: Default bank count the shared table is sized for when the factory
#: cannot see the device geometry (one DDR4 rank).  Oversizing is safe
#: (more tracked rows, never fewer triggers), so the default protects
#: any device with at most this many banks.
DEFAULT_TOTAL_BANKS = 16


@dataclass
class AbacusEntry:
    """One shared-table entry: row activation counter + sibling vector."""

    rac: int
    sav: int  # bitmask, bit b == bank b activated since the last RAC bump


@dataclass
class AbacusStateStats:
    """Shared-table tallies (per-bank protocol stats live on engines)."""

    observations: int = 0
    rac_increments: int = 0
    sav_sets: int = 0
    insertions: int = 0
    evictions: int = 0
    spillover_increments: int = 0
    window_resets: int = 0
    triggers: int = 0
    insert_triggers: int = 0
    extra: dict = field(default_factory=dict)


class AbacusState:
    """The rank-level shared counter table all banks feed.

    Args:
        threshold: RAC trigger period ``T_abacus`` (Graphene's tracking
            threshold minus one -- the SAV trick's off-by-one headroom).
        window_ns: Reset window (``tREFW / k``); the table and spillover
            clear lazily on the first ACT of each new window.
        num_entries: Misra-Gries capacity, sized against the rank-wide
            ACT budget (Inequality 1 with ``W_total``).
    """

    def __init__(self, threshold: int, window_ns: float, num_entries: int):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        if num_entries < 1:
            raise ValueError(f"num_entries must be >= 1, got {num_entries}")
        self.threshold = threshold
        self.window_ns = window_ns
        self.num_entries = num_entries
        self.entries: dict[int, AbacusEntry] = {}
        self.spillover = 0
        self.current_window = 0
        self.registered_banks: list[int] = []
        self.stats = AbacusStateStats()
        #: Fault-injection seam for the adversarial harness: a positive
        #: offset re-creates the classic Misra-Gries off-by-one (insert
        #: at ``spillover`` instead of ``spillover + 1``), which
        #: undercounts churned rows and must be caught by the gap
        #: oracle.  Production value is 0.
        self.insert_offset = 0

    def register_bank(self, bank: int) -> None:
        """Record a bank attaching to this table (directive fan-out set)."""
        if bank not in self.registered_banks:
            self.registered_banks.append(bank)
            self.registered_banks.sort()

    def observe(self, bank: int, row: int, time_ns: float) -> bool:
        """Feed one ACT; returns True when a victim refresh must fire."""
        if time_ns < 0:
            raise ValueError("time must be non-negative")
        self._maybe_reset(time_ns)
        self.stats.observations += 1
        bit = 1 << bank
        entry = self.entries.get(row)
        if entry is not None:
            if entry.sav & bit:
                entry.rac += 1
                entry.sav = bit
                self.stats.rac_increments += 1
                if entry.rac % self.threshold == 0:
                    self.stats.triggers += 1
                    return True
                return False
            entry.sav |= bit
            self.stats.sav_sets += 1
            return False
        # Misra-Gries miss handling on the shared table.
        if len(self.entries) < self.num_entries:
            self.entries[row] = AbacusEntry(rac=1, sav=bit)
            self.stats.insertions += 1
            return self._insert_trigger(1)
        replaceable = [
            r for r, e in self.entries.items() if e.rac == self.spillover
        ]
        if replaceable:
            del self.entries[min(replaceable)]
            self.stats.evictions += 1
            rac = max(1, self.spillover + 1 - self.insert_offset)
            self.entries[row] = AbacusEntry(rac=rac, sav=bit)
            self.stats.insertions += 1
            return self._insert_trigger(rac)
        self.spillover += 1
        self.stats.spillover_increments += 1
        return False

    def _insert_trigger(self, rac: int) -> bool:
        """Trigger policy for a freshly inserted entry.

        Exact multiples trigger as usual.  Additionally, an entry born
        at or past the threshold triggers immediately: spillover can
        exceed ``T_abacus`` on out-of-domain streams, and waiting for
        the next exact multiple would let the inserted row skip one
        whole trigger period.  In-domain (Lemma-2-sized) streams keep
        ``spillover < T_abacus`` so this conservative arm never fires.
        """
        if rac % self.threshold == 0 or rac >= self.threshold:
            self.stats.triggers += 1
            if rac % self.threshold != 0:
                self.stats.insert_triggers += 1
            return True
        return False

    def _maybe_reset(self, time_ns: float) -> None:
        window = int(time_ns // self.window_ns)
        if window != self.current_window:
            if window < self.current_window:
                raise ValueError(
                    f"time moved backwards across windows: window {window} "
                    f"after window {self.current_window}"
                )
            self.entries.clear()
            self.spillover = 0
            self.stats.window_resets += 1
            self.current_window = window

    def tracked(self) -> dict[int, tuple[int, int]]:
        """row -> (rac, sav) snapshot of the shared table."""
        return {row: (e.rac, e.sav) for row, e in self.entries.items()}

    def table_bits(self, rows_per_bank: int, banks: int) -> int:
        address_bits = max(1, math.ceil(math.log2(max(2, rows_per_bank))))
        count_bits = 16  # the paper's RAC width
        return self.num_entries * (address_bits + count_bits + banks)


class AbacusMitigation(MitigationEngine):
    """One bank's view onto the shared ABACuS table.

    Every bank engine forwards its ACTs into the same
    :class:`AbacusState`; when the shared RAC crosses a trigger
    multiple, the *activating* engine emits one directive per
    registered bank -- the row neighborhood is refreshed everywhere,
    because the shared counter cannot tell which sibling bank's copy
    is the dangerous one.
    """

    name = "abacus"

    def __init__(
        self,
        bank: int,
        rows: int,
        state: AbacusState,
        blast_radius: int = 1,
    ) -> None:
        super().__init__(bank, rows)
        self.state = state
        self.blast_radius = blast_radius
        state.register_bank(bank)

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        if not self.state.observe(self.bank, row, time_ns):
            return []
        victims = self.neighbors_of(row, self.blast_radius)
        return [
            RefreshDirective(
                bank=bank,
                victim_rows=victims,
                time_ns=time_ns,
                aggressor_row=row,
                reason="abacus-rac",
            )
            for bank in self.state.registered_banks
        ]

    def table_bits(self) -> int:
        banks = max(1, len(self.state.registered_banks))
        # The shared table is counted once per rank; report each bank's
        # share so per-bank sums match the physical budget.
        return self.state.table_bits(self.rows, banks) // banks

    def describe(self) -> str:
        return (
            f"abacus(T_abacus={self.state.threshold}, "
            f"entries={self.state.num_entries}, "
            f"banks={len(self.state.registered_banks)})"
        )


def _sized_entries(total_activations: int, threshold: int) -> int:
    """Inequality 1 against the rank-wide budget: N > W_total/T - 1."""
    minimum = math.floor(total_activations / threshold - 1) + 1
    if minimum <= total_activations / threshold - 1:
        minimum += 1
    return max(1, minimum)


def abacus_factory(
    hammer_threshold: int,
    timings: DramTimings = DDR4_2400,
    reset_window_divisor: int = 2,
    total_banks: int = DEFAULT_TOTAL_BANKS,
    num_entries: int | None = None,
    blast_radius: int | None = None,
) -> MitigationFactory:
    """Factory wiring every built bank engine to ONE shared table.

    A fresh :class:`AbacusState` is created whenever bank 0 is built,
    and subsequent banks attach to it -- matching how ``simulate`` and
    the fast-path builders construct engines (bank 0 first, ascending).
    Reusing one factory across runs is therefore safe as long as each
    run builds its engines starting from bank 0.

    Args:
        total_banks: Rank-wide bank count the shared table is sized
            for.  Oversizing (the default: one 16-bank rank) is safe
            for smaller devices; it only adds tracking capacity.
        num_entries: Explicit table capacity override (testing / area
            studies); default sizes by Inequality 1 with ``W_total``.
    """
    if total_banks < 1:
        raise ValueError(f"total_banks must be >= 1, got {total_banks}")
    #: (state, blast_radius) shared by the current run's bank engines.
    shared: list[tuple[AbacusState, int]] = []

    def build(bank: int, rows: int) -> AbacusMitigation:
        if bank == 0 or not shared:
            config = GrapheneConfig(
                hammer_threshold=hammer_threshold,
                timings=timings,
                rows_per_bank=max(2, rows),
                reset_window_divisor=reset_window_divisor,
            )
            threshold = max(1, config.tracking_threshold - 1)
            entries = num_entries
            if entries is None:
                budget = total_banks * config.max_activations_per_window
                entries = _sized_entries(budget, threshold)
            state = AbacusState(
                threshold=threshold,
                window_ns=config.reset_window_ns,
                num_entries=entries,
            )
            radius = (
                config.blast_radius if blast_radius is None else blast_radius
            )
            shared[:] = [(state, radius)]
        state, radius = shared[0]
        return AbacusMitigation(bank, rows, state, blast_radius=radius)

    return build
