"""All Row Hammer mitigation schemes behind one interface.

Counter-based, deterministic-guarantee schemes:

* :class:`GrapheneMitigation` -- the paper's contribution;
* :class:`TWiCe` -- time-window counters (state of the art compared);
* :class:`CBT` -- counter-based tree;
* :class:`CRA` -- DRAM-resident counters with a counter cache;
* :class:`CoMeTMitigation` -- count-min-sketch tracking + recent
  aggressor table (HPCA 2024 sibling of Graphene);
* :class:`AbacusMitigation` -- rank-level row-ID counters shared
  across banks via sibling activation vectors (USENIX Sec 2024).

Probabilistic schemes:

* :class:`PARA` -- stateless neighbor refresh;
* :class:`PRoHIT` -- hot/cold history tables;
* :class:`MRLoc` -- locality-weighted history queue.

Plus :class:`NoMitigation` as the unprotected control.  Use the
``*_factory`` helpers to hand per-bank engine construction to the
simulator.
"""

from .abacus import (
    AbacusMitigation,
    AbacusState,
    abacus_factory,
)
from .base import (
    MitigationEngine,
    MitigationFactory,
    MitigationStats,
    RefreshDirective,
)
from .cbt import CBT, cbt_factory
from .comet import CoMeTMitigation, comet_factory
from .cra import CRA, cra_factory
from .graphene import GrapheneMitigation, graphene_factory
from .mrloc import MRLoc, mrloc_factory
from .none import NoMitigation
from .oracle import OracleMitigation, oracle_factory
from .para import PAPER_PARA_P, PAPER_PARA_P_SERIES, PARA, para_factory
from .prohit import PRoHIT, prohit_factory
from .refresh_rate import (
    IncreasedRefreshRate,
    increased_refresh_rate_factory,
    protection_of_rate_increase,
)
from .twice import TWiCe, twice_factory

__all__ = [
    "MitigationEngine",
    "MitigationFactory",
    "MitigationStats",
    "RefreshDirective",
    "GrapheneMitigation",
    "graphene_factory",
    "PARA",
    "para_factory",
    "PAPER_PARA_P",
    "PAPER_PARA_P_SERIES",
    "PRoHIT",
    "prohit_factory",
    "MRLoc",
    "mrloc_factory",
    "CBT",
    "cbt_factory",
    "TWiCe",
    "twice_factory",
    "CRA",
    "cra_factory",
    "CoMeTMitigation",
    "comet_factory",
    "AbacusMitigation",
    "AbacusState",
    "abacus_factory",
    "NoMitigation",
    "IncreasedRefreshRate",
    "increased_refresh_rate_factory",
    "protection_of_rate_increase",
    "OracleMitigation",
    "oracle_factory",
]


def no_mitigation_factory() -> MitigationFactory:
    """Factory for the unprotected baseline."""

    def build(bank: int, rows: int) -> NoMitigation:
        return NoMitigation(bank, rows)

    return build
