"""Oracle mitigation: the information-theoretic refresh lower bound.

An ablation reference, not a buildable scheme: the oracle sees the
fault model's ground truth (per-victim accumulated disturbance) and
refreshes a victim at the last possible moment -- when one more
mu-weighted ACT would flip it.  No real mechanism can refresh less and
stay safe, so the gap between a scheme's refresh count and the
oracle's is exactly the price of *not knowing* the true counts.

Graphene's worst-case gap has a crisp closed form: the oracle spends
one refresh per ``T_RH - 1`` disturbance on a victim, Graphene one
NRR (two rows) per ``T`` aggressor ACTs -- a factor of about
``2 * (T_RH - 1) / T ~= 4(k+1)/2`` ... i.e. ~12x at k=2, the cost of
double-sided/multi-window conservatism plus estimate slack.  The
ablation bench measures the actual gap on attack patterns.
"""

from __future__ import annotations

from ..dram.faults import CouplingProfile
from .base import MitigationEngine, MitigationFactory, RefreshDirective

__all__ = ["OracleMitigation", "oracle_factory"]


class OracleMitigation(MitigationEngine):
    """Ground-truth-driven, latest-possible victim refreshes.

    Maintains its own exact disturbance accumulators (mirroring the
    fault referee's math) and refreshes any victim whose accumulator
    reaches ``hammer_threshold - margin``.

    Args:
        bank: Flat bank index.
        rows: Rows in the bank.
        hammer_threshold: ``T_RH``.
        coupling: Must match the fault model's profile.
        margin: Safety slack in mu-weighted ACTs (1 = truly last
            moment; the referee flips *at* the threshold).
    """

    name = "oracle"

    def __init__(
        self,
        bank: int,
        rows: int,
        hammer_threshold: float,
        coupling: CouplingProfile | None = None,
        margin: float = 1.0,
    ) -> None:
        super().__init__(bank, rows)
        if hammer_threshold <= margin:
            raise ValueError("hammer_threshold must exceed the margin")
        self.hammer_threshold = float(hammer_threshold)
        self.coupling = coupling or CouplingProfile.adjacent_only()
        self.margin = margin
        self._disturbance: dict[int, float] = {}

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        doomed: list[int] = []
        for distance in range(1, self.coupling.blast_radius + 1):
            mu = self.coupling.mu(distance)
            for victim in (row - distance, row + distance):
                if not 0 <= victim < self.rows:
                    continue
                total = self._disturbance.get(victim, 0.0) + mu
                if total >= self.hammer_threshold - self.margin:
                    doomed.append(victim)
                    self._disturbance[victim] = 0.0
                else:
                    self._disturbance[victim] = total
        if not doomed:
            return []
        return [
            RefreshDirective(
                bank=self.bank,
                victim_rows=tuple(doomed),
                time_ns=time_ns,
                aggressor_row=row,
                reason="oracle",
            )
        ]

    def on_auto_refresh(self, rows) -> None:
        """Mirror regular refreshes (keeps the oracle's books exact)."""
        for row in rows:
            self._disturbance.pop(row, None)

    def describe(self) -> str:
        return (
            f"oracle(T_RH={self.hammer_threshold:g}, margin={self.margin:g})"
        )


def oracle_factory(
    hammer_threshold: float,
    coupling: CouplingProfile | None = None,
    margin: float = 1.0,
) -> MitigationFactory:
    """Factory building one :class:`OracleMitigation` per bank."""

    def build(bank: int, rows: int) -> OracleMitigation:
        return OracleMitigation(
            bank, rows,
            hammer_threshold=hammer_threshold,
            coupling=coupling,
            margin=margin,
        )

    return build
