"""Graphene wrapped in the common mitigation interface.

The core engine lives in :mod:`repro.core.graphene`; this adapter maps
its :class:`~repro.core.graphene.VictimRefreshRequest` objects onto the
scheme-agnostic :class:`~repro.mitigations.base.RefreshDirective` so
the shared simulator harness can drive Graphene exactly like every
baseline.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.config import GrapheneConfig
from ..core.graphene import GrapheneEngine
from .base import MitigationEngine, MitigationFactory, RefreshDirective

__all__ = ["GrapheneMitigation", "graphene_factory"]


class GrapheneMitigation(MitigationEngine):
    """Per-bank Graphene protection behind the common interface."""

    name = "graphene"

    def __init__(self, bank: int, rows: int, config: GrapheneConfig) -> None:
        super().__init__(bank, rows)
        if config.rows_per_bank != rows:
            # Keep the caller's geometry authoritative; re-derive bit
            # widths for the actual row count.
            config = replace(config, rows_per_bank=rows)
        self.config = config
        self.engine = GrapheneEngine(config, bank=bank)

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        return [
            RefreshDirective(
                bank=self.bank,
                victim_rows=request.victim_rows,
                time_ns=request.time_ns,
                aggressor_row=request.aggressor_row,
                reason=f"T x {request.threshold_multiple}",
            )
            for request in self.engine.on_activate(row, time_ns)
        ]

    def table_bits(self) -> int:
        return self.config.table_bits_per_bank

    def describe(self) -> str:
        return (
            f"graphene(T={self.config.tracking_threshold}, "
            f"N={self.config.num_entries}, k={self.config.k}, "
            f"radius={self.config.blast_radius})"
        )


def graphene_factory(config: GrapheneConfig) -> MitigationFactory:
    """Factory building one :class:`GrapheneMitigation` per bank."""

    def build(bank: int, rows: int) -> GrapheneMitigation:
        return GrapheneMitigation(bank, rows, config)

    return build
