"""PARA: Probabilistic Adjacent Row Activation refresh (Kim et al., 2014).

On every ACT, with probability ``p`` the memory controller refreshes a
neighbor of the activated row, each side chosen with probability
``p/2`` -- the convention the paper's security recurrence (footnote 2)
assumes, where each victim is refreshed per-ACT with probability
``p/2``.

PARA keeps no state, so its hardware cost is near zero; the price is a
constant stream of extra refreshes proportional to the ACT rate
(Fig. 8: PARA's energy overhead exists even with no attack) and no
deterministic guarantee (Section V-A sizes ``p`` for "near-complete"
protection: 0.00145 at ``T_RH`` = 50K for < 1% failure odds per year on
a 64-bank system).

Non-adjacent extension (Section V-D): one probability ``p_i`` per
distance ``i``; each ACT rolls independently per distance, refreshing
one of the two rows at that distance.

The RNG is a seeded :class:`numpy.random.Generator` (PCG64).  The
scalar path consumes it one ``.random()`` call at a time, and
``Generator.random(n)`` fills arrays from the *same* double stream, so
the batched fast-path kernel (:mod:`repro.core.fast_kernels`) can draw
in bulk and land the generator in exactly the state the scalar loop
would -- bit-identical results either way.  An explicit ``rng`` can be
injected to share a generator across components.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import MitigationEngine, MitigationFactory, RefreshDirective

__all__ = ["PARA", "para_factory", "PAPER_PARA_P", "PAPER_PARA_P_SERIES"]

#: The near-complete-protection probability at T_RH = 50K (Section V-A).
PAPER_PARA_P = 0.00145

#: Section V-C's p values across the Row Hammer threshold sweep.
PAPER_PARA_P_SERIES: dict[int, float] = {
    50_000: 0.00145,
    25_000: 0.00295,
    12_500: 0.00602,
    6_250: 0.01224,
    3_125: 0.02485,
    1_562: 0.05034,
}


class PARA(MitigationEngine):
    """Stateless probabilistic neighbor refresh.

    Args:
        bank: Flat bank index.
        rows: Rows in the bank.
        probability: Per-ACT refresh probability ``p`` (distance 1).
        distance_probabilities: Optional per-distance probabilities
            ``(p_1, p_2, ..., p_n)`` for non-adjacent protection;
            overrides ``probability`` when given.
        seed: RNG seed; a per-bank default keeps runs reproducible while
            decorrelating banks.
        rng: Pre-seeded generator to draw from instead of building one
            (``seed`` is then ignored).  The fast-path kernel relies on
            scalar and bulk draws sharing one generator.
    """

    name = "para"

    def __init__(
        self,
        bank: int,
        rows: int,
        probability: float = PAPER_PARA_P,
        distance_probabilities: Sequence[float] | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(bank, rows)
        if distance_probabilities is None:
            distance_probabilities = (probability,)
        for p in distance_probabilities:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability {p} outside [0, 1]")
        self.distance_probabilities = tuple(distance_probabilities)
        if rng is None:
            rng = np.random.default_rng(
                0xBA5E + bank if seed is None else seed
            )
        self._rng = rng

    @property
    def probability(self) -> float:
        """The distance-1 refresh probability."""
        return self.distance_probabilities[0]

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        directives: list[RefreshDirective] = []
        for index, p in enumerate(self.distance_probabilities):
            if p == 0.0 or self._rng.random() >= p:
                continue
            distance = index + 1
            # Pick one side uniformly: each victim sees p/2 per ACT.
            side = distance if self._rng.random() < 0.5 else -distance
            victim = row + side
            if not 0 <= victim < self.rows:
                victim = row - side  # reflect at the bank edge
                if not 0 <= victim < self.rows:
                    continue
            directives.append(
                RefreshDirective(
                    bank=self.bank,
                    victim_rows=(victim,),
                    time_ns=time_ns,
                    aggressor_row=row,
                    reason="probabilistic",
                )
            )
        return directives

    def expected_refreshes(self, activations: int) -> float:
        """Expected victim refreshes over ``activations`` ACTs."""
        return activations * sum(self.distance_probabilities)

    def describe(self) -> str:
        ps = ",".join(f"{p:g}" for p in self.distance_probabilities)
        return f"para(p={ps})"


def para_factory(
    probability: float = PAPER_PARA_P,
    distance_probabilities: Sequence[float] | None = None,
    seed: int | None = None,
) -> MitigationFactory:
    """Factory building one :class:`PARA` per bank."""

    def build(bank: int, rows: int) -> PARA:
        return PARA(
            bank,
            rows,
            probability=probability,
            distance_probabilities=distance_probabilities,
            seed=None if seed is None else seed + bank,
        )

    return build
