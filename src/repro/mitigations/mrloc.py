"""MRLoc: memory-locality-based probabilistic refresh (You & Yang, DAC 2019).

MRLoc keeps a short history *queue* of recent victim-row candidates.
On every ACT, each adjacent row is looked up in the queue:

* **queue hit** -- the row showed temporal locality; it is refreshed
  with an elevated probability that grows with how recently it was
  enqueued (the locality weight);
* **queue miss** -- it is refreshed with the PARA base probability.

Either way the victim is (re-)enqueued at the most-recent end, evicting
the oldest entry when the queue is full.

The paper's Fig. 7(b) attack defeats the queue: cycling through eight
distinct non-adjacent aggressors produces sixteen victim candidates,
one more than the 15-entry queue can hold, so every lookup misses and
MRLoc degenerates to plain PARA -- while on benign locality-rich
patterns it *spends more refreshes than PARA* (the elevated hit
probability), which is the paper's second criticism.
"""

from __future__ import annotations

import random
from collections import deque

from .base import MitigationEngine, MitigationFactory, RefreshDirective
from .para import PAPER_PARA_P

__all__ = ["MRLoc", "mrloc_factory"]


class MRLoc(MitigationEngine):
    """History-queue weighted probabilistic refresh.

    Args:
        bank: Flat bank index.
        rows: Rows in the bank.
        base_probability: PARA-equivalent refresh probability ``p``.
        queue_size: History queue length (paper Fig. 7 uses 15).
        locality_boost: Maximum multiplier applied to ``p`` on a queue
            hit; the effective multiplier scales linearly from ~1x for
            the oldest queue position to ``locality_boost`` for the
            newest.
        seed: RNG seed (per-bank default).
    """

    name = "mrloc"

    def __init__(
        self,
        bank: int,
        rows: int,
        base_probability: float = PAPER_PARA_P,
        queue_size: int = 15,
        locality_boost: float = 8.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(bank, rows)
        if not 0.0 <= base_probability <= 1.0:
            raise ValueError("base_probability outside [0, 1]")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if locality_boost < 1.0:
            raise ValueError("locality_boost must be >= 1")
        self.base_probability = base_probability
        self.queue_size = queue_size
        self.locality_boost = locality_boost
        #: Most recent at the right end.
        self._queue: deque[int] = deque(maxlen=queue_size)
        self._rng = random.Random(0x3770C + bank if seed is None else seed)
        self.queue_hits = 0
        self.queue_misses = 0

    def _hit_probability(self, position: int) -> float:
        """Refresh probability for a victim found at queue ``position``.

        ``position`` counts from the oldest entry (0); the newest entry
        gets the full ``locality_boost`` multiplier.
        """
        if len(self._queue) <= 1:
            weight = self.locality_boost
        else:
            weight = 1.0 + (self.locality_boost - 1.0) * position / (
                len(self._queue) - 1
            )
        return min(1.0, self.base_probability * weight)

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        directives: list[RefreshDirective] = []
        for victim in self.neighbors_of(row):
            try:
                position = self._queue.index(victim)
            except ValueError:
                position = -1
            if position >= 0:
                self.queue_hits += 1
                probability = self._hit_probability(position)
                self._queue.remove(victim)
            else:
                self.queue_misses += 1
                probability = self.base_probability / 2
            # Each victim rolls independently; the miss path halves p so
            # the per-victim rate matches PARA's p/2-per-side convention.
            if self._rng.random() < probability:
                directives.append(
                    RefreshDirective(
                        bank=self.bank,
                        victim_rows=(victim,),
                        time_ns=time_ns,
                        aggressor_row=row,
                        reason="queue-hit" if position >= 0 else "queue-miss",
                    )
                )
            self._queue.append(victim)
        return directives

    @property
    def queue_contents(self) -> tuple[int, ...]:
        """Oldest-to-newest snapshot of the history queue."""
        return tuple(self._queue)

    @property
    def hit_rate(self) -> float:
        total = self.queue_hits + self.queue_misses
        return self.queue_hits / total if total else 0.0

    def table_bits(self) -> int:
        import math

        address_bits = max(1, math.ceil(math.log2(self.rows)))
        return self.queue_size * address_bits

    def describe(self) -> str:
        return (
            f"mrloc(p={self.base_probability:g}, queue={self.queue_size}, "
            f"boost={self.locality_boost:g})"
        )


def mrloc_factory(
    base_probability: float = PAPER_PARA_P,
    queue_size: int = 15,
    locality_boost: float = 8.0,
    seed: int | None = None,
) -> MitigationFactory:
    """Factory building one :class:`MRLoc` per bank."""

    def build(bank: int, rows: int) -> MRLoc:
        return MRLoc(
            bank,
            rows,
            base_probability=base_probability,
            queue_size=queue_size,
            locality_boost=locality_boost,
            seed=None if seed is None else seed + bank,
        )

    return build
