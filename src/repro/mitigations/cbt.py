"""CBT: Counter-Based Tree (Seyedzadeh et al., CAL 2017 / ISCA 2018).

CBT shares a small pool of counters across all rows of a bank through
a dynamically split binary tree:

* the tree starts as a single root counter covering every row;
* when a counter covering more than one row reaches its level's *split
  threshold* (lower thresholds at shallower levels), and a free counter
  exists, it splits into two children each covering half its range --
  both children **inherit the parent's count**, which keeps the
  estimate conservative (a row's true ACT count can never exceed its
  covering counter);
* when any counter reaches the *action threshold* (derived from the
  Row Hammer threshold: ``T_RH / 4``, the same two-sided/two-window
  argument Graphene uses), CBT refreshes the counter's whole covered
  range plus one row on each side and resets the counter;
* all counters collapse back to the root at every refresh window.

The burst refresh of ``rows/2^level + 2`` rows is CBT's weakness: the
paper (Section II-C) notes both the performance hit of the burst and
that the "+2" variant assumes physically contiguous rows inside the
device.  Both the contiguous (``+2``) and remapped (``x2``) refresh
cost models are selectable to reproduce that discussion.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

from ..dram.timing import DDR4_2400, DramTimings
from .base import MitigationEngine, MitigationFactory, RefreshDirective

__all__ = ["CBT", "cbt_factory"]


@dataclass
class _Counter:
    """One tree node: a counter covering ``size`` rows from ``start``."""

    start: int
    size: int
    level: int
    count: int


class CBT(MitigationEngine):
    """Counter-based tree protection for one bank.

    Args:
        bank: Flat bank index.
        rows: Rows in the bank (must be a power of two for clean halving;
            other sizes work, ranges just split unevenly).
        hammer_threshold: ``T_RH``.
        num_counters: Counter pool size (CBT-128 ... CBT-4096).
        num_levels: Maximum tree depth (paper: 10 levels for CBT-128,
            +1 per counter doubling).
        timings: Supplies tREFW for the window reset.
        assume_contiguous: When True, a trigger refreshes ``size + 2``
            rows (the paper's ``N/2^l + 2``); when False, models the
            internally-remapped case where ``size * 2`` rows must be
            refreshed to cover all possible victims.
    """

    name = "cbt"

    def __init__(
        self,
        bank: int,
        rows: int,
        hammer_threshold: int,
        num_counters: int = 128,
        num_levels: int = 10,
        timings: DramTimings = DDR4_2400,
        assume_contiguous: bool = True,
    ) -> None:
        super().__init__(bank, rows)
        if hammer_threshold < 8:
            raise ValueError("hammer_threshold too small")
        if num_counters < 1:
            raise ValueError("num_counters must be >= 1")
        if num_levels < 1:
            raise ValueError("num_levels must be >= 1")
        self.hammer_threshold = hammer_threshold
        self.num_counters = num_counters
        self.num_levels = num_levels
        self.timings = timings
        self.assume_contiguous = assume_contiguous
        #: Action threshold: trigger refreshes when any counter hits it.
        self.action_threshold = max(1, hammer_threshold // 4)
        self._window_length_ns = timings.trefw
        self._current_window = 0
        #: Leaves sorted by ``start``; together they tile [0, rows).
        self._leaves: list[_Counter] = [_Counter(0, rows, 0, 0)]
        self.splits = 0
        self.window_resets = 0

    # ------------------------------------------------------------------
    # Thresholds
    # ------------------------------------------------------------------

    def split_threshold(self, level: int) -> int:
        """Split threshold for ``level`` -- a linear ramp up to the
        action threshold at the deepest level, so shallow (coarse)
        counters split early and fine counters only act.
        """
        if level >= self.num_levels - 1:
            return self.action_threshold
        ramp = (level + 1) / self.num_levels
        return max(1, int(self.action_threshold * ramp))

    # ------------------------------------------------------------------
    # ACT processing
    # ------------------------------------------------------------------

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        self._maybe_reset(time_ns)
        index = self._leaf_index(row)
        node = self._leaves[index]
        node.count += 1

        if node.count >= self.action_threshold:
            return [self._trigger(index, time_ns)]

        # Split while the node is coarse, hot, and counters remain.
        while (
            node.size > 1
            and node.level < self.num_levels - 1
            and len(self._leaves) < self.num_counters
            and node.count >= self.split_threshold(node.level)
        ):
            node = self._split(index, row)
            index = self._leaf_index(row)
        return []

    def _trigger(self, index: int, time_ns: float) -> RefreshDirective:
        """Counter hit the action threshold: burst-refresh its range."""
        node = self._leaves[index]
        node.count = 0
        if self.assume_contiguous:
            first = max(0, node.start - 1)
            last = min(self.rows, node.start + node.size + 1)
            victims: range = range(first, last)
        else:
            # Remapped case: the device may scatter the 2^l-row group, so
            # up to 2x the group size of potential victims must refresh.
            span = min(self.rows, node.size * 2)
            first = max(0, min(node.start, self.rows - span))
            victims = range(first, first + span)
        return RefreshDirective(
            bank=self.bank,
            victim_rows=victims,
            time_ns=time_ns,
            aggressor_row=None,
            reason=f"cbt-level-{node.level}",
        )

    def _split(self, index: int, row: int) -> _Counter:
        """Split leaf ``index`` in half; both children inherit the count."""
        node = self._leaves[index]
        left_size = node.size // 2
        left = _Counter(node.start, left_size, node.level + 1, node.count)
        right = _Counter(
            node.start + left_size,
            node.size - left_size,
            node.level + 1,
            node.count,
        )
        self._leaves[index : index + 1] = [left, right]
        self.splits += 1
        return left if row < right.start else right

    # ------------------------------------------------------------------
    # Window reset and lookup
    # ------------------------------------------------------------------

    def _maybe_reset(self, time_ns: float) -> None:
        window = int(time_ns // self._window_length_ns)
        if window != self._current_window:
            self._leaves = [_Counter(0, self.rows, 0, 0)]
            self._current_window = window
            self.window_resets += 1

    def _leaf_index(self, row: int) -> int:
        starts = [leaf.start for leaf in self._leaves]
        index = bisect_right(starts, row) - 1
        leaf = self._leaves[index]
        assert leaf.start <= row < leaf.start + leaf.size
        return index

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def counters_in_use(self) -> int:
        return len(self._leaves)

    def leaf_snapshot(self) -> list[tuple[int, int, int, int]]:
        """(start, size, level, count) per live counter."""
        return [
            (leaf.start, leaf.size, leaf.level, leaf.count)
            for leaf in self._leaves
        ]

    def table_bits(self) -> int:
        """Structural SRAM footprint (see :mod:`repro.core.area`)."""
        count_bits = math.ceil(math.log2(self.action_threshold * 2 + 1))
        level_bits = max(1, math.ceil(math.log2(self.num_levels + 1)))
        prefix_bits = max(1, self.num_levels - 1)
        return self.num_counters * (count_bits + level_bits + prefix_bits + 1)

    def describe(self) -> str:
        return (
            f"cbt(counters={self.num_counters}, levels={self.num_levels}, "
            f"T_act={self.action_threshold})"
        )


def cbt_factory(
    hammer_threshold: int,
    num_counters: int = 128,
    num_levels: int = 10,
    timings: DramTimings = DDR4_2400,
    assume_contiguous: bool = True,
) -> MitigationFactory:
    """Factory building one :class:`CBT` per bank."""

    def build(bank: int, rows: int) -> CBT:
        return CBT(
            bank,
            rows,
            hammer_threshold=hammer_threshold,
            num_counters=num_counters,
            num_levels=num_levels,
            timings=timings,
            assume_contiguous=assume_contiguous,
        )

    return build
