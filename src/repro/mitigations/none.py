"""The unprotected baseline: no tracking, no victim refreshes.

Used as the reference point for performance/energy overheads and as the
control in protection-guarantee experiments (it *should* exhibit bit
flips under attack patterns, validating the fault model's referee role).
"""

from __future__ import annotations

from .base import MitigationEngine, RefreshDirective

__all__ = ["NoMitigation"]


class NoMitigation(MitigationEngine):
    """Does nothing; every attack succeeds."""

    name = "none"

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        return []
