"""TWiCe: Time Window Counters (Lee et al., ISCA 2019).

TWiCe keeps an exact per-row ACT counter -- but only for rows that
*could still* reach the Row Hammer threshold within the refresh window.
It exploits the DRAM timing bound on ACT frequency: a row pruned early
cannot have accumulated many ACTs, and a row must sustain a minimum ACT
*rate* to ever reach the threshold.  Mechanics:

* on every ACT, the row's table entry is found or allocated and its
  ``act_count`` incremented; reaching the per-aggressor threshold
  (``T_RH / 4``, the standard two-sided/two-window derivation) triggers
  a victim refresh of the neighbors and re-arms the entry;
* on every regular REF command (the *pruning interval*, tREFI), each
  entry's ``life`` increments, and entries whose ``act_count`` falls
  below ``life x pruning_rate`` are discarded -- they can no longer
  reach the threshold within the window (``pruning_rate`` = threshold /
  (tREFW / tREFI) ~= 1.53 ACTs per interval for the paper's numbers);
* entries also retire once their ``life`` exceeds a full window.

This gives deterministic protection with very few false positives, at
the cost the paper's Table IV quantifies: an order of magnitude more
table bits than Graphene (TWiCe's analysis needs ~1.1K entries/bank at
``T_RH`` = 50K, vs Graphene's 81).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..dram.timing import DDR4_2400, DramTimings
from .base import MitigationEngine, MitigationFactory, RefreshDirective

__all__ = ["TWiCe", "twice_factory"]


@dataclass
class _Entry:
    act_count: int
    life: int


class TWiCe(MitigationEngine):
    """Time-window counter table for one bank.

    Args:
        bank: Flat bank index.
        rows: Rows in the bank.
        hammer_threshold: ``T_RH``.
        timings: Supplies tREFI (pruning interval) and tREFW.
        blast_radius: Victim refresh distance ``n`` (Section V-D
            extension; 1 reproduces the paper's base configuration).
        max_entries: Capacity for occupancy reporting; TWiCe's sizing
            analysis guarantees the live set stays below it, and the
            engine records a violation (rather than dropping state,
            which would break protection) if a workload exceeds it.
    """

    name = "twice"

    def __init__(
        self,
        bank: int,
        rows: int,
        hammer_threshold: int,
        timings: DramTimings = DDR4_2400,
        blast_radius: int = 1,
        max_entries: int | None = None,
    ) -> None:
        super().__init__(bank, rows)
        if hammer_threshold < 8:
            raise ValueError("hammer_threshold too small")
        if blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        self.hammer_threshold = hammer_threshold
        self.timings = timings
        self.blast_radius = blast_radius
        #: Per-aggressor trigger threshold (two-sided, two-window).
        self.act_threshold = max(1, hammer_threshold // 4)
        #: Pruning intervals per refresh window.
        self.life_max = timings.refreshes_per_window
        #: Minimum ACTs-per-interval rate a threatening row must sustain.
        self.pruning_rate = self.act_threshold / self.life_max
        if max_entries is None:
            # TWiCe's sizing: rows able to stay above the pruning line
            # scale with W / T_RH; anchored to the paper's 1,138 at 50K.
            max_entries = max(16, round(1138 * 50_000 / hammer_threshold))
        self.max_entries = max_entries
        self._entries: dict[int, _Entry] = {}
        self.peak_occupancy = 0
        self.capacity_violations = 0
        self.pruned_entries = 0

    # ------------------------------------------------------------------
    # ACT processing
    # ------------------------------------------------------------------

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        entry = self._entries.get(row)
        if entry is None:
            entry = _Entry(act_count=0, life=0)
            self._entries[row] = entry
            if len(self._entries) > self.max_entries:
                self.capacity_violations += 1
            if len(self._entries) > self.peak_occupancy:
                self.peak_occupancy = len(self._entries)
        entry.act_count += 1
        if entry.act_count < self.act_threshold:
            return []
        # Threshold hit: refresh the neighborhood and re-arm the entry.
        entry.act_count = 0
        entry.life = 0
        return [
            RefreshDirective(
                bank=self.bank,
                victim_rows=self.neighbors_of(row, self.blast_radius),
                time_ns=time_ns,
                aggressor_row=row,
                reason="twice-threshold",
            )
        ]

    # ------------------------------------------------------------------
    # Pruning at every REF command
    # ------------------------------------------------------------------

    def _process_refresh_command(
        self, time_ns: float
    ) -> list[RefreshDirective]:
        doomed: list[int] = []
        for row, entry in self._entries.items():
            entry.life += 1
            if (
                entry.act_count < entry.life * self.pruning_rate
                or entry.life >= self.life_max
            ):
                doomed.append(row)
        for row in doomed:
            del self._entries[row]
        self.pruned_entries += len(doomed)
        return []

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def tracked(self) -> dict[int, int]:
        """row -> current act_count snapshot."""
        return {row: entry.act_count for row, entry in self._entries.items()}

    def table_bits(self) -> int:
        """CAM + SRAM structural footprint (see :mod:`repro.core.area`)."""
        address_bits = max(1, math.ceil(math.log2(self.rows)))
        cam_bits = address_bits + 2
        sram_bits = max(4, math.ceil(math.log2(self.act_threshold + 1)))
        return self.max_entries * (cam_bits + sram_bits)

    def describe(self) -> str:
        return (
            f"twice(T_act={self.act_threshold}, entries={self.max_entries}, "
            f"rate={self.pruning_rate:.3f}/tREFI)"
        )


def twice_factory(
    hammer_threshold: int,
    timings: DramTimings = DDR4_2400,
    blast_radius: int = 1,
    max_entries: int | None = None,
) -> MitigationFactory:
    """Factory building one :class:`TWiCe` per bank."""

    def build(bank: int, rows: int) -> TWiCe:
        return TWiCe(
            bank,
            rows,
            hammer_threshold=hammer_threshold,
            timings=timings,
            blast_radius=blast_radius,
            max_entries=max_entries,
        )

    return build
