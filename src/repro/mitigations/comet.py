"""CoMeT: count-min-sketch row tracking (Bostanci et al., HPCA 2024).

CoMeT (arXiv 2402.18769) replaces per-row counters with a per-bank
**Count-Min Sketch** -- ``depth`` hash rows of ``width`` counters whose
minimum over-approximates any row's true ACT count -- plus a small
exact-count **Recent Aggressor Table** (RAT) for the rows that have
already crossed the sketch threshold.  Mechanics per ACT:

* the tracking state resets lazily every ``tREFW / k`` (the same
  Graphene-style reset-window argument sizes the threshold);
* a row resident in the RAT counts exactly: its entry increments, and
  reaching the threshold triggers a victim refresh of the neighbors and
  re-arms the entry at zero;
* any other row updates the sketch; once its estimate reaches the
  threshold it is refreshed immediately and promoted into the RAT (the
  sketch cannot *name* hot rows, so the check rides on the row
  currently activating -- which is exactly sufficient, see the
  :class:`~repro.core.trackers.CountMinSketch` notes).

The protection argument mirrors Graphene's Section III-C gap theorem:
the sketch estimate never undercounts, so a row's first trigger in a
window comes at or before its ``T``-th own ACT; RAT residency then
bounds every later gap by ``T`` exactly.  RAT eviction (capacity hit:
smallest count, then smallest row, evicted) is safe because the
evicted row's sketch estimate is already at the threshold -- its very
next ACT re-triggers and re-inserts it, so an evicted row's gap grows
by at most one.  Collisions in the sketch only *inflate* estimates:
they cause early (spurious) refreshes, never missed ones -- the
paper's area-vs-overrefresh trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.config import GrapheneConfig
from ..core.trackers import CountMinSketch
from ..dram.timing import DDR4_2400, DramTimings
from .base import MitigationEngine, MitigationFactory, RefreshDirective

__all__ = ["CoMeTMitigation", "comet_factory"]

#: Default sketch geometry and RAT capacity (the paper's per-bank
#: configuration: 512 counters per hash row, 4 hash rows, 32-entry RAT).
DEFAULT_WIDTH = 512
DEFAULT_DEPTH = 4
DEFAULT_RAT_ENTRIES = 32
#: Base hash seed; each bank salts it with its index so banks hash
#: independently (per-bank sketches, per the paper).
DEFAULT_SEED = 0x5EED


@dataclass
class CoMeTStats:
    """CoMeT-specific tallies (protocol-level stats live in ``stats``)."""

    window_resets: int = 0
    sketch_triggers: int = 0
    rat_triggers: int = 0
    rat_insertions: int = 0
    rat_evictions: int = 0
    tracked_peak: int = 0
    extra: dict = field(default_factory=dict)


class CoMeTMitigation(MitigationEngine):
    """One bank's CoMeT tracker: count-min sketch + recent aggressor table.

    Args:
        bank: Flat bank index (also salts the hash seed).
        rows: Rows in the bank.
        config: Graphene-style derivation supplying the tracking
            threshold ``T`` and the reset window; CoMeT triggers on the
            same ``T`` so the gap theorem transfers unchanged.
        width / depth: Sketch geometry.
        rat_entries: RAT capacity.
        seed: Base hash seed (salted per bank).
    """

    name = "comet"

    def __init__(
        self,
        bank: int,
        rows: int,
        config: GrapheneConfig,
        width: int = DEFAULT_WIDTH,
        depth: int = DEFAULT_DEPTH,
        rat_entries: int = DEFAULT_RAT_ENTRIES,
        seed: int = DEFAULT_SEED,
    ) -> None:
        super().__init__(bank, rows)
        if rat_entries < 1:
            raise ValueError(f"rat_entries must be >= 1, got {rat_entries}")
        self.config = config
        self.threshold = config.tracking_threshold
        self.window_len = config.reset_window_ns
        self.blast_radius = config.blast_radius
        self.width = width
        self.depth = depth
        self.rat_entries = rat_entries
        self.sketch = CountMinSketch(width, depth, seed=seed + bank)
        #: row -> exact ACT count since the entry's last trigger.
        self.rat: dict[int, int] = {}
        self.current_window = 0
        self.cstats = CoMeTStats()

    # ------------------------------------------------------------------
    # ACT processing
    # ------------------------------------------------------------------

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        if time_ns < 0:
            raise ValueError("time must be non-negative")
        self._maybe_reset(time_ns)
        count = self.rat.get(row)
        if count is not None:
            # Exact-count path: RAT entries trigger every T ACTs.
            count += 1
            if count < self.threshold:
                self.rat[row] = count
                return []
            self.rat[row] = 0
            self.cstats.rat_triggers += 1
            return [self._directive(row, time_ns, "comet-rat")]
        # Sketch path: the estimate upper-bounds the true count, so the
        # first trigger lands at or before the row's T-th own ACT.
        estimate = self.sketch.observe(row)
        if estimate < self.threshold:
            return []
        self._insert_rat(row)
        self.cstats.sketch_triggers += 1
        return [self._directive(row, time_ns, "comet-sketch")]

    def _insert_rat(self, row: int) -> None:
        if len(self.rat) >= self.rat_entries:
            victim = min(self.rat, key=lambda r: (self.rat[r], r))
            del self.rat[victim]
            self.cstats.rat_evictions += 1
        # The triggering ACT is consumed by the trigger itself, so the
        # fresh entry starts at zero.
        self.rat[row] = 0
        self.cstats.rat_insertions += 1
        if len(self.rat) > self.cstats.tracked_peak:
            self.cstats.tracked_peak = len(self.rat)

    def _directive(
        self, row: int, time_ns: float, reason: str
    ) -> RefreshDirective:
        return RefreshDirective(
            bank=self.bank,
            victim_rows=self.neighbors_of(row, self.blast_radius),
            time_ns=time_ns,
            aggressor_row=row,
            reason=reason,
        )

    def _maybe_reset(self, time_ns: float) -> None:
        window = int(time_ns // self.window_len)
        if window != self.current_window:
            if window < self.current_window:
                raise ValueError(
                    f"time moved backwards across windows: window {window} "
                    f"after window {self.current_window}"
                )
            self.sketch.reset()
            self.rat.clear()
            self.cstats.window_resets += 1
            self.current_window = window

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def tracked(self) -> dict[int, int]:
        """row -> current RAT count snapshot."""
        return dict(self.rat)

    def table_bits(self) -> int:
        """Sketch array + RAT (address + count bits per entry)."""
        address_bits = max(1, math.ceil(math.log2(self.rows)))
        count_bits = max(1, math.ceil(math.log2(self.threshold + 1)))
        return self.sketch.table_bits + self.rat_entries * (
            address_bits + count_bits
        )

    def describe(self) -> str:
        return (
            f"comet(T={self.threshold}, sketch={self.width}x{self.depth}, "
            f"rat={self.rat_entries}, k={self.config.k})"
        )


def comet_factory(
    hammer_threshold: int,
    timings: DramTimings = DDR4_2400,
    reset_window_divisor: int = 2,
    width: int = DEFAULT_WIDTH,
    depth: int = DEFAULT_DEPTH,
    rat_entries: int = DEFAULT_RAT_ENTRIES,
    seed: int = DEFAULT_SEED,
) -> MitigationFactory:
    """Factory building one :class:`CoMeTMitigation` per bank.

    The trigger threshold and reset window derive through
    :class:`~repro.core.config.GrapheneConfig` (same two-window
    argument; ``k=2`` matches the evaluated Graphene configuration).
    """

    def build(bank: int, rows: int) -> CoMeTMitigation:
        config = GrapheneConfig(
            hammer_threshold=hammer_threshold,
            timings=timings,
            rows_per_bank=max(2, rows),
            reset_window_divisor=reset_window_divisor,
        )
        return CoMeTMitigation(
            bank,
            rows,
            config,
            width=width,
            depth=depth,
            rat_entries=rat_entries,
            seed=seed,
        )

    return build
