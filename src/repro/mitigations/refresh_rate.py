"""Increased-refresh-rate mitigation (paper Sections II-B and VI).

After the first Row Hammer disclosures, BIOS/UEFI vendors shipped
patches that simply raise the DRAM refresh rate (shrinking the
effective refresh window by 2x or 4x).  The paper dismisses this as "a
temporary fix": it provides **no guarantee** (an attacker still fits
``W/k`` ACTs inside the shortened window -- far above the DDR4
thresholds) while paying a *permanent* energy and performance tax on
every workload, attack or not.

This engine models the approach so the trade-off can be measured: it
issues extra distributed refreshes equivalent to running auto-refresh
``multiplier``x faster.  Use :func:`protection_of_rate_increase` for
the analytic side: the maximum ACT count an aggressor can still
accumulate, versus the threshold.
"""

from __future__ import annotations

from ..dram.timing import DDR4_2400, DramTimings
from .base import MitigationEngine, MitigationFactory, RefreshDirective

__all__ = [
    "IncreasedRefreshRate",
    "increased_refresh_rate_factory",
    "protection_of_rate_increase",
]


def protection_of_rate_increase(
    multiplier: int,
    hammer_threshold: int,
    timings: DramTimings = DDR4_2400,
) -> dict[str, float]:
    """Does a k-times refresh rate stop Row Hammer?  (Usually no.)

    Returns the worst-case ACT count an aggressor pair can land on one
    victim within the shortened window and the protection verdict.
    """
    if multiplier < 1:
        raise ValueError("multiplier must be >= 1")
    window = timings.trefw / multiplier
    max_acts = timings.max_activations_in(window)
    # Double-sided: both neighbors hammering one victim.
    worst_case_disturbance = max_acts * 2
    return {
        "multiplier": multiplier,
        "effective_window_ms": window / 1e6,
        "max_acts_per_aggressor": max_acts,
        "worst_case_disturbance": worst_case_disturbance,
        "protected": worst_case_disturbance < hammer_threshold,
        "extra_refresh_energy_fraction": float(multiplier - 1),
    }


class IncreasedRefreshRate(MitigationEngine):
    """Extra distributed refreshes at (multiplier - 1)x the base rate.

    Piggybacks on the REF callback: at every regular REF command it
    refreshes ``(multiplier - 1) * rows_per_ref`` additional rows,
    walking the row space like the regular schedule but offset by half
    the bank so the effective per-row period is ``tREFW / multiplier``.
    """

    name = "refresh-rate"

    def __init__(
        self,
        bank: int,
        rows: int,
        multiplier: int = 2,
        timings: DramTimings = DDR4_2400,
    ) -> None:
        super().__init__(bank, rows)
        if multiplier < 2:
            raise ValueError(
                "multiplier must be >= 2 (1 is the regular schedule)"
            )
        self.multiplier = multiplier
        self.timings = timings
        commands_per_window = timings.refreshes_per_window
        self.rows_per_tick = (multiplier - 1) * max(
            1, -(-rows // commands_per_window)
        )
        self._pointer = rows // 2  # offset from the regular walker

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        return []

    def _process_refresh_command(
        self, time_ns: float
    ) -> list[RefreshDirective]:
        first = self._pointer
        count = min(self.rows_per_tick, self.rows - first)
        victims = range(first, first + count)
        self._pointer = (first + count) % self.rows
        return [
            RefreshDirective(
                bank=self.bank,
                victim_rows=victims,
                time_ns=time_ns,
                aggressor_row=None,
                reason=f"rate-x{self.multiplier}",
            )
        ]

    def describe(self) -> str:
        return f"refresh-rate(x{self.multiplier})"


def increased_refresh_rate_factory(
    multiplier: int = 2, timings: DramTimings = DDR4_2400
) -> MitigationFactory:
    """Factory building one :class:`IncreasedRefreshRate` per bank."""

    def build(bank: int, rows: int) -> IncreasedRefreshRate:
        return IncreasedRefreshRate(
            bank, rows, multiplier=multiplier, timings=timings
        )

    return build
