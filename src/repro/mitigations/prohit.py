"""PRoHIT: probabilistic history tables (Son et al., DAC 2017).

PRoHIT extends PARA with two small history tables -- *hot* and *cold*
-- that bias refreshes toward frequently victimized rows:

* on every ACT, each adjacent (victim) row is *sampled* into the
  tables with a small insertion probability ``q``:

  - a sampled victim already in the hot table moves up one rank;
  - a sampled victim in the cold table is promoted to the hot table's
    lowest rank (demoting the previous occupant into the cold table);
  - an unseen sampled victim enters the cold table, evicting the entry
    at the tail (FIFO among cold entries);

* on every regular REF command, the top-ranked hot entry (if any) is
  victim-refreshed and removed.

The bias toward *frequency* is exactly what the Fig. 7(a) pattern of
the paper exploits: rows x-5 / x+5 are hammered persistently but less
often than the decoy victims x+-1 / x+-3, so they rarely reach the top
of the hot table and can accumulate disturbance past the Row Hammer
threshold.  Section V-A reports a 0.25% bit-flip chance per tREFW when
PRoHIT's refresh budget is calibrated to PARA-0.00145's; the
reproduction of that experiment lives in
:mod:`repro.analysis.security`.
"""

from __future__ import annotations

import random

from .base import MitigationEngine, MitigationFactory, RefreshDirective

__all__ = ["PRoHIT", "prohit_factory"]


class PRoHIT(MitigationEngine):
    """Hot/cold history tables with probabilistic sampling.

    Args:
        bank: Flat bank index.
        rows: Rows in the bank.
        insert_probability: ``q`` -- chance a victim of the current ACT
            is sampled into the tables.
        hot_size: Entries in the ranked hot table (paper Fig. 7 uses a
            7-entry total configuration: 4 hot + 3 cold).
        cold_size: Entries in the cold table.
        seed: RNG seed (per-bank default).
    """

    name = "prohit"

    def __init__(
        self,
        bank: int,
        rows: int,
        insert_probability: float = 0.005,
        hot_size: int = 4,
        cold_size: int = 3,
        promotion_probability: float = 1.0,
        refresh_period: int = 1,
        seed: int | None = None,
    ) -> None:
        super().__init__(bank, rows)
        if not 0.0 <= insert_probability <= 1.0:
            raise ValueError("insert_probability outside [0, 1]")
        if not 0.0 <= promotion_probability <= 1.0:
            raise ValueError("promotion_probability outside [0, 1]")
        if refresh_period < 1:
            raise ValueError("refresh_period must be >= 1")
        if hot_size < 1 or cold_size < 1:
            raise ValueError("table sizes must be >= 1")
        self.insert_probability = insert_probability
        self.promotion_probability = promotion_probability
        self.refresh_period = refresh_period
        self._ref_commands_seen = 0
        self.hot_size = hot_size
        self.cold_size = cold_size
        #: Hot table, index 0 = top rank (next to be refreshed).
        self._hot: list[int] = []
        #: Cold table, index 0 = most recently inserted.
        self._cold: list[int] = []
        self._rng = random.Random(0x9807 + bank if seed is None else seed)

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        for victim in self.neighbors_of(row):
            if self._rng.random() >= self.insert_probability:
                continue
            self._sample_victim(victim)
        return []

    def _sample_victim(self, victim: int) -> None:
        if victim in self._hot:
            # Move up one rank toward the refresh slot.
            index = self._hot.index(victim)
            if index > 0:
                self._hot[index - 1], self._hot[index] = (
                    self._hot[index],
                    self._hot[index - 1],
                )
            return
        if victim in self._cold:
            # Promote into the hot table's lowest rank (the promotion
            # itself is probabilistic in the original design).
            if (
                self.promotion_probability < 1.0
                and self._rng.random() >= self.promotion_probability
            ):
                return
            self._cold.remove(victim)
            if len(self._hot) >= self.hot_size:
                demoted = self._hot.pop()
                self._cold.insert(0, demoted)
            self._hot.append(victim)
            self._trim_cold()
            return
        # Unseen victim: enter the cold table (FIFO eviction at tail).
        self._cold.insert(0, victim)
        self._trim_cold()

    def _trim_cold(self) -> None:
        while len(self._cold) > self.cold_size:
            self._cold.pop()

    # ------------------------------------------------------------------
    # Piggybacked refresh at every REF command
    # ------------------------------------------------------------------

    def _process_refresh_command(
        self, time_ns: float
    ) -> list[RefreshDirective]:
        self._ref_commands_seen += 1
        if self._ref_commands_seen % self.refresh_period != 0:
            return []
        if not self._hot:
            return []
        target = self._hot.pop(0)
        return [
            RefreshDirective(
                bank=self.bank,
                victim_rows=(target,),
                time_ns=time_ns,
                aggressor_row=None,
                reason="hot-table",
            )
        ]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def hot_table(self) -> tuple[int, ...]:
        return tuple(self._hot)

    @property
    def cold_table(self) -> tuple[int, ...]:
        return tuple(self._cold)

    def table_bits(self) -> int:
        """Row address bits per entry across both tables."""
        import math

        address_bits = max(1, math.ceil(math.log2(self.rows)))
        return (self.hot_size + self.cold_size) * address_bits

    def describe(self) -> str:
        return (
            f"prohit(q={self.insert_probability:g}, hot={self.hot_size}, "
            f"cold={self.cold_size})"
        )


def prohit_factory(
    insert_probability: float = 0.005,
    hot_size: int = 4,
    cold_size: int = 3,
    promotion_probability: float = 1.0,
    refresh_period: int = 1,
    seed: int | None = None,
) -> MitigationFactory:
    """Factory building one :class:`PRoHIT` per bank."""

    def build(bank: int, rows: int) -> PRoHIT:
        return PRoHIT(
            bank,
            rows,
            insert_probability=insert_probability,
            hot_size=hot_size,
            cold_size=cold_size,
            promotion_probability=promotion_probability,
            refresh_period=refresh_period,
            seed=None if seed is None else seed + bank,
        )

    return build
