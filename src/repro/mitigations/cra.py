"""CRA: Counter-based Row Activation (Kim, Nair & Qureshi, CAL 2015).

CRA keeps one exact counter *per DRAM row*, stored in a reserved region
of DRAM itself, with a small on-chip *counter cache* absorbing the
common case.  Every ACT must increment the activated row's counter:

* **cache hit** -- increment in place;
* **cache miss** -- evict the LRU cached counter (write it back to the
  DRAM-resident table) and fetch the needed one: two extra DRAM
  accesses on the program's critical path.

A counter crossing the per-aggressor threshold (``T_RH / 4``) triggers
a victim refresh and resets.  Counters reset every refresh window.

The paper's Section II-C critique -- CRA "performs poorly for an access
pattern with little locality" -- falls out directly: low-locality ACT
streams miss the counter cache constantly, and each miss costs DRAM
bandwidth.  The engine reports ``cache_misses`` so the performance
model can charge that cost.
"""

from __future__ import annotations

import math
from collections import OrderedDict

from ..dram.timing import DDR4_2400, DramTimings
from .base import MitigationEngine, MitigationFactory, RefreshDirective

__all__ = ["CRA", "cra_factory"]


class CRA(MitigationEngine):
    """Per-row counters in DRAM with an on-chip LRU counter cache.

    Args:
        bank: Flat bank index.
        rows: Rows in the bank.
        hammer_threshold: ``T_RH``.
        cache_entries: On-chip counter cache capacity.
        timings: Supplies tREFW for the window reset.
    """

    name = "cra"

    def __init__(
        self,
        bank: int,
        rows: int,
        hammer_threshold: int,
        cache_entries: int = 512,
        timings: DramTimings = DDR4_2400,
    ) -> None:
        super().__init__(bank, rows)
        if hammer_threshold < 8:
            raise ValueError("hammer_threshold too small")
        if cache_entries < 1:
            raise ValueError("cache_entries must be >= 1")
        self.hammer_threshold = hammer_threshold
        self.cache_entries = cache_entries
        self.timings = timings
        self.act_threshold = max(1, hammer_threshold // 4)
        #: The DRAM-resident counter table (row -> count); rows absent
        #: from the dict hold an implicit zero.
        self._backing: dict[int, int] = {}
        #: On-chip cache: row -> count, LRU order (oldest first).
        self._cache: OrderedDict[int, int] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.writebacks = 0
        self._window_length_ns = timings.trefw
        self._current_window = 0

    # ------------------------------------------------------------------
    # ACT processing
    # ------------------------------------------------------------------

    def _process_activation(
        self, row: int, time_ns: float
    ) -> list[RefreshDirective]:
        self._maybe_reset(time_ns)
        count = self._lookup(row) + 1
        self._cache[row] = count
        self._cache.move_to_end(row)
        if count < self.act_threshold:
            return []
        self._cache[row] = 0
        return [
            RefreshDirective(
                bank=self.bank,
                victim_rows=self.neighbors_of(row),
                time_ns=time_ns,
                aggressor_row=row,
                reason="cra-threshold",
            )
        ]

    def _lookup(self, row: int) -> int:
        """Fetch the row's counter through the cache, evicting on miss."""
        if row in self._cache:
            self.cache_hits += 1
            return self._cache[row]
        self.cache_misses += 1
        if len(self._cache) >= self.cache_entries:
            victim_row, victim_count = self._cache.popitem(last=False)
            self._backing[victim_row] = victim_count
            self.writebacks += 1
        count = self._backing.pop(row, 0)
        self._cache[row] = count
        return count

    def _maybe_reset(self, time_ns: float) -> None:
        window = int(time_ns // self._window_length_ns)
        if window != self._current_window:
            self._backing.clear()
            self._cache.clear()
            self._current_window = window

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_misses / total if total else 0.0

    def extra_dram_accesses(self) -> int:
        """DRAM accesses caused by counter-cache misses (fetch + wb)."""
        return self.cache_misses + self.writebacks

    def table_bits(self) -> int:
        """On-chip cost only: the counter cache (the DRAM table is free
        capacity-wise but costs bandwidth, reported separately)."""
        address_bits = max(1, math.ceil(math.log2(self.rows)))
        count_bits = max(4, math.ceil(math.log2(self.act_threshold + 1)))
        return self.cache_entries * (address_bits + count_bits)

    def describe(self) -> str:
        return f"cra(cache={self.cache_entries}, T_act={self.act_threshold})"


def cra_factory(
    hammer_threshold: int,
    cache_entries: int = 512,
    timings: DramTimings = DDR4_2400,
) -> MitigationFactory:
    """Factory building one :class:`CRA` per bank."""

    def build(bank: int, rows: int) -> CRA:
        return CRA(
            bank,
            rows,
            hammer_threshold=hammer_threshold,
            cache_entries=cache_entries,
            timings=timings,
        )

    return build
