"""Batched kernels for the non-Graphene mitigation schemes.

Each kernel here *wraps the live reference engine* rather than
replicating it: the scalar path delegates straight to
``MitigationEngine.on_activate`` / ``on_refresh_command`` (so every
boundary event runs the exact reference logic on the real state), and
:meth:`~repro.core.fastpath.FastKernel.commit_run` applies bulk updates
to that same state that are provably equal to replaying the events one
at a time.  The per-scheme batching arguments:

* **PARA** is stateless apart from its RNG, so a run of ACTs with no
  successful draw is a pure no-op.  ``Generator.random(n)`` consumes
  the same PCG64 double stream as ``n`` scalar ``.random()`` calls
  (pinned by ``tests/test_para.py``), so the kernel draws the whole
  run's candidate matrix at once, finds the first event with any
  success, rewinds the generator (:meth:`snapshot`/:meth:`restore` of
  the bit-generator state) and re-draws exactly the prefix's worth of
  values -- the generator lands bit-for-bit where the scalar loop
  would, and the first successful event replays scalar (its side draw
  and edge reflection included).
* **TWiCe** counts exactly per row and only mutates shared state on a
  threshold trigger or a REF-tick pruning pass.  The controller never
  lets a REF fall inside a batch, and between events every counter sits
  strictly below ``act_threshold`` (triggers reset to zero), so the
  batch truncates before the first event that would reach the
  threshold -- everything earlier is plain per-row ``+= occurrences``,
  with new entries allocated in first-occurrence order so occupancy
  peaks and capacity violations replay exactly.
* **CBT** shares counters via a split tree, but the leaf partition can
  only change on a split, a trigger, or a window reset.  Resets are
  excluded by the controller (:meth:`next_blocking_ns`), and the batch
  truncates before the first event that could reach a leaf's action or
  split threshold, so within a batch the row->leaf map is constant and
  the update is a ``bincount`` over leaf indices.  The counter pool
  only grows within a window, so "a free counter exists" is constant
  across the batch too.
* **refresh-rate** does all its work at REF ticks; ACTs are pure
  no-ops, so the whole run commits unconditionally.
* **CoMeT** splits rows into the exact-count RAT and the sketch.  RAT
  entries batch exactly like TWiCe's (truncate before the first entry
  that would reach the threshold); any *non*-RAT row must run the
  sketch's hashed update and threshold test, so the batch truncates at
  its first occurrence and replays it scalar.  Hammered rows live in
  the RAT after their first trigger, which is where batching pays.
* **ABACuS** shares one table across banks (``cross_bank = True`` --
  the dispatcher never shards it, but runs it through the vectorized
  cross-bank lane: long same-bank runs use ``commit_run``,
  interleave-heavy stretches use ``commit_run_banked`` over
  multi-bank windows in global order).  Within a same-bank run the
  SAV discipline collapses: the first occurrence of a tracked row
  increments iff the bank's bit is already set, and every later
  occurrence increments (the SAV resets to exactly this bank's bit on
  each bump), so a row's committed occurrences map to ``k`` or
  ``k - 1`` RAC increments.  Across banks the same recurrence runs
  per row group over (bank-bit, SAV) state -- closed form for
  uniform-bank groups, an era-skip scan otherwise.  Either way the
  batch truncates before the first event whose increment would land
  the RAC on a trigger multiple, and before any miss
  (insert/evict/spillover replay scalar).  ABACuS also declares
  ``ref_transparent``: REF ticks never touch its tracking state, so
  the banked lane cuts each bank's events at that bank's *own* next
  auto-refresh instead of the earliest one across banks.

``reference_state(engine)`` produces the comparable table snapshot for
any kernel-covered scheme; the differential subject
(:mod:`repro.verify.fastpath_check`) uses it on both the reference
run's engines and the fast run's kernels.

Picklability is part of the kernel contract: the sharded dispatcher
(``FastMemoryController(shard_workers=N)``) ships each kernel -- with
its wrapped live engine -- to a worker process and writes the mutated
object back, so a kernel must round-trip through ``pickle`` with its
complete state (including ``numpy.Generator`` bit-generator state for
PARA) bit-exactly.  Plain attribute objects satisfy this for free;
avoid open handles, closures or module-level aliasing in new kernels.
"""

from __future__ import annotations

import copy
import math
from typing import Any

import numpy as np

from ..mitigations.abacus import AbacusEntry, AbacusMitigation
from ..mitigations.base import MitigationEngine, RefreshDirective
from ..mitigations.cbt import CBT, _Counter
from ..mitigations.comet import CoMeTMitigation
from ..mitigations.graphene import GrapheneMitigation
from ..mitigations.para import PARA
from ..mitigations.refresh_rate import IncreasedRefreshRate
from ..mitigations.twice import TWiCe, _Entry
from .fastpath import register_kernel, reference_table_state

__all__ = [
    "FastParaKernel",
    "FastTwiceKernel",
    "FastCbtKernel",
    "FastRefreshRateKernel",
    "FastCometKernel",
    "FastAbacusKernel",
    "reference_state",
]


class _WrappedKernel:
    """Base for kernels that wrap the live reference engine.

    The scalar path *is* the reference path: delegation to the real
    ``MitigationEngine`` entry points, stats object shared.  Subclasses
    supply ``commit_run`` (and override ``next_blocking_ns`` /
    ``snapshot`` / ``restore`` where the scheme has windowed or
    draw-consuming state).
    """

    def __init__(self, mitigation: MitigationEngine) -> None:
        self.mitigation = mitigation
        self.name = mitigation.name
        self.stats = mitigation.stats

    def on_activate(self, row: int, time_ns: float) -> list[RefreshDirective]:
        return self.mitigation.on_activate(row, time_ns)

    def on_refresh_command(self, time_ns: float) -> list[RefreshDirective]:
        return self.mitigation.on_refresh_command(time_ns)

    def next_blocking_ns(self) -> float:
        return math.inf

    def table_state(self) -> dict[str, Any]:
        return reference_state(self.mitigation)

    def describe(self) -> str:
        return self.mitigation.describe()


class FastParaKernel(_WrappedKernel):
    """Bulk-draw PARA: commit the no-success prefix of a run.

    Draws the run's full candidate matrix (one column per nonzero
    distance probability, row-major -- the exact order the scalar loop
    consumes draws), then rewinds and repositions the generator at the
    first event with any successful draw.  That event replays scalar,
    reproducing the success draw, the side draw and edge reflection
    from the identical generator state.
    """

    def __init__(self, mitigation: PARA) -> None:
        super().__init__(mitigation)
        self._active_ps = np.array(
            [p for p in mitigation.distance_probabilities if p > 0.0],
            dtype=np.float64,
        )

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        n = len(rows)
        k = len(self._active_ps)
        if k == 0:
            # p == 0 everywhere: the scalar loop draws nothing at all.
            self.stats.activations += n
            return n, []
        rng = self.mitigation._rng
        state = rng.bit_generator.state
        draws = rng.random(n * k).reshape(n, k)
        hits = draws < self._active_ps
        if not hits.any():
            # No successes: the generator has consumed exactly the n*k
            # draws the scalar loop would have -- leave it there.
            self.stats.activations += n
            return n, []
        first = int(np.argmax(hits.any(axis=1)))
        # Rewind past the speculative draws, then consume exactly the
        # committed prefix's worth so the first successful event replays
        # scalar from the identical generator state.
        rng.bit_generator.state = state
        if first:
            rng.random(first * k)
        self.stats.activations += first
        return first, []

    def snapshot(self) -> Any:
        stats = self.stats
        return (
            self.mitigation._rng.bit_generator.state,
            stats.activations,
            stats.refresh_directives,
            stats.rows_refreshed,
            stats.largest_directive_rows,
        )

    def restore(self, state: Any) -> None:
        stats = self.stats
        (
            self.mitigation._rng.bit_generator.state,
            stats.activations,
            stats.refresh_directives,
            stats.rows_refreshed,
            stats.largest_directive_rows,
        ) = state


class FastTwiceKernel(_WrappedKernel):
    """Vectorized TWiCe entry-table update.

    Between events every entry's ``act_count`` sits strictly below
    ``act_threshold`` (a trigger resets it), and pruning only runs at
    REF ticks the controller keeps out of batches, so the batch commits
    per-row occurrence counts up to (not including) the first event
    that would reach the threshold.
    """

    def __init__(self, mitigation: TWiCe) -> None:
        super().__init__(mitigation)

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        m: TWiCe = self.mitigation
        entries = m._entries
        extent = len(rows)
        uniq, first_pos, inverse = np.unique(
            rows, return_index=True, return_inverse=True
        )
        present = np.fromiter(
            (int(u) in entries for u in uniq),
            dtype=np.bool_,
            count=len(uniq),
        )
        counts = np.fromiter(
            (
                entries[int(u)].act_count if present[i] else 0
                for i, u in enumerate(uniq)
            ),
            dtype=np.int64,
            count=len(uniq),
        )
        # Invariant: counts < act_threshold between events; the clamp is
        # belt-and-braces so a violated invariant truncates instead of
        # mis-indexing.
        needed = np.maximum(m.act_threshold - counts, 1)
        occurrences = np.bincount(inverse, minlength=len(uniq))
        crossing = occurrences >= needed
        if crossing.any():
            first_trigger = extent
            for u in np.flatnonzero(crossing):
                positions = np.flatnonzero(inverse == u)
                event_index = int(positions[int(needed[u]) - 1])
                if event_index < first_trigger:
                    first_trigger = event_index
            extent = first_trigger
            if extent == 0:
                return 0, []
            inverse = inverse[:extent]
            occurrences = np.bincount(inverse, minlength=len(uniq))

        # Allocate new entries in first-occurrence order -- the order
        # the scalar loop would insert them -- so the occupancy peak and
        # capacity-violation sequence replay exactly.  (occurrences > 0
        # implies the first occurrence lies inside the prefix.)
        fresh = np.flatnonzero((occurrences > 0) & ~present)
        for u in fresh[np.argsort(first_pos[fresh], kind="stable")]:
            entries[int(uniq[u])] = _Entry(act_count=0, life=0)
            if len(entries) > m.max_entries:
                m.capacity_violations += 1
            if len(entries) > m.peak_occupancy:
                m.peak_occupancy = len(entries)
        for u in np.flatnonzero(occurrences):
            entries[int(uniq[u])].act_count += int(occurrences[u])
        self.stats.activations += extent
        return extent, []

    def snapshot(self) -> Any:
        m: TWiCe = self.mitigation
        return (
            {
                row: (entry.act_count, entry.life)
                for row, entry in m._entries.items()
            },
            m.peak_occupancy,
            m.capacity_violations,
            m.pruned_entries,
            copy.copy(self.stats),
        )

    def restore(self, state: Any) -> None:
        m: TWiCe = self.mitigation
        entry_state, m.peak_occupancy, m.capacity_violations, (
            m.pruned_entries
        ), stats = state
        m._entries = {
            row: _Entry(act_count=count, life=life)
            for row, (count, life) in entry_state.items()
        }
        self.stats.__dict__.update(stats.__dict__)


class FastCbtKernel(_WrappedKernel):
    """Counter-tree update over ``np.bincount`` leaf segments.

    The row->leaf map is a ``searchsorted`` over the (sorted) leaf
    starts; it can only change on a split, trigger, or window reset,
    all of which truncate the batch, so one map serves the whole batch.
    """

    def __init__(self, mitigation: CBT) -> None:
        super().__init__(mitigation)

    def next_blocking_ns(self) -> float:
        m: CBT = self.mitigation
        return (m._current_window + 1) * m._window_length_ns

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        m: CBT = self.mitigation
        leaves = m._leaves
        extent = len(rows)
        starts = np.fromiter(
            (leaf.start for leaf in leaves),
            dtype=np.int64,
            count=len(leaves),
        )
        leaf_idx = np.searchsorted(starts, rows, side="right") - 1
        occurrences = np.bincount(leaf_idx, minlength=len(leaves))
        # The pool only grows within a window; no split commits in a
        # batch, so "a free counter exists" is constant here.
        pool_free = len(leaves) < m.num_counters
        hot = np.flatnonzero(occurrences)
        first_special = extent
        for l in hot:
            leaf = leaves[int(l)]
            ceiling = m.action_threshold
            if (
                pool_free
                and leaf.size > 1
                and leaf.level < m.num_levels - 1
            ):
                ceiling = min(ceiling, m.split_threshold(leaf.level))
            needed = max(1, ceiling - leaf.count)
            if int(occurrences[l]) >= needed:
                positions = np.flatnonzero(leaf_idx == l)
                event_index = int(positions[needed - 1])
                if event_index < first_special:
                    first_special = event_index
        if first_special < extent:
            extent = first_special
            if extent == 0:
                return 0, []
            occurrences = np.bincount(
                leaf_idx[:extent], minlength=len(leaves)
            )
        for l in np.flatnonzero(occurrences):
            leaves[int(l)].count += int(occurrences[l])
        self.stats.activations += extent
        return extent, []

    def snapshot(self) -> Any:
        m: CBT = self.mitigation
        return (
            m.leaf_snapshot(),
            m._current_window,
            m.splits,
            m.window_resets,
            copy.copy(self.stats),
        )

    def restore(self, state: Any) -> None:
        m: CBT = self.mitigation
        leaf_state, m._current_window, m.splits, m.window_resets, (
            stats
        ) = state
        m._leaves = [
            _Counter(start, size, level, count)
            for start, size, level, count in leaf_state
        ]
        self.stats.__dict__.update(stats.__dict__)


class FastRefreshRateKernel(_WrappedKernel):
    """Refresh-rate ACTs are no-ops; commit the whole run."""

    #: ACTs never change this scheme's decisions, so a zero-consumption
    #: vector failure is always a *timing* boundary (REF pop, blocked
    #: bank), never a miss-heavy stream: the lane skips its exponential
    #: scalar back-off and retries vectorizing immediately.
    act_transparent = True

    def __init__(self, mitigation: IncreasedRefreshRate) -> None:
        super().__init__(mitigation)

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        self.stats.activations += len(rows)
        return len(rows), []

    def snapshot(self) -> Any:
        return (self.mitigation._pointer, copy.copy(self.stats))

    def restore(self, state: Any) -> None:
        self.mitigation._pointer, stats = state
        self.stats.__dict__.update(stats.__dict__)


class FastCometKernel(_WrappedKernel):
    """Batched RAT updates; sketch-path rows replay scalar.

    Between events every RAT entry sits strictly below the threshold
    (triggers re-arm to zero), so the batch commits per-row occurrence
    counts up to (not including) the first event that would reach the
    threshold -- and truncates at the first occurrence of any row
    *outside* the RAT, whose hashed sketch update and promotion test
    run scalar on the real state.
    """

    def __init__(self, mitigation: CoMeTMitigation) -> None:
        super().__init__(mitigation)

    def next_blocking_ns(self) -> float:
        m: CoMeTMitigation = self.mitigation
        return (m.current_window + 1) * m.window_len

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        m: CoMeTMitigation = self.mitigation
        rat = m.rat
        extent = len(rows)
        uniq, first_pos, inverse = np.unique(
            rows, return_index=True, return_inverse=True
        )
        present = np.fromiter(
            (int(u) in rat for u in uniq),
            dtype=np.bool_,
            count=len(uniq),
        )
        if not present.all():
            # A sketch-path row: everything before its first occurrence
            # is pure RAT arithmetic; the miss itself replays scalar.
            extent = int(first_pos[~present].min())
            if extent == 0:
                return 0, []
            inverse = inverse[:extent]
        counts = np.fromiter(
            (rat[int(u)] if present[i] else 0 for i, u in enumerate(uniq)),
            dtype=np.int64,
            count=len(uniq),
        )
        # Invariant: counts < threshold between events; clamp so a
        # violated invariant truncates instead of mis-indexing.
        needed = np.maximum(m.threshold - counts, 1)
        occurrences = np.bincount(inverse, minlength=len(uniq))
        crossing = occurrences >= needed
        if crossing.any():
            first_trigger = extent
            for u in np.flatnonzero(crossing):
                positions = np.flatnonzero(inverse == u)
                event_index = int(positions[int(needed[u]) - 1])
                if event_index < first_trigger:
                    first_trigger = event_index
            extent = first_trigger
            if extent == 0:
                return 0, []
            occurrences = np.bincount(
                inverse[:extent], minlength=len(uniq)
            )
        for u in np.flatnonzero(occurrences):
            rat[int(uniq[u])] += int(occurrences[u])
        self.stats.activations += extent
        return extent, []

    def snapshot(self) -> Any:
        m: CoMeTMitigation = self.mitigation
        return (
            m.sketch._table.copy(),
            dict(m.rat),
            m.current_window,
            copy.copy(m.cstats),
            copy.copy(self.stats),
        )

    def restore(self, state: Any) -> None:
        m: CoMeTMitigation = self.mitigation
        table, rat, m.current_window, cstats, stats = state
        m.sketch._table[:] = table
        m.rat = dict(rat)
        m.cstats.__dict__.update(cstats.__dict__)
        self.stats.__dict__.update(stats.__dict__)


class FastAbacusKernel(_WrappedKernel):
    """Batched shared-table RAC updates for one bank's ABACuS view.

    Declares ``cross_bank``: the wrapped engine mutates rank-level
    state, so the dispatcher must execute same-bank runs in global
    order on a single lane (see ``FastMemoryController``).  Within one
    same-bank run a tracked row's RAC gains ``k`` increments when the
    bank's SAV bit starts set, else ``k - 1`` (the first occurrence
    only claims the bit); the batch truncates before the first event
    whose increment lands on a trigger multiple, and before any miss.
    """

    cross_bank = True

    #: REF ticks never touch ABACuS tracking state (no
    #: ``_process_refresh_command`` override), so the banked lane may
    #: cut each bank's lane at that bank's *own* next auto-refresh
    #: instead of the earliest REF across all banks -- the tick is
    #: forwarded by the cut event's scalar replay, as in per-bank lanes.
    ref_transparent = True

    def __init__(self, mitigation: AbacusMitigation) -> None:
        super().__init__(mitigation)

    def next_blocking_ns(self) -> float:
        state = self.mitigation.state
        return (state.current_window + 1) * state.window_ns

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        m: AbacusMitigation = self.mitigation
        state = m.state
        entries = state.entries
        bit = 1 << m.bank
        extent = len(rows)
        uniq, first_pos, inverse = np.unique(
            rows, return_index=True, return_inverse=True
        )
        present = np.fromiter(
            (int(u) in entries for u in uniq),
            dtype=np.bool_,
            count=len(uniq),
        )
        if not present.all():
            # Misses mutate shared Misra-Gries state (insert, evict,
            # spillover): scalar territory.
            extent = int(first_pos[~present].min())
            if extent == 0:
                return 0, []
            inverse = inverse[:extent]
        has_bit = np.fromiter(
            (
                bool(entries[int(u)].sav & bit) if present[i] else False
                for i, u in enumerate(uniq)
            ),
            dtype=np.bool_,
            count=len(uniq),
        )
        racs = np.fromiter(
            (entries[int(u)].rac if present[i] else 0
             for i, u in enumerate(uniq)),
            dtype=np.int64,
            count=len(uniq),
        )
        # Increments to the next trigger multiple; occurrence count
        # needed is one more when the first occurrence only sets the
        # bit.  (rac % T == 0 means the last bump just triggered, so a
        # full period remains.)
        to_next = state.threshold - racs % state.threshold
        needed = np.maximum(to_next + np.where(has_bit, 0, 1), 1)
        occurrences = np.bincount(inverse, minlength=len(uniq))
        crossing = occurrences >= needed
        if crossing.any():
            first_trigger = extent
            for u in np.flatnonzero(crossing):
                positions = np.flatnonzero(inverse == u)
                event_index = int(positions[int(needed[u]) - 1])
                if event_index < first_trigger:
                    first_trigger = event_index
            extent = first_trigger
            if extent == 0:
                return 0, []
            occurrences = np.bincount(
                inverse[:extent], minlength=len(uniq)
            )
        for u in np.flatnonzero(occurrences):
            entry = entries[int(uniq[u])]
            k = int(occurrences[u])
            if has_bit[u]:
                increments = k
            else:
                increments = k - 1
                state.stats.sav_sets += 1
            entry.rac += increments
            if increments:
                entry.sav = bit
                state.stats.rac_increments += increments
            else:
                entry.sav |= bit
        state.stats.observations += extent
        self.stats.activations += extent
        return extent, []

    def commit_run_banked(
        self, times: np.ndarray, rows: np.ndarray, banks: np.ndarray
    ) -> int:
        """Global-order batch commit across banks (cross-bank lane).

        Same contract as ``commit_run`` -- consume the longest prefix
        whose tracking outcomes the bulk update reproduces exactly,
        truncating before misses and trigger multiples -- except events
        may interleave banks.  The caller owns per-bank
        ``MitigationStats.activations`` (it knows each bank's committed
        position count); this method owns only the shared-table side.

        Per reference observe semantics, an event on bank ``b`` against
        a tracked row increments the RAC iff bit ``b`` is in the SAV
        (then resets the SAV to ``{b}``), else it just ORs the bit in.
        Within one row group in global order that reduces to: event
        ``t`` increments iff its bank occurred at or after the last
        increment position ``L`` (which wiped the SAV to that event's
        bit) -- or, before any increment, iff its bank occurred earlier
        or started in the SAV.  Uniform-bank groups (every occurrence
        on one bank) collapse to closed form: every occurrence
        increments except a bit-less first.  Mixed-bank groups
        (round-robin hammers share rows across banks) walk increment to
        increment via :meth:`_scan_mixed` in O(increments), not
        O(events).
        """
        m: AbacusMitigation = self.mitigation
        state = m.state
        entries = state.entries
        threshold = state.threshold
        extent = len(rows)
        uniq, first_pos, inverse = np.unique(
            rows, return_index=True, return_inverse=True
        )
        present = np.fromiter(
            (int(u) in entries for u in uniq),
            dtype=np.bool_,
            count=len(uniq),
        )
        if not present.all():
            # Misses mutate shared Misra-Gries state (insert, evict,
            # spillover): scalar territory.
            extent = int(first_pos[~present].min())
            if extent == 0:
                return 0
        bits = np.int64(1) << banks[:extent]

        # Phase 1: earliest trigger across row groups.  Each group's
        # first trigger is computed independently; the global minimum
        # is the true first trigger because every event before it has
        # an outcome unaffected by anything at or after it.
        plans = self._group_plans(
            uniq, inverse[:extent], bits, entries, threshold
        )
        cut = extent
        for positions, _, _, _, trigger in plans:
            if trigger is not None:
                cut = min(cut, int(positions[trigger]))
        if cut == 0:
            return 0
        if cut < extent:
            # Re-plan on the trigger-free prefix (every group's
            # remaining events precede the first trigger, so the new
            # plans carry no triggers).
            extent = cut
            bits = bits[:extent]
            plans = self._group_plans(
                uniq, inverse[:extent], bits, entries, threshold
            )

        # Phase 2: apply.
        for positions, entry, count, last_inc, _ in plans:
            entry.rac += count
            if last_inc == -2:
                # No increment: the SAV only accumulated bits.
                entry.sav |= int(np.bitwise_or.reduce(bits[positions]))
            else:
                # The increment at ``last_inc`` wiped the SAV to that
                # event's bit; later (non-increment) events OR theirs.
                entry.sav = int(
                    np.bitwise_or.reduce(bits[positions[last_inc:]])
                )
            state.stats.rac_increments += count
            state.stats.sav_sets += len(positions) - count
        state.stats.observations += extent
        return extent

    def _group_plans(self, uniq, inverse, bits, entries, threshold):
        """Per row group: positions, entry, increment count, last
        increment index (group-local, ``-2`` if none) and first trigger
        index (group-local, ``None`` if none)."""
        if not len(inverse):
            return []
        order = np.argsort(inverse, kind="stable")
        sorted_inv = inverse[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_inv[1:] != sorted_inv[:-1]]
        )
        ends = np.append(starts[1:], len(inverse))
        plans = []
        for s, e in zip(starts, ends):
            positions = order[s:e]
            entry = entries[int(uniq[sorted_inv[s]])]
            group_bits = bits[positions]
            rac0 = entry.rac
            n = len(positions)
            if (group_bits == group_bits[0]).all():
                has_bit = bool(entry.sav & int(group_bits[0]))
                count = n if has_bit else n - 1
                last_inc = n - 1 if count else -2
                trigger = None
                needed = (
                    threshold - rac0 % threshold + (0 if has_bit else 1)
                )
                if needed <= n:
                    trigger = needed - 1
            else:
                count, last_inc, trigger = self._scan_mixed(
                    entry.sav, rac0, group_bits, threshold
                )
            plans.append((positions, entry, count, last_inc, trigger))
        return plans

    @staticmethod
    def _scan_mixed(sav0, rac0, group_bits, threshold):
        """Walk one mixed-bank row group increment to increment.

        An event increments iff its bank occurred at or after the last
        increment ``L`` (or, while ``L == -2``, iff its bank occurred
        before or starts in the SAV); each increment wipes the SAV, so
        the *next* increment after ``L`` is the earliest event whose
        same-bank predecessor sits at or after ``L`` -- that is
        ``min(nxt[p] for p >= L)``, a precomputed suffix minimum of the
        same-bank successor array.  The walk therefore costs one step
        per increment, with all per-event work vectorized.

        Returns ``(count, last_inc, trigger)``: increments performed,
        group-local index of the last one (``-2`` if none), group-local
        index of the first trigger (``None`` if none; ``count`` and
        ``last_inc`` are then only valid up to it).
        """
        n = len(group_bits)
        bid = np.unique(group_bits, return_inverse=True)[1]
        order = np.argsort(bid, kind="stable")
        sb = bid[order]
        same = sb[1:] == sb[:-1]
        prev = np.full(n, -2, dtype=np.int64)
        prev[order[1:][same]] = order[:-1][same]
        nxt = np.full(n, n, dtype=np.int64)
        nxt[order[:-1][same]] = order[1:][same]
        firsts = order[np.r_[True, ~same]]
        seeded = (sav0 & group_bits[firsts]) != 0
        prev[firsts[seeded]] = -1
        sufmin_next = np.minimum.accumulate(nxt[::-1])[::-1]
        candidates = np.flatnonzero(prev != -2)
        if not len(candidates):
            return 0, -2, None
        t = int(candidates[0])
        count = 0
        while True:
            count += 1
            if (rac0 + count) % threshold == 0:
                return count, t, t
            step = int(sufmin_next[t])
            if step >= n:
                return count, t, None
            t = step

    def snapshot(self) -> Any:
        state = self.mitigation.state
        return (
            state.tracked(),
            state.spillover,
            state.current_window,
            copy.copy(state.stats),
            copy.copy(self.stats),
        )

    def restore(self, snap: Any) -> None:
        state = self.mitigation.state
        tracked, state.spillover, state.current_window, sstats, stats = snap
        state.entries = {
            row: AbacusEntry(rac=rac, sav=sav)
            for row, (rac, sav) in tracked.items()
        }
        state.stats.__dict__.update(sstats.__dict__)
        self.stats.__dict__.update(stats.__dict__)


def reference_state(engine: Any) -> dict[str, Any]:
    """Comparable tracking-table snapshot for any kernel-covered scheme.

    Works on both the reference engine objects and the fast kernels'
    wrapped engines (they are the same classes); Graphene's replicated
    kernel implements the equivalent ``table_state`` itself.
    """
    if isinstance(engine, GrapheneMitigation):
        return reference_table_state(engine)
    if isinstance(engine, PARA):
        return {
            "rng": engine._rng.bit_generator.state,
            "activations": engine.stats.activations,
            "directives": engine.stats.refresh_directives,
        }
    if isinstance(engine, TWiCe):
        return {
            "entries": {
                row: (entry.act_count, entry.life)
                for row, entry in engine._entries.items()
            },
            "peak": engine.peak_occupancy,
            "violations": engine.capacity_violations,
            "pruned": engine.pruned_entries,
        }
    if isinstance(engine, CBT):
        return {
            "leaves": engine.leaf_snapshot(),
            "window": engine._current_window,
            "splits": engine.splits,
            "resets": engine.window_resets,
        }
    if isinstance(engine, IncreasedRefreshRate):
        return {"pointer": engine._pointer}
    if isinstance(engine, CoMeTMitigation):
        return {
            # bytes for exact, hashable array comparison
            "sketch": engine.sketch._table.tobytes(),
            "rat": dict(engine.rat),
            "window": engine.current_window,
            "resets": engine.cstats.window_resets,
            "sketch_triggers": engine.cstats.sketch_triggers,
            "rat_triggers": engine.cstats.rat_triggers,
            "evictions": engine.cstats.rat_evictions,
        }
    if isinstance(engine, AbacusMitigation):
        state = engine.state
        # Shared across banks: every bank reports the same snapshot,
        # so per-bank comparison still covers the whole table.
        return {
            "tracked": state.tracked(),
            "spillover": state.spillover,
            "window": state.current_window,
            "observations": state.stats.observations,
            "rac_increments": state.stats.rac_increments,
            "sav_sets": state.stats.sav_sets,
            "triggers": state.stats.triggers,
            "insertions": state.stats.insertions,
            "evictions": state.stats.evictions,
            "resets": state.stats.window_resets,
        }
    raise TypeError(f"no reference state extractor for {type(engine)!r}")


register_kernel(PARA, FastParaKernel)
register_kernel(TWiCe, FastTwiceKernel)
register_kernel(CBT, FastCbtKernel)
register_kernel(IncreasedRefreshRate, FastRefreshRateKernel)
register_kernel(CoMeTMitigation, FastCometKernel)
register_kernel(AbacusMitigation, FastAbacusKernel)
