"""Batched kernels for the non-Graphene mitigation schemes.

Each kernel here *wraps the live reference engine* rather than
replicating it: the scalar path delegates straight to
``MitigationEngine.on_activate`` / ``on_refresh_command`` (so every
boundary event runs the exact reference logic on the real state), and
:meth:`~repro.core.fastpath.FastKernel.commit_run` applies bulk updates
to that same state that are provably equal to replaying the events one
at a time.  The per-scheme batching arguments:

* **PARA** is stateless apart from its RNG, so a run of ACTs with no
  successful draw is a pure no-op.  ``Generator.random(n)`` consumes
  the same PCG64 double stream as ``n`` scalar ``.random()`` calls
  (pinned by ``tests/test_para.py``), so the kernel draws the whole
  run's candidate matrix at once, finds the first event with any
  success, rewinds the generator (:meth:`snapshot`/:meth:`restore` of
  the bit-generator state) and re-draws exactly the prefix's worth of
  values -- the generator lands bit-for-bit where the scalar loop
  would, and the first successful event replays scalar (its side draw
  and edge reflection included).
* **TWiCe** counts exactly per row and only mutates shared state on a
  threshold trigger or a REF-tick pruning pass.  The controller never
  lets a REF fall inside a batch, and between events every counter sits
  strictly below ``act_threshold`` (triggers reset to zero), so the
  batch truncates before the first event that would reach the
  threshold -- everything earlier is plain per-row ``+= occurrences``,
  with new entries allocated in first-occurrence order so occupancy
  peaks and capacity violations replay exactly.
* **CBT** shares counters via a split tree, but the leaf partition can
  only change on a split, a trigger, or a window reset.  Resets are
  excluded by the controller (:meth:`next_blocking_ns`), and the batch
  truncates before the first event that could reach a leaf's action or
  split threshold, so within a batch the row->leaf map is constant and
  the update is a ``bincount`` over leaf indices.  The counter pool
  only grows within a window, so "a free counter exists" is constant
  across the batch too.
* **refresh-rate** does all its work at REF ticks; ACTs are pure
  no-ops, so the whole run commits unconditionally.

``reference_state(engine)`` produces the comparable table snapshot for
any kernel-covered scheme; the differential subject
(:mod:`repro.verify.fastpath_check`) uses it on both the reference
run's engines and the fast run's kernels.

Picklability is part of the kernel contract: the sharded dispatcher
(``FastMemoryController(shard_workers=N)``) ships each kernel -- with
its wrapped live engine -- to a worker process and writes the mutated
object back, so a kernel must round-trip through ``pickle`` with its
complete state (including ``numpy.Generator`` bit-generator state for
PARA) bit-exactly.  Plain attribute objects satisfy this for free;
avoid open handles, closures or module-level aliasing in new kernels.
"""

from __future__ import annotations

import copy
import math
from typing import Any

import numpy as np

from ..mitigations.base import MitigationEngine, RefreshDirective
from ..mitigations.cbt import CBT, _Counter
from ..mitigations.graphene import GrapheneMitigation
from ..mitigations.para import PARA
from ..mitigations.refresh_rate import IncreasedRefreshRate
from ..mitigations.twice import TWiCe, _Entry
from .fastpath import register_kernel, reference_table_state

__all__ = [
    "FastParaKernel",
    "FastTwiceKernel",
    "FastCbtKernel",
    "FastRefreshRateKernel",
    "reference_state",
]


class _WrappedKernel:
    """Base for kernels that wrap the live reference engine.

    The scalar path *is* the reference path: delegation to the real
    ``MitigationEngine`` entry points, stats object shared.  Subclasses
    supply ``commit_run`` (and override ``next_blocking_ns`` /
    ``snapshot`` / ``restore`` where the scheme has windowed or
    draw-consuming state).
    """

    def __init__(self, mitigation: MitigationEngine) -> None:
        self.mitigation = mitigation
        self.name = mitigation.name
        self.stats = mitigation.stats

    def on_activate(self, row: int, time_ns: float) -> list[RefreshDirective]:
        return self.mitigation.on_activate(row, time_ns)

    def on_refresh_command(self, time_ns: float) -> list[RefreshDirective]:
        return self.mitigation.on_refresh_command(time_ns)

    def next_blocking_ns(self) -> float:
        return math.inf

    def table_state(self) -> dict[str, Any]:
        return reference_state(self.mitigation)

    def describe(self) -> str:
        return self.mitigation.describe()


class FastParaKernel(_WrappedKernel):
    """Bulk-draw PARA: commit the no-success prefix of a run.

    Draws the run's full candidate matrix (one column per nonzero
    distance probability, row-major -- the exact order the scalar loop
    consumes draws), then rewinds and repositions the generator at the
    first event with any successful draw.  That event replays scalar,
    reproducing the success draw, the side draw and edge reflection
    from the identical generator state.
    """

    def __init__(self, mitigation: PARA) -> None:
        super().__init__(mitigation)
        self._active_ps = np.array(
            [p for p in mitigation.distance_probabilities if p > 0.0],
            dtype=np.float64,
        )

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        n = len(rows)
        k = len(self._active_ps)
        if k == 0:
            # p == 0 everywhere: the scalar loop draws nothing at all.
            self.stats.activations += n
            return n, []
        rng = self.mitigation._rng
        state = rng.bit_generator.state
        draws = rng.random(n * k).reshape(n, k)
        hits = draws < self._active_ps
        if not hits.any():
            # No successes: the generator has consumed exactly the n*k
            # draws the scalar loop would have -- leave it there.
            self.stats.activations += n
            return n, []
        first = int(np.argmax(hits.any(axis=1)))
        # Rewind past the speculative draws, then consume exactly the
        # committed prefix's worth so the first successful event replays
        # scalar from the identical generator state.
        rng.bit_generator.state = state
        if first:
            rng.random(first * k)
        self.stats.activations += first
        return first, []

    def snapshot(self) -> Any:
        stats = self.stats
        return (
            self.mitigation._rng.bit_generator.state,
            stats.activations,
            stats.refresh_directives,
            stats.rows_refreshed,
            stats.largest_directive_rows,
        )

    def restore(self, state: Any) -> None:
        stats = self.stats
        (
            self.mitigation._rng.bit_generator.state,
            stats.activations,
            stats.refresh_directives,
            stats.rows_refreshed,
            stats.largest_directive_rows,
        ) = state


class FastTwiceKernel(_WrappedKernel):
    """Vectorized TWiCe entry-table update.

    Between events every entry's ``act_count`` sits strictly below
    ``act_threshold`` (a trigger resets it), and pruning only runs at
    REF ticks the controller keeps out of batches, so the batch commits
    per-row occurrence counts up to (not including) the first event
    that would reach the threshold.
    """

    def __init__(self, mitigation: TWiCe) -> None:
        super().__init__(mitigation)

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        m: TWiCe = self.mitigation
        entries = m._entries
        extent = len(rows)
        uniq, first_pos, inverse = np.unique(
            rows, return_index=True, return_inverse=True
        )
        present = np.fromiter(
            (int(u) in entries for u in uniq),
            dtype=np.bool_,
            count=len(uniq),
        )
        counts = np.fromiter(
            (
                entries[int(u)].act_count if present[i] else 0
                for i, u in enumerate(uniq)
            ),
            dtype=np.int64,
            count=len(uniq),
        )
        # Invariant: counts < act_threshold between events; the clamp is
        # belt-and-braces so a violated invariant truncates instead of
        # mis-indexing.
        needed = np.maximum(m.act_threshold - counts, 1)
        occurrences = np.bincount(inverse, minlength=len(uniq))
        crossing = occurrences >= needed
        if crossing.any():
            first_trigger = extent
            for u in np.flatnonzero(crossing):
                positions = np.flatnonzero(inverse == u)
                event_index = int(positions[int(needed[u]) - 1])
                if event_index < first_trigger:
                    first_trigger = event_index
            extent = first_trigger
            if extent == 0:
                return 0, []
            inverse = inverse[:extent]
            occurrences = np.bincount(inverse, minlength=len(uniq))

        # Allocate new entries in first-occurrence order -- the order
        # the scalar loop would insert them -- so the occupancy peak and
        # capacity-violation sequence replay exactly.  (occurrences > 0
        # implies the first occurrence lies inside the prefix.)
        fresh = np.flatnonzero((occurrences > 0) & ~present)
        for u in fresh[np.argsort(first_pos[fresh], kind="stable")]:
            entries[int(uniq[u])] = _Entry(act_count=0, life=0)
            if len(entries) > m.max_entries:
                m.capacity_violations += 1
            if len(entries) > m.peak_occupancy:
                m.peak_occupancy = len(entries)
        for u in np.flatnonzero(occurrences):
            entries[int(uniq[u])].act_count += int(occurrences[u])
        self.stats.activations += extent
        return extent, []

    def snapshot(self) -> Any:
        m: TWiCe = self.mitigation
        return (
            {
                row: (entry.act_count, entry.life)
                for row, entry in m._entries.items()
            },
            m.peak_occupancy,
            m.capacity_violations,
            m.pruned_entries,
            copy.copy(self.stats),
        )

    def restore(self, state: Any) -> None:
        m: TWiCe = self.mitigation
        entry_state, m.peak_occupancy, m.capacity_violations, (
            m.pruned_entries
        ), stats = state
        m._entries = {
            row: _Entry(act_count=count, life=life)
            for row, (count, life) in entry_state.items()
        }
        self.stats.__dict__.update(stats.__dict__)


class FastCbtKernel(_WrappedKernel):
    """Counter-tree update over ``np.bincount`` leaf segments.

    The row->leaf map is a ``searchsorted`` over the (sorted) leaf
    starts; it can only change on a split, trigger, or window reset,
    all of which truncate the batch, so one map serves the whole batch.
    """

    def __init__(self, mitigation: CBT) -> None:
        super().__init__(mitigation)

    def next_blocking_ns(self) -> float:
        m: CBT = self.mitigation
        return (m._current_window + 1) * m._window_length_ns

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        m: CBT = self.mitigation
        leaves = m._leaves
        extent = len(rows)
        starts = np.fromiter(
            (leaf.start for leaf in leaves),
            dtype=np.int64,
            count=len(leaves),
        )
        leaf_idx = np.searchsorted(starts, rows, side="right") - 1
        occurrences = np.bincount(leaf_idx, minlength=len(leaves))
        # The pool only grows within a window; no split commits in a
        # batch, so "a free counter exists" is constant here.
        pool_free = len(leaves) < m.num_counters
        hot = np.flatnonzero(occurrences)
        first_special = extent
        for l in hot:
            leaf = leaves[int(l)]
            ceiling = m.action_threshold
            if (
                pool_free
                and leaf.size > 1
                and leaf.level < m.num_levels - 1
            ):
                ceiling = min(ceiling, m.split_threshold(leaf.level))
            needed = max(1, ceiling - leaf.count)
            if int(occurrences[l]) >= needed:
                positions = np.flatnonzero(leaf_idx == l)
                event_index = int(positions[needed - 1])
                if event_index < first_special:
                    first_special = event_index
        if first_special < extent:
            extent = first_special
            if extent == 0:
                return 0, []
            occurrences = np.bincount(
                leaf_idx[:extent], minlength=len(leaves)
            )
        for l in np.flatnonzero(occurrences):
            leaves[int(l)].count += int(occurrences[l])
        self.stats.activations += extent
        return extent, []

    def snapshot(self) -> Any:
        m: CBT = self.mitigation
        return (
            m.leaf_snapshot(),
            m._current_window,
            m.splits,
            m.window_resets,
            copy.copy(self.stats),
        )

    def restore(self, state: Any) -> None:
        m: CBT = self.mitigation
        leaf_state, m._current_window, m.splits, m.window_resets, (
            stats
        ) = state
        m._leaves = [
            _Counter(start, size, level, count)
            for start, size, level, count in leaf_state
        ]
        self.stats.__dict__.update(stats.__dict__)


class FastRefreshRateKernel(_WrappedKernel):
    """Refresh-rate ACTs are no-ops; commit the whole run."""

    def __init__(self, mitigation: IncreasedRefreshRate) -> None:
        super().__init__(mitigation)

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        self.stats.activations += len(rows)
        return len(rows), []

    def snapshot(self) -> Any:
        return (self.mitigation._pointer, copy.copy(self.stats))

    def restore(self, state: Any) -> None:
        self.mitigation._pointer, stats = state
        self.stats.__dict__.update(stats.__dict__)


def reference_state(engine: Any) -> dict[str, Any]:
    """Comparable tracking-table snapshot for any kernel-covered scheme.

    Works on both the reference engine objects and the fast kernels'
    wrapped engines (they are the same classes); Graphene's replicated
    kernel implements the equivalent ``table_state`` itself.
    """
    if isinstance(engine, GrapheneMitigation):
        return reference_table_state(engine)
    if isinstance(engine, PARA):
        return {
            "rng": engine._rng.bit_generator.state,
            "activations": engine.stats.activations,
            "directives": engine.stats.refresh_directives,
        }
    if isinstance(engine, TWiCe):
        return {
            "entries": {
                row: (entry.act_count, entry.life)
                for row, entry in engine._entries.items()
            },
            "peak": engine.peak_occupancy,
            "violations": engine.capacity_violations,
            "pruned": engine.pruned_entries,
        }
    if isinstance(engine, CBT):
        return {
            "leaves": engine.leaf_snapshot(),
            "window": engine._current_window,
            "splits": engine.splits,
            "resets": engine.window_resets,
        }
    if isinstance(engine, IncreasedRefreshRate):
        return {"pointer": engine._pointer}
    raise TypeError(f"no reference state extractor for {type(engine)!r}")


register_kernel(PARA, FastParaKernel)
register_kernel(TWiCe, FastTwiceKernel)
register_kernel(CBT, FastCbtKernel)
register_kernel(IncreasedRefreshRate, FastRefreshRateKernel)
