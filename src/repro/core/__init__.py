"""Graphene itself: the paper's primary contribution.

* :class:`MisraGriesTable` -- the frequent-elements tracker (Section III-A);
* :class:`GrapheneConfig` -- all parameter derivations (Sections III-B/D, IV-C);
* :class:`GrapheneEngine` -- per-bank prevention engine (Section III-B);
* :class:`HardwareGrapheneTable` -- CAM-level model with overflow bits
  (Section IV-B);
* :class:`InstrumentedGrapheneEngine` -- executable proof obligations
  (Section III-C);
* area and energy models reproducing Tables IV and V.
"""

from .area import (
    CbtAreaModel,
    GrapheneAreaModel,
    PAPER_TABLE_IV_BITS_PER_BANK,
    TableArea,
    TwiceAreaModel,
    cbt_counters_for_threshold,
    table_size_series,
)
from .config import PAPER_TRH_DDR3, PAPER_TRH_DDR4, GrapheneConfig
from .energy_model import EnergyReport, GrapheneEnergyModel
from .graphene import GrapheneEngine, GrapheneStats, VictimRefreshRequest
from .guarantees import GuaranteeViolation, InstrumentedGrapheneEngine
from .hardware_table import (
    CamOpCounts,
    HardwareGrapheneTable,
    TableUpdateOutcome,
)
from .misra_gries import MisraGriesTable
from .rank_table import (
    RankLevelEngine,
    RankTableConfig,
    compare_rank_vs_per_bank,
)
from .tracker_engine import TrackerBackedEngine, build_tracker
from .trackers import (
    CountMinSketch,
    LossyCountingTable,
    SpaceSavingTable,
    tracker_table_bits,
)

__all__ = [
    "MisraGriesTable",
    "GrapheneConfig",
    "PAPER_TRH_DDR4",
    "PAPER_TRH_DDR3",
    "GrapheneEngine",
    "GrapheneStats",
    "VictimRefreshRequest",
    "InstrumentedGrapheneEngine",
    "GuaranteeViolation",
    "HardwareGrapheneTable",
    "TableUpdateOutcome",
    "CamOpCounts",
    "GrapheneAreaModel",
    "TwiceAreaModel",
    "CbtAreaModel",
    "TableArea",
    "PAPER_TABLE_IV_BITS_PER_BANK",
    "cbt_counters_for_threshold",
    "table_size_series",
    "GrapheneEnergyModel",
    "EnergyReport",
    "TrackerBackedEngine",
    "build_tracker",
    "SpaceSavingTable",
    "LossyCountingTable",
    "CountMinSketch",
    "tracker_table_bits",
    "RankTableConfig",
    "RankLevelEngine",
    "compare_rank_vs_per_bank",
]
