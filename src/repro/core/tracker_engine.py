"""Graphene-style prevention engine over any frequent-elements tracker.

Generalizes :class:`~repro.core.graphene.GrapheneEngine` to the
Section-VI design space: the same window-reset + threshold-crossing
protection loop, parameterized by the tracking substrate (Misra-Gries,
Space-Saving, Lossy Counting or a Count-Min sketch).

The protection argument carries over for any tracker whose estimate is
an **upper bound on the true count**: a row's actual count cannot reach
``T`` without its estimate reaching ``T``, and a threshold-crossing
estimate always produces a victim refresh.  What differs per tracker is
the *false positive* rate (sketches collide; Lossy Counting's deltas
inflate) and the hardware story -- which is what the comparison bench
measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..telemetry import runtime as _telemetry
from ..telemetry.events import (
    NrrEmit,
    SpilloverBump,
    TableEvict,
    TableInsert,
    WindowReset,
)
from .config import GrapheneConfig
from .graphene import VictimRefreshRequest
from .misra_gries import MisraGriesTable
from .trackers import (
    AggressorTracker,
    CountMinSketch,
    LossyCountingTable,
    SpaceSavingTable,
)

__all__ = ["TrackerBackedEngine", "build_tracker"]


def build_tracker(kind: str, config: GrapheneConfig) -> AggressorTracker:
    """Construct a tracking substrate sized for ``config``.

    Args:
        kind: "misra-gries", "space-saving", "lossy-counting" or
            "count-min".
        config: Supplies ``W`` and ``T`` for the sizing rules:
            Misra-Gries needs ``> W/T - 1`` entries, Space-Saving
            ``>= W/T``, Lossy Counting ``epsilon = T/W`` (minus one
            count of slack so boundary deletions cannot erase a row
            exactly at the threshold), Count-Min a width that keeps the
            expected collision inflation under ``T``.
    """
    w = config.max_activations_per_window
    t = config.tracking_threshold
    if kind == "misra-gries":
        return MisraGriesTable(config.num_entries)
    if kind == "space-saving":
        return SpaceSavingTable(max(1, -(-w // t)))
    if kind == "lossy-counting":
        return LossyCountingTable(epsilon=max(1e-9, (t - 1) / max(t, w)))
    if kind == "count-min":
        # Expected inflation ~ W/width per row; keep it below T/2 so
        # benign rows rarely cross, with 4 hash rows for the min.
        width = max(16, 2 * -(-w // t))
        return CountMinSketch(width=width, depth=4)
    raise ValueError(
        f"unknown tracker kind {kind!r}; choose misra-gries, "
        "space-saving, lossy-counting or count-min"
    )


@dataclass
class TrackerEngineStats:
    activations: int = 0
    victim_refresh_requests: int = 0
    victim_rows_refreshed: int = 0
    window_resets: int = 0
    #: Misra-Gries-only: observations that grew the spillover count.
    spillover_bumps: int = 0


class TrackerBackedEngine:
    """The Graphene protection loop over a pluggable tracker.

    Because generic trackers do not expose Misra-Gries' exact
    "count just became a multiple of T" transition, the engine detects
    crossings from the estimate returned by ``observe``: a refresh is
    emitted whenever the estimate enters a new multiple-of-T stratum
    for that row within the window.  Per-row last-stratum state is kept
    in a side dict (hardware would fold this into the entry, as the
    overflow bit does for Misra-Gries).
    """

    def __init__(
        self,
        config: GrapheneConfig,
        tracker: AggressorTracker | str = "misra-gries",
        bank: int = 0,
    ) -> None:
        self.config = config
        self.bank = bank
        if isinstance(tracker, str):
            tracker = build_tracker(tracker, config)
        self.tracker = tracker
        self.threshold = config.tracking_threshold
        self.rows = config.rows_per_bank
        self._window_length_ns = config.reset_window_ns
        self._current_window = 0
        #: row -> highest multiple-of-T stratum already refreshed for.
        self._strata: dict[int, int] = {}
        self.stats = TrackerEngineStats()

    def on_activate(self, row: int, time_ns: float) -> list[VictimRefreshRequest]:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        bus = _telemetry.BUS
        window = int(time_ns // self._window_length_ns)
        if window != self._current_window:
            if window < self._current_window:
                raise ValueError("time moved backwards across windows")
            if bus is not None:
                tracked = getattr(self.tracker, "__len__", None)
                bus.publish(
                    WindowReset(
                        time_ns=time_ns,
                        bank=self.bank,
                        window=window,
                        tracked_rows=tracked() if tracked else 0,
                        spillover=getattr(self.tracker, "spillover", 0),
                    )
                )
            self.tracker.reset()
            self._strata.clear()
            self._current_window = window
            self.stats.window_resets += 1
        self.stats.activations += 1

        if bus is not None:
            was_tracked = row in self.tracker
            capacity = getattr(self.tracker, "capacity", None)
            was_full = (
                capacity is not None and len(self.tracker) >= capacity
            )
        estimate = self.tracker.observe(row)
        if estimate is None:
            self.stats.spillover_bumps += 1
            if bus is not None:
                bus.publish(
                    SpilloverBump(
                        time_ns=time_ns,
                        bank=self.bank,
                        row=row,
                        spillover=getattr(self.tracker, "spillover", 0),
                    )
                )
            return []
        if bus is not None and not was_tracked and row in self.tracker:
            if was_full:
                bus.publish(
                    TableEvict(
                        time_ns=time_ns,
                        bank=self.bank,
                        row=getattr(self.tracker, "last_evicted", None),
                        inherited_count=estimate - 1,
                        new_row=row,
                    )
                )
            bus.publish(
                TableInsert(
                    time_ns=time_ns, bank=self.bank, row=row, count=estimate
                )
            )
        stratum = estimate // self.threshold
        if stratum <= self._strata.get(row, 0):
            return []
        self._strata[row] = stratum
        victims = self.victim_rows_of(row)
        self.stats.victim_refresh_requests += 1
        self.stats.victim_rows_refreshed += len(victims)
        if bus is not None:
            bus.publish(
                NrrEmit(
                    time_ns=time_ns,
                    bank=self.bank,
                    aggressor_row=row,
                    victim_rows=len(victims),
                    reason=f"T x {stratum}",
                )
            )
        return [
            VictimRefreshRequest(
                bank=self.bank,
                aggressor_row=row,
                victim_rows=victims,
                time_ns=time_ns,
                threshold_multiple=stratum,
            )
        ]

    def victim_rows_of(self, aggressor_row: int) -> tuple[int, ...]:
        radius = self.config.blast_radius
        return tuple(
            victim
            for distance in range(1, radius + 1)
            for victim in (aggressor_row - distance, aggressor_row + distance)
            if 0 <= victim < self.rows
        )

    def describe(self) -> str:
        return (
            f"tracker-engine({type(self.tracker).__name__}, "
            f"T={self.threshold})"
        )
