"""CAM-level hardware model of Graphene's table (paper Section IV-B).

:class:`HardwareGrapheneTable` mirrors the structure of Fig. 4 -- an
Address CAM, a Count CAM, per-entry overflow bits, and a spillover
count register -- and executes the pseudo-code of Fig. 5 for every ACT,
counting the CAM operations (searches, reads, writes) each update costs
so the energy model can price them.

The key hardware trick modeled here is the **overflow bit**: instead of
letting counts grow to ``W`` (21 bits), the stored count wraps to zero
each time it reaches ``T``, with a sticky overflow bit marking the
entry.  This works because an entry that ever reached ``T`` can never
be evicted within the window (its true count permanently exceeds the
spillover count -- Lemma 2), so losing the high-order count information
is safe.  The count field then needs only ``ceil(log2(T+1))`` bits
(14 + 1 overflow instead of 21 for the paper's configuration).

An overflowed entry's *stored* count is its true count modulo ``T``,
which could numerically collide with the spillover count; the hardware
masks overflowed entries out of the replacement search, and so does
this model.

Behavioral equivalence with the logical
:class:`~repro.core.misra_gries.MisraGriesTable` (same tracked set,
same trigger times) is asserted in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CamOpCounts", "TableUpdateOutcome", "HardwareGrapheneTable"]


@dataclass
class CamOpCounts:
    """Tally of primitive CAM/SRAM operations, for the energy model."""

    address_searches: int = 0
    count_searches: int = 0
    count_reads: int = 0
    address_writes: int = 0
    count_writes: int = 0
    spillover_increments: int = 0

    def total(self) -> int:
        return (
            self.address_searches
            + self.count_searches
            + self.count_reads
            + self.address_writes
            + self.count_writes
            + self.spillover_increments
        )


@dataclass(frozen=True)
class TableUpdateOutcome:
    """Result of one ``process_activation`` (one ACT)."""

    #: "hit", "replace", or "spill" -- which Fig. 5 path was taken.
    path: str
    #: True if the entry's (true) estimated count reached a multiple of
    #: T with this update, i.e. victim refreshes must be issued.
    triggered: bool
    #: The entry slot that was updated (None on the spill path).
    slot: int | None
    #: The entry's true estimated count after the update (None on spill).
    estimated_count: int | None


class _Entry:
    """One table slot: address + wrapped count + sticky overflow state."""

    __slots__ = ("address", "count", "overflow", "wraps")

    def __init__(self) -> None:
        self.address: int | None = None
        self.count = 0
        #: The sticky overflow bit of Section IV-B.
        self.overflow = False
        #: How many times the count wrapped at T.  The hardware does not
        #: store this (it acts on the wrap *events*); the model keeps it
        #: so true estimated counts can be reconstructed for checks.
        self.wraps = 0

    def true_count(self, threshold: int) -> int:
        return self.wraps * threshold + self.count


class HardwareGrapheneTable:
    """Fixed-size CAM pair + spillover register, per Fig. 4/Fig. 5.

    Args:
        num_entries: ``N_entry`` slots.
        threshold: ``T``; counts wrap at this value, setting overflow.
        count_bits: Width of the count field; must satisfy
            ``2**count_bits > threshold`` (the Section IV-B sizing).
    """

    def __init__(self, num_entries: int, threshold: int, count_bits: int) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if 2**count_bits <= threshold:
            raise ValueError(
                f"count field of {count_bits} bits cannot represent T={threshold}"
            )
        self.num_entries = num_entries
        self.threshold = threshold
        self.count_bits = count_bits
        self._entries = [_Entry() for _ in range(num_entries)]
        #: addr -> slot index, standing in for the Address CAM match line.
        self._addr_index: dict[int, int] = {}
        self.spillover = 0
        self.ops = CamOpCounts()

    # ------------------------------------------------------------------
    # Fig. 5 pseudo-code
    # ------------------------------------------------------------------

    def process_activation(self, address: int) -> TableUpdateOutcome:
        """Run the Fig. 5 update for one activated row address."""
        # Line 3: single Address-CAM search.
        self.ops.address_searches += 1
        slot = self._addr_index.get(address)
        if slot is not None:
            # Lines 4-6: row address hit -> read, increment, write back.
            self.ops.count_reads += 1
            self.ops.count_writes += 1
            triggered = self._increment(slot)
            return TableUpdateOutcome(
                path="hit",
                triggered=triggered,
                slot=slot,
                estimated_count=self._entries[slot].true_count(self.threshold),
            )

        # Lines 8-9: row address miss -> Count-CAM search for an entry
        # whose count equals the spillover count.  Overflowed entries are
        # masked out: their stored count is modulo T and must not match.
        self.ops.count_searches += 1
        victim_slot = self._find_replaceable()
        if victim_slot is not None:
            # Lines 10-13: replace the entry; address and count CAMs are
            # written simultaneously (the paper's critical path remark).
            entry = self._entries[victim_slot]
            if entry.address is not None:
                del self._addr_index[entry.address]
            entry.address = address
            self._addr_index[address] = victim_slot
            self.ops.address_writes += 1
            self.ops.count_writes += 1
            triggered = self._increment(victim_slot)
            return TableUpdateOutcome(
                path="replace",
                triggered=triggered,
                slot=victim_slot,
                estimated_count=entry.true_count(self.threshold),
            )

        # Lines 15-16: no replacement -> spillover count increments.
        self.spillover += 1
        self.ops.spillover_increments += 1
        return TableUpdateOutcome(
            path="spill", triggered=False, slot=None, estimated_count=None
        )

    def _find_replaceable(self) -> int | None:
        """Entry whose effective count equals the spillover count.

        An unoccupied slot has count 0 and matches a spillover of 0,
        which is how the table fills up initially.  Overflowed entries
        never match (their true count exceeds any possible spillover).
        Among multiple matches the smallest-address entry wins (empty
        slots first), the same deterministic tie-break the logical
        model uses, keeping the two bit-identical.
        """
        best: int | None = None
        best_address: int | None = None
        for index, entry in enumerate(self._entries):
            if entry.overflow or entry.count != self.spillover:
                continue
            if entry.address is None:
                return index  # empty slot: always preferred
            if best_address is None or entry.address < best_address:
                best, best_address = index, entry.address
        return best

    def _increment(self, slot: int) -> bool:
        """Bump a slot's count, wrapping at T; True if T was reached."""
        entry = self._entries[slot]
        if entry.address is None:
            raise RuntimeError("incrementing an unoccupied slot")
        new_count = entry.count + 1
        if new_count >= self.threshold:
            # Reached a multiple of T: set/keep the overflow bit, wrap
            # the stored count to zero (Section IV-B), report a trigger.
            entry.overflow = True
            entry.wraps += 1
            entry.count = 0
            return True
        entry.count = new_count
        assert entry.count < 2**self.count_bits
        return False

    # ------------------------------------------------------------------
    # Maintenance and queries
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Window reset: clear all entries, overflow bits and spillover."""
        for entry in self._entries:
            entry.address = None
            entry.count = 0
            entry.overflow = False
            entry.wraps = 0
        self._addr_index.clear()
        self.spillover = 0

    def __contains__(self, address: int) -> bool:
        return address in self._addr_index

    def estimated_count(self, address: int) -> int:
        """True estimated count of a tracked address (0 if untracked)."""
        slot = self._addr_index.get(address)
        if slot is None:
            return 0
        return self._entries[slot].true_count(self.threshold)

    def tracked(self) -> dict[int, int]:
        """Tracked address -> true estimated count."""
        return {
            addr: self._entries[slot].true_count(self.threshold)
            for addr, slot in self._addr_index.items()
        }

    def occupancy(self) -> int:
        """Number of occupied slots."""
        return len(self._addr_index)

    def overflowed_addresses(self) -> list[int]:
        """Addresses whose overflow bit is set (confirmed aggressors)."""
        return [
            addr
            for addr, slot in self._addr_index.items()
            if self._entries[slot].overflow
        ]
