"""The Misra-Gries frequent-elements summary (paper Section III-A).

Graphene's aggressor tracker is the Misra-Gries algorithm (Misra &
Gries, 1982) specialized to a stream of activated row addresses.  The
structure is a fixed-capacity associative table of ``(item, estimated
count)`` pairs plus a single *spillover count* register.  Per incoming
item (Fig. 1 of the paper):

1. **Hit** -- the item is in the table: increment its estimated count.
2. **Miss, replaceable** -- some entry's estimated count equals the
   spillover count: replace that entry's key with the incoming item and
   increment the count (the old count is *carried over*, which is what
   makes the estimate an over-approximation).
3. **Miss, no replaceable entry** -- increment the spillover count.

Guarantees (proved in Section III-C of the paper and re-proved
executable-style in :mod:`repro.core.guarantees`):

* *Lemma 1*: every tracked item's estimated count >= its actual count;
* *Lemma 2*: spillover count <= W / (N_entry + 1) after W observations;
* any item occurring more than ``W / (N_entry + 1)`` times is tracked.

The implementation keeps an inverted count->keys index so the
"find an entry whose count equals the spillover count" step is O(1),
mirroring the single CAM search of the hardware design (Section IV-B).

**Determinism contract.**  When several entries are replaceable (their
estimated counts all equal the spillover count), the algorithm is free
to evict any of them -- the guarantees hold either way -- but *this*
implementation always evicts the **smallest key** (``min`` over the
candidate set).  The choice is part of the public contract: it is what
keeps this logical model bit-identical to the CAM-level
:class:`~repro.core.hardware_table.HardwareGrapheneTable` (whose
priority encoder picks the empty slot first, then the smallest
address), it makes every fuzz stream and regression reproducer replay
to the same table state, and -- because keys are compared by value,
never by hash-table iteration order -- it is stable across processes
and ``PYTHONHASHSEED`` values.  Keys must therefore be mutually
orderable (row addresses and ``(bank, row)`` tuples both are).  The
tie-break order is pinned by tests in ``tests/test_misra_gries.py``.
"""

from __future__ import annotations

from typing import Hashable, Iterator

__all__ = ["MisraGriesTable"]


class MisraGriesTable:
    """Fixed-capacity Misra-Gries counter table with a spillover count.

    Args:
        capacity: ``N_entry`` -- the number of table entries.

    The table is generic over hashable item keys; Graphene uses DRAM row
    addresses (ints).
    """

    __slots__ = (
        "capacity",
        "_counts",
        "_buckets",
        "spillover",
        "observations",
        "last_evicted",
    )

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: item -> estimated count
        self._counts: dict[Hashable, int] = {}
        #: estimated count -> set of items currently holding that count.
        #: Lets the miss path locate a replaceable entry in O(1), like
        #: the hardware's Count-CAM search.
        self._buckets: dict[int, set[Hashable]] = {}
        self.spillover = 0
        #: Number of items observed since the last reset (the stream
        #: length W in the paper's analysis).
        self.observations = 0
        #: The item displaced by the most recent replacement, read by
        #: telemetry right after an insert-with-eviction.  Purely
        #: observational; never consulted by the algorithm.
        self.last_evicted: Hashable | None = None

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------

    def observe(self, item: Hashable) -> int | None:
        """Process one stream item.

        Returns:
            The item's new estimated count if it is tracked after the
            update, or None if only the spillover count was incremented.
        """
        self.observations += 1
        counts = self._counts
        current = counts.get(item)
        if current is not None:
            # Hit: bump the estimated count.
            self._move(item, current, current + 1)
            return current + 1

        if len(counts) < self.capacity:
            # Table not yet full.  In hardware the empty slots are valid
            # entries with count 0, and since counts never decrease the
            # spillover count is still 0 whenever an empty slot exists;
            # check_invariants() verifies that property off the hot path.
            self._insert(item, 1)
            return 1

        replaceable = self._buckets.get(self.spillover)
        if replaceable:
            # Miss with a replaceable entry: the CAM reports an entry
            # whose count equals the spillover count.  Evict it and
            # carry its count over to the incoming item.  Ties are
            # broken deterministically (smallest key, by value -- never
            # by set iteration order, which would vary with the process
            # hash seed) so the logical and CAM-level models stay
            # bit-identical; see the module docstring's determinism
            # contract.
            evicted = min(replaceable)
            self._remove(evicted, self.spillover)
            self._insert(item, self.spillover + 1)
            self.last_evicted = evicted
            return self.spillover + 1

        # Miss with no replaceable entry: only the spillover count grows.
        self.spillover += 1
        return None

    def observe_many(self, items: Iterator[Hashable]) -> None:
        """Feed a whole iterable through :meth:`observe`."""
        for item in items:
            self.observe(item)

    def reset(self) -> None:
        """Clear the table and spillover count (Graphene's window reset)."""
        self._counts.clear()
        self._buckets.clear()
        self.spillover = 0
        self.observations = 0
        self.last_evicted = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, item: Hashable) -> bool:
        return item in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def estimated_count(self, item: Hashable) -> int:
        """Estimated count of ``item``; 0 if not tracked.

        Note that "not tracked" does not mean "never seen": an evicted
        item's history lives on in the spillover count and in whichever
        entry inherited its count.
        """
        return self._counts.get(item, 0)

    def items_with_count_at_least(self, threshold: int) -> list[Hashable]:
        """Tracked items whose estimated count is >= ``threshold``.

        By the Misra-Gries guarantee this is a superset of the items
        whose *actual* count is >= ``threshold`` whenever ``capacity >
        observations / threshold - 1`` (Inequality 1 of the paper).
        """
        return [k for k, v in self._counts.items() if v >= threshold]

    def tracked(self) -> dict[Hashable, int]:
        """Snapshot of the table contents (item -> estimated count)."""
        return dict(self._counts)

    @property
    def min_estimated_count(self) -> int:
        """Smallest estimated count currently in the table."""
        if not self._counts:
            return 0
        return min(self._buckets_nonempty())

    # ------------------------------------------------------------------
    # Invariant checking (used by tests and the guarantees module)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated.

        Checks the conservation law used in the proof of Lemma 2 (the
        spillover count plus all estimated counts equals the number of
        observations), the Lemma 2 bound itself, and the internal
        bucket-index consistency.
        """
        total = self.spillover + sum(self._counts.values())
        assert total == self.observations, (
            f"conservation violated: spillover+counts={total} != "
            f"observations={self.observations}"
        )
        bound = self.observations / (self.capacity + 1)
        assert self.spillover <= bound, (
            f"Lemma 2 violated: spillover={self.spillover} > "
            f"W/(N+1)={bound}"
        )
        if self._counts:
            assert self.spillover <= min(self._counts.values()), (
                "spillover exceeds a tracked estimated count"
            )
        if len(self._counts) < self.capacity:
            # Empty slots are count-0 entries in hardware, and counts
            # never decrease, so spillover must still be 0 while any
            # slot is free.
            assert self.spillover == 0, (
                "spillover grew while slots were free"
            )
        rebuilt: dict[int, set[Hashable]] = {}
        for item, count in self._counts.items():
            rebuilt.setdefault(count, set()).add(item)
        pruned = {c: s for c, s in self._buckets.items() if s}
        assert rebuilt == pruned, "bucket index out of sync with counts"

    # ------------------------------------------------------------------
    # Internal bucket maintenance
    # ------------------------------------------------------------------

    def _insert(self, item: Hashable, count: int) -> None:
        self._counts[item] = count
        self._buckets.setdefault(count, set()).add(item)

    def _remove(self, item: Hashable, count: int) -> None:
        del self._counts[item]
        bucket = self._buckets[count]
        bucket.discard(item)
        if not bucket:
            del self._buckets[count]

    def _move(self, item: Hashable, old: int, new: int) -> None:
        bucket = self._buckets[old]
        bucket.discard(item)
        if not bucket:
            del self._buckets[old]
        self._counts[item] = new
        self._buckets.setdefault(new, set()).add(item)

    def _buckets_nonempty(self) -> Iterator[int]:
        return (count for count, bucket in self._buckets.items() if bucket)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MisraGriesTable(capacity={self.capacity}, "
            f"tracked={len(self._counts)}, spillover={self.spillover}, "
            f"observations={self.observations})"
        )
