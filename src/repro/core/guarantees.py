"""Executable protection-guarantee proofs (paper Section III-C).

The paper proves three statements about Graphene:

* **Lemma 1** -- every tracked row's estimated count is >= its actual
  ACT count within the current reset window;
* **Lemma 2** -- the spillover count never exceeds ``W / (N_entry+1)``;
* **Theorem** -- no row's actual count can grow by ``T`` without a
  victim-row refresh being triggered for it; equivalently, at any
  moment ``actual(row) < T * (refreshes(row) + 1)``.

:class:`InstrumentedGrapheneEngine` wraps a :class:`GrapheneEngine`
with exact per-row actual counts and verifies all three statements
after every single ACT, so property-based tests can feed arbitrary
streams (adversarial, random, replay) through it and fail on the first
violated invariant.  This is the repository's mechanized analogue of
the paper's pencil-and-paper proof.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .config import GrapheneConfig
from .graphene import GrapheneEngine, VictimRefreshRequest

__all__ = ["GuaranteeViolation", "InstrumentedGrapheneEngine"]


class GuaranteeViolation(AssertionError):
    """A protection invariant (Lemma 1/2 or the Theorem) was violated."""


@dataclass
class _WindowLedger:
    """Ground-truth bookkeeping for one reset window."""

    actual_counts: Counter
    refresh_triggers: Counter

    @classmethod
    def fresh(cls) -> "_WindowLedger":
        return cls(actual_counts=Counter(), refresh_triggers=Counter())


class InstrumentedGrapheneEngine:
    """Graphene engine + exact ground truth + per-ACT invariant checks.

    Args:
        config: Graphene configuration (typically scaled down so tests
            can cross thresholds quickly).
        bank: Bank label forwarded to the inner engine.
        check_every: Run the (relatively expensive) full table invariant
            check every N ACTs; the cheap per-row checks always run.
    """

    def __init__(
        self, config: GrapheneConfig, bank: int = 0, check_every: int = 1
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.engine = GrapheneEngine(config, bank=bank)
        self.config = config
        self.check_every = check_every
        self._ledger = _WindowLedger.fresh()
        self._acts_seen = 0

    # ------------------------------------------------------------------
    # Stream processing with verification
    # ------------------------------------------------------------------

    def on_activate(self, row: int, time_ns: float) -> list[VictimRefreshRequest]:
        """Forward an ACT to the engine, then verify every invariant."""
        window_before = self.engine.current_window
        requests = self.engine.on_activate(row, time_ns)
        if self.engine.current_window != window_before:
            # The engine lazily reset its table for a new window; the
            # ground truth must reset with it.
            self._ledger = _WindowLedger.fresh()
        self._ledger.actual_counts[row] += 1
        for request in requests:
            self._ledger.refresh_triggers[request.aggressor_row] += 1
        self._acts_seen += 1

        self._check_theorem(row)
        self._check_lemma1(row)
        if self._acts_seen % self.check_every == 0:
            self._check_lemma2()
            self.engine.table.check_invariants()
        return requests

    def run_stream(self, stream) -> list[VictimRefreshRequest]:
        """Feed ``(time_ns, row)`` pairs through; return all requests."""
        requests: list[VictimRefreshRequest] = []
        for time_ns, row in stream:
            requests.extend(self.on_activate(row, time_ns))
        return requests

    # ------------------------------------------------------------------
    # The three proof obligations
    # ------------------------------------------------------------------

    def _check_lemma1(self, row: int) -> None:
        """Tracked estimated count >= actual count, for the touched row.

        (Checking only the row just touched is sufficient: counts of
        untouched rows did not change, except for a possible eviction --
        and an evicted row is no longer "tracked", so Lemma 1 holds for
        it vacuously.)
        """
        estimated = self.engine.table.estimated_count(row)
        if row in self.engine.table:
            actual = self._ledger.actual_counts[row]
            if estimated < actual:
                raise GuaranteeViolation(
                    f"Lemma 1 violated for row {row}: estimated={estimated} "
                    f"< actual={actual}"
                )

    def _check_lemma2(self) -> None:
        """spillover <= observations / (N_entry + 1)."""
        table = self.engine.table
        bound = table.observations / (table.capacity + 1)
        if table.spillover > bound:
            raise GuaranteeViolation(
                f"Lemma 2 violated: spillover={table.spillover} > "
                f"W/(N+1)={bound:.3f}"
            )

    def _check_theorem(self, row: int) -> None:
        """actual(row) < T * (triggers(row) + 1) within the window.

        This is the Section III-C Theorem: the actual count cannot have
        increased by ``T`` since the last victim refresh (or window
        start) without triggering a new one.
        """
        actual = self._ledger.actual_counts[row]
        triggers = self._ledger.refresh_triggers[row]
        threshold = self.engine.threshold
        if actual >= threshold * (triggers + 1):
            raise GuaranteeViolation(
                f"Theorem violated for row {row}: actual={actual} reached "
                f"{triggers + 1} x T (T={threshold}) with only {triggers} "
                "victim refreshes triggered"
            )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def actual_counts(self) -> Counter:
        """Ground-truth ACT counts for the current reset window."""
        return self._ledger.actual_counts

    @property
    def refresh_triggers(self) -> Counter:
        """Victim-refresh trigger counts for the current reset window."""
        return self._ledger.refresh_triggers

    def tracking_error(self, row: int) -> int:
        """Over-approximation slack: estimated - actual for ``row``.

        Non-negative for tracked rows by Lemma 1; bounded by the
        spillover count (the count "inherited" at insertion).
        """
        return (
            self.engine.table.estimated_count(row)
            - self._ledger.actual_counts[row]
        )
