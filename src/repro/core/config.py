"""Graphene parameter derivations (paper Sections III-B, III-D, IV-B, IV-C).

Everything Table II, Fig. 6 and the Section IV-B bit-width arguments
compute lives here, in one auditable place:

* ``W`` -- the maximum number of ACTs per reset window, from DRAM timing
  (``tREFW/k * (1 - tRFC/tREFI) / tRC``);
* ``T`` -- the tracking threshold, sized so that a victim can never
  absorb ``T_RH`` worth of disturbance between two of its refreshes,
  accounting for double-sided attacks, the unknown phase of the regular
  refresh (the two-window argument of Fig. 3, generalized to ``k+1``
  windows by Inequality 3), and non-adjacent amplification
  ``A = 1 + mu_2 + ... + mu_n`` (Section III-D):

  .. math:: T = \\lfloor T_{RH} / (2 (k+1) A) \\rfloor

* ``N_entry`` -- the Misra-Gries capacity, the smallest integer
  satisfying Inequality 1, ``N_entry > W / T - 1``;
* entry bit-widths -- ``log2(rows)`` address bits, ``log2(T)`` count
  bits plus one overflow bit (Section IV-B's narrowing trick), versus
  ``log2(W)`` count bits without it.

With the paper's defaults (``T_RH`` = 50K, DDR4-2400, 64K-row banks):
``k=1`` gives T = 12,500 and N_entry = 108 (Table II); the optimized
``k=2`` configuration gives T = 8,333, N_entry = 81, 31 bits per entry
and 2,511 table bits per bank (Table IV).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..dram.faults import CouplingProfile
from ..dram.timing import DDR4_2400, DramTimings

__all__ = ["GrapheneConfig", "PAPER_TRH_DDR4", "PAPER_TRH_DDR3"]

#: Row Hammer threshold reported for recent DDR4 devices (TRRespass).
PAPER_TRH_DDR4 = 50_000
#: Row Hammer threshold reported for DDR3 devices (Kim et al., ISCA'14).
PAPER_TRH_DDR3 = 139_000


@dataclass(frozen=True)
class GrapheneConfig:
    """A fully derived Graphene configuration for one DRAM bank.

    Args:
        hammer_threshold: ``T_RH`` -- minimum aggressor ACT count that
            can flip a bit in a victim.
        timings: DRAM timing bundle (defines ``W``).
        rows_per_bank: Rows per bank (defines address bit-width).
        reset_window_divisor: ``k`` of Section IV-C -- the table resets
            every ``tREFW / k``.  ``k=1`` reproduces Table II; the paper
            evaluates with ``k=2``.
        coupling: Non-adjacent disturbance profile; its blast radius is
            the NRR refresh distance ``n`` and its amplification factor
            scales ``T`` down (Section III-D).
        use_overflow_bit: Apply the Section IV-B count-narrowing trick.
    """

    hammer_threshold: int = PAPER_TRH_DDR4
    timings: DramTimings = field(default_factory=lambda: DDR4_2400)
    rows_per_bank: int = 65536
    reset_window_divisor: int = 1
    coupling: CouplingProfile = field(
        default_factory=CouplingProfile.adjacent_only
    )
    use_overflow_bit: bool = True

    def __post_init__(self) -> None:
        if self.hammer_threshold < 8:
            raise ValueError(
                "hammer_threshold too small to derive a positive tracking "
                f"threshold (got {self.hammer_threshold})"
            )
        if self.rows_per_bank < 2:
            raise ValueError("need at least two rows for a victim to exist")
        if self.reset_window_divisor < 1:
            raise ValueError("reset_window_divisor (k) must be >= 1")
        if self.tracking_threshold < 1:
            raise ValueError(
                "derived tracking threshold T is < 1; hammer_threshold is "
                "too low for this k / coupling combination"
            )

    # ------------------------------------------------------------------
    # Canonical configurations
    # ------------------------------------------------------------------

    @classmethod
    def paper_baseline(cls, hammer_threshold: int = PAPER_TRH_DDR4) -> "GrapheneConfig":
        """The Table II parameter set (k = 1, +-1 coupling)."""
        return cls(hammer_threshold=hammer_threshold, reset_window_divisor=1)

    @classmethod
    def paper_optimized(cls, hammer_threshold: int = PAPER_TRH_DDR4) -> "GrapheneConfig":
        """The evaluated configuration (k = 2; Section IV-C, Table IV)."""
        return cls(hammer_threshold=hammer_threshold, reset_window_divisor=2)

    # ------------------------------------------------------------------
    # Derived parameters
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Alias for the reset-window divisor, matching the paper's name."""
        return self.reset_window_divisor

    @property
    def reset_window_ns(self) -> float:
        """Length of one table reset window: tREFW / k."""
        return self.timings.trefw / self.k

    @property
    def max_activations_per_window(self) -> int:
        """``W``: maximum ACTs a bank can receive within a reset window."""
        return self.timings.max_activations_in(self.reset_window_ns)

    @property
    def amplification_factor(self) -> float:
        """``A = 1 + mu_2 + ... + mu_n`` (1.0 for +-1 coupling)."""
        return self.coupling.amplification_factor

    @property
    def tracking_threshold(self) -> int:
        """``T``: estimated-count multiple that triggers victim refreshes.

        ``T = floor(T_RH / (2 (k+1) A))``, which satisfies the strict
        Inequality 3 (``(k+1)(T-1) < T_RH / (2A)``) with margin and
        reproduces the paper's chosen values (12,500 at k=1; 8,333 at
        k=2 for ``T_RH`` = 50K).
        """
        return int(
            self.hammer_threshold
            / (2 * (self.k + 1) * self.amplification_factor)
        )

    @property
    def num_entries(self) -> int:
        """``N_entry``: minimum integer satisfying Inequality 1.

        ``N_entry > W / T - 1`` guarantees every row activated more than
        ``T`` times within the window is tracked.
        """
        ratio = self.max_activations_per_window / self.tracking_threshold
        minimum = math.floor(ratio - 1) + 1
        # Guard the edge where W/T - 1 is itself an integer: "greater
        # than" is strict, so bump by one.
        if minimum <= ratio - 1:
            minimum += 1
        return max(1, minimum)

    @property
    def blast_radius(self) -> int:
        """``n``: how far (in rows) an NRR must refresh around an aggressor."""
        return self.coupling.blast_radius

    @property
    def victim_rows_per_refresh(self) -> int:
        """Rows refreshed per NRR in the interior of the bank (2n)."""
        return 2 * self.blast_radius

    # ------------------------------------------------------------------
    # Bit widths (Section IV-B)
    # ------------------------------------------------------------------

    @property
    def address_bits(self) -> int:
        """Bits per Address-CAM entry (log2 of the bank's row count)."""
        return max(1, math.ceil(math.log2(self.rows_per_bank)))

    @property
    def count_bits(self) -> int:
        """Bits per Count-CAM entry.

        With the overflow bit, the count wraps at ``T`` so
        ``ceil(log2(T + 1))`` bits suffice plus the overflow flag; the
        flag is accounted separately in :attr:`overflow_bits`.  Without
        it the count must reach ``W``.
        """
        if self.use_overflow_bit:
            return max(1, math.ceil(math.log2(self.tracking_threshold + 1)))
        return max(1, math.ceil(math.log2(self.max_activations_per_window + 1)))

    @property
    def overflow_bits(self) -> int:
        return 1 if self.use_overflow_bit else 0

    @property
    def entry_bits(self) -> int:
        """Total bits per table entry (address + count + overflow)."""
        return self.address_bits + self.count_bits + self.overflow_bits

    @property
    def table_bits_per_bank(self) -> int:
        """Total table storage per bank -- the Table IV metric."""
        return self.num_entries * self.entry_bits

    @property
    def spillover_register_bits(self) -> int:
        """Bits of the spillover count register.

        By Lemma 2 the spillover count never exceeds ``W/(N_entry+1)``,
        which itself never exceeds ``T`` given Inequality 1, so the
        register is as wide as a (non-overflowed) count field.
        """
        bound = self.max_activations_per_window // (self.num_entries + 1)
        return max(1, math.ceil(math.log2(bound + 1)))

    def table_bits_per_rank(self, banks_per_rank: int = 16) -> int:
        """Table storage per rank (Fig. 9(a) reports per 16-bank rank)."""
        if banks_per_rank < 1:
            raise ValueError("banks_per_rank must be >= 1")
        return self.table_bits_per_bank * banks_per_rank

    # ------------------------------------------------------------------
    # Worst-case refresh bound (used by Fig. 6 and the 0.34% claim)
    # ------------------------------------------------------------------

    @property
    def max_refresh_events_per_window(self) -> int:
        """Upper bound on NRR triggers per reset window.

        The sum of all estimated counts is at most ``W``, and each
        trigger consumes ``T`` estimated counts from one entry, so at
        most ``floor(W / T)`` triggers can occur per window.
        """
        return self.max_activations_per_window // self.tracking_threshold

    def max_victim_rows_refreshed_per_trefw(self) -> int:
        """Worst-case victim rows refreshed per bank per tREFW.

        ``k`` windows per tREFW, each with at most ``W/T`` triggers that
        refresh ``2n`` rows (bank-interior case).
        """
        return (
            self.k
            * self.max_refresh_events_per_window
            * self.victim_rows_per_refresh
        )

    def worst_case_refresh_energy_increase(self) -> float:
        """Worst-case refresh-energy increase over regular refreshes.

        Regular refresh visits every row once per tREFW, so the increase
        is simply (extra rows refreshed) / (rows per bank).  The paper
        reports 0.34% for its configuration; the exact value depends on
        ``W`` rounding, but stays well below 1%.
        """
        return self.max_victim_rows_refreshed_per_trefw() / self.rows_per_bank

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, object]:
        """All derived parameters as a flat dict (for tables/reports)."""
        return {
            "hammer_threshold": self.hammer_threshold,
            "k": self.k,
            "reset_window_ms": self.reset_window_ns / 1e6,
            "W": self.max_activations_per_window,
            "T": self.tracking_threshold,
            "N_entry": self.num_entries,
            "blast_radius": self.blast_radius,
            "amplification_factor": self.amplification_factor,
            "address_bits": self.address_bits,
            "count_bits": self.count_bits,
            "overflow_bits": self.overflow_bits,
            "entry_bits": self.entry_bits,
            "table_bits_per_bank": self.table_bits_per_bank,
            "max_refresh_events_per_window": self.max_refresh_events_per_window,
        }
