"""Persistent shard-worker pool: resident lanes over shared memory.

The first sharded dispatcher (PR 6) built a ``ProcessPoolExecutor``
inside every ``FastMemoryController.run`` call and shipped each bank's
full pickled state out and back *per chunk*.  That made every
``simulate()`` call pay pool spin-up, and chunked streaming pay
O(chunks x state) pickling.  This module replaces it with a pool that
amortizes both costs across an entire session:

* **Persistent workers.**  ``get_pool()`` returns a process-wide
  singleton; workers are forked lazily on first use and survive across
  ``simulate()`` calls, runner jobs and campaign cells.  ``close_pool``
  (also registered via ``atexit``) shuts them down; a pool inherited
  through ``fork`` (e.g. inside an experiment-runner job process) is
  recognized by PID and silently replaced rather than shared.
* **Resident lane state.**  At ``start``-of-run the parent ships each
  worker its banks' models and kernels *once*; the worker keeps them
  resident across every chunk of the run and ships them home in the
  final ``finish`` reply.  Per chunk, only ``(segment, start, stop)``
  crosses the pipe.
* **Zero-copy traces.**  Event columns travel through
  ``multiprocessing.shared_memory`` segments
  (:func:`repro.workloads.columnar.export_shared_trace`); workers map
  them read-only and slice views.  The parent exclusively owns segment
  destruction and tracks every live segment in
  :attr:`ShardPool.active_segments` so leak checks are one assertion.

Protocol (strict FIFO per worker; the parent may queue the next chunk
before collecting the previous reply, which is what overlaps chunk
``n+1``'s materialization with chunk ``n``'s execution):

========================  =============================================
parent -> worker          worker -> parent
========================  =============================================
``("start", lanes, log)``  ``("ok",)``
``("chunk", meta, a, b)``  ``("done", pos, vals, flips, dirs, counters)``
``("finish",)``            ``("state", lanes)``
``("exit",)``              ``("bye",)``
========================  =============================================

Any worker-side exception answers ``("error", traceback)`` instead;
the parent raises :class:`ShardWorkerError` and aborts the pool (the
resident state is no longer trustworthy), which terminates the workers
and unlinks every live segment.  Workers are daemonic and ignore
SIGINT, so a Ctrl-C unwinds through the parent's ``finally`` (abort +
unlink) instead of racing the workers to death.
"""

from __future__ import annotations

import atexit
import os
import signal
import traceback
from multiprocessing import get_context

import numpy as np

from ..controller.mc import ControllerCounters
from ..workloads.columnar import (
    SharedTraceMeta,
    TraceArray,
    attach_shared_trace,
    export_shared_trace,
)

__all__ = [
    "ShardPool",
    "ShardWorkerError",
    "get_pool",
    "close_pool",
    "pool_stats",
]


class ShardWorkerError(RuntimeError):
    """A shard worker raised; the embedded traceback is the worker's."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _worker_chunk(lanes, keep_log, trace: TraceArray, start: int, stop: int):
    """Run this worker's lanes over one chunk of the mapped trace.

    Lane indices are recomputed here from the mapped bank column --
    that is what keeps the forward IPC payload at three integers -- and
    every output is tagged with *chunk-local* positions the parent
    scatters into its per-chunk arrays.  Delay columns ship sparse:
    only strictly positive entries exist (idle-regime delays are
    exactly 0.0 and never written).
    """
    from .fastpath import _LaneEngine

    chunk_banks = trace.bank[start:stop]
    chunk_times = trace.time_ns[start:stop]
    chunk_rows = trace.row[start:stop]
    counters = ControllerCounters()
    lane = _LaneEngine(counters, keep_log)
    delays = np.zeros(stop - start, dtype=np.float64)
    flip_lanes: list[list] = []
    directive_lanes: list[list] = []
    for bank_index, bank_model, kernel in lanes:
        indices = np.flatnonzero(chunk_banks == bank_index)
        if not len(indices):
            continue
        lane_flips: list = []
        lane_directives: list = []
        lane.run_lane(
            bank_model,
            kernel,
            chunk_times[indices],
            chunk_rows[indices],
            indices,
            delays,
            lane_flips,
            lane_directives,
        )
        if lane_flips:
            flip_lanes.append(lane_flips)
        if lane_directives:
            directive_lanes.append(lane_directives)
    positions = np.flatnonzero(delays != 0.0)
    return (
        "done",
        positions,
        delays[positions],
        flip_lanes,
        directive_lanes,
        counters.as_tuple(),
    )


def _worker_main(conn) -> None:
    """Shard worker event loop (child process entry point)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    lanes: list = []
    keep_log = False
    attached: tuple[str, TraceArray, object] | None = None

    def detach() -> None:
        nonlocal attached
        if attached is not None:
            attached[2].close()
            attached = None

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "exit":
            detach()
            try:
                conn.send(("bye",))
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            if kind == "start":
                lanes = message[1]
                keep_log = message[2]
                reply = ("ok",)
            elif kind == "chunk":
                meta: SharedTraceMeta = message[1]
                if attached is None or attached[0] != meta.name:
                    detach()
                    trace, segment = attach_shared_trace(meta)
                    attached = (meta.name, trace, segment)
                reply = _worker_chunk(
                    lanes, keep_log, attached[1], message[2], message[3]
                )
            elif kind == "finish":
                detach()
                reply = ("state", lanes)
            else:
                reply = ("error", f"unknown shard-pool message {kind!r}")
        except BaseException:  # noqa: BLE001 - ships the traceback home
            reply = ("error", traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class _WorkerHandle:
    """One worker process plus its duplex pipe (parent end)."""

    def __init__(self, ctx, index: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def send(self, message) -> None:
        self.conn.send(message)

    def recv(self):
        reply = self.conn.recv()
        if reply[0] == "error":
            raise ShardWorkerError(reply[1])
        return reply

    def stop(self, grace_s: float = 5.0) -> None:
        """Graceful exit with a hard-kill fallback."""
        try:
            if self.process.is_alive():
                self.conn.send(("exit",))
                if self.conn.poll(grace_s):
                    self.conn.recv()
        except (BrokenPipeError, EOFError, OSError, ShardWorkerError):
            pass
        self.process.join(timeout=grace_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():  # pragma: no cover - last resort
                self.process.kill()
                self.process.join(timeout=1.0)
        self.conn.close()

    def kill(self) -> None:
        """Immediate termination (resident state is already suspect)."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=1.0)
        self.conn.close()


class ShardPool:
    """A reusable set of shard workers plus the segments they map.

    Workers spawn lazily through :meth:`ensure` and persist until
    :meth:`close` (or :meth:`abort` after a failure, which discards
    them; the next ``ensure`` respawns).  All shared-memory segments
    created through :meth:`export` are tracked in
    :attr:`active_segments` until :meth:`release` -- after a clean run
    *and* after an abort the dict is empty, which the leak tests
    assert directly.
    """

    def __init__(self) -> None:
        self._ctx = get_context("fork")
        self._workers: list[_WorkerHandle] = []
        self._owner_pid = os.getpid()
        self._closed = False
        #: segment name -> live SharedMemory object (parent-owned).
        self.active_segments: dict[str, object] = {}
        self.runs_served = 0
        self.workers_spawned = 0
        self.aborts = 0

    # -- workers -------------------------------------------------------

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    def ensure(self, count: int) -> list[_WorkerHandle]:
        """Return ``count`` live workers, spawning any that are missing."""
        if self._closed:
            raise RuntimeError("shard pool is closed")
        self._workers = [w for w in self._workers if w.process.is_alive()]
        while len(self._workers) < count:
            self._workers.append(_WorkerHandle(self._ctx, len(self._workers)))
            self.workers_spawned += 1
        return self._workers[:count]

    # -- shared-memory segments -----------------------------------------

    def export(self, trace: TraceArray) -> SharedTraceMeta:
        meta, segment = export_shared_trace(trace)
        self.active_segments[meta.name] = segment
        return meta

    def release(self, name: str) -> None:
        segment = self.active_segments.pop(name, None)
        if segment is not None:
            segment.close()
            segment.unlink()

    def release_all(self) -> None:
        for name in list(self.active_segments):
            self.release(name)

    # -- lifecycle -------------------------------------------------------

    def abort(self) -> None:
        """Kill every worker and unlink every live segment.

        Used when a run failed mid-flight (worker error, interrupt):
        the workers' resident state no longer matches the parent's, so
        they cannot be reused.  The pool itself stays usable -- the
        next :meth:`ensure` spawns fresh workers.
        """
        self.aborts += 1
        for worker in self._workers:
            worker.kill()
        self._workers = []
        self.release_all()

    def close(self) -> None:
        """Graceful shutdown: stop workers, unlink segments, refuse reuse."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()
        self._workers = []
        self.release_all()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Lifecycle counters (surfaced in campaign summaries)."""
        return {
            "workers_alive": sum(
                1 for w in self._workers if w.process.is_alive()
            ),
            "workers_spawned": self.workers_spawned,
            "runs_served": self.runs_served,
            "aborts": self.aborts,
            "active_segments": len(self.active_segments),
        }


# ----------------------------------------------------------------------
# Process-wide singleton
# ----------------------------------------------------------------------

_POOL: ShardPool | None = None


def get_pool() -> ShardPool:
    """The process-wide pool, created on first use.

    A pool object inherited across ``fork`` (experiment-runner job
    processes fork with the parent's module state) refers to workers
    and pipes owned by the *parent*; it is detected by PID and dropped,
    so every process lazily builds its own.
    """
    global _POOL
    if _POOL is not None and _POOL._owner_pid != os.getpid():
        _POOL = None
    if _POOL is None or _POOL._closed:
        _POOL = ShardPool()
    return _POOL


def close_pool() -> None:
    """Shut down this process's pool, if it spawned one."""
    global _POOL
    pool, _POOL = _POOL, None
    if pool is None or pool._owner_pid != os.getpid():
        return
    pool.close()


def pool_stats() -> dict | None:
    """This process's pool stats, or ``None`` if no pool was spawned."""
    if _POOL is None or _POOL._owner_pid != os.getpid():
        return None
    return _POOL.stats()


atexit.register(close_pool)
