"""Alternative frequent-elements trackers (paper Section VI).

The paper chooses Misra-Gries "as it is area-efficient and hardware
implementation-friendly", citing three alternatives with different
accuracy/coverage/space trade-offs: **Space-Saving** (Metwally et al.),
**Lossy Counting** (Manku & Motwani) and the **Count-Min sketch**
(Cormode & Muthukrishnan).  This module implements all three behind a
common :class:`AggressorTracker` protocol so they can be dropped into a
Graphene-style engine (:class:`~repro.core.tracker_engine.
TrackerBackedEngine`) and compared head-to-head:

* **Space-Saving** gives the same deterministic guarantee as
  Misra-Gries with the same entry count (the two are duals: Space-Saving
  replaces the minimum entry eagerly instead of decrementing-by-proxy
  through a spillover count).  Hardware cost is comparable, but the
  replacement path must *find the minimum*, which is a harder CAM
  operation than Misra-Gries' exact-match against the spillover count
  -- the reason the paper prefers Misra-Gries.
* **Lossy Counting** guarantees no false negatives for the same memory
  only in expectation of stream composition; its bucket-boundary
  deletions make worst-case sizing looser.
* **Count-Min** never misses a heavy hitter (over-approximation only)
  but needs hash rows and cannot enumerate tracked rows -- on a
  threshold crossing it knows *that* the current row is hot, which is
  actually sufficient for Graphene-style victim refreshes.

All trackers expose the same stream API: ``observe(item) -> estimate``
where the estimate is an upper bound on the item's true count (the
property Graphene's no-false-negative argument needs).
"""

from __future__ import annotations

import math
from typing import Hashable, Protocol

import numpy as np

__all__ = [
    "AggressorTracker",
    "SpaceSavingTable",
    "LossyCountingTable",
    "CountMinSketch",
    "tracker_table_bits",
]


class AggressorTracker(Protocol):
    """Stream summary usable as Graphene's tracking substrate.

    ``observe`` returns the item's new *estimated count* -- an upper
    bound on its actual occurrence count since the last reset -- or
    ``None`` if the structure does not track the item after the update
    (only Misra-Gries' spillover path does this).
    """

    def observe(self, item: Hashable) -> int | None: ...

    def estimated_count(self, item: Hashable) -> int: ...

    def reset(self) -> None: ...


class SpaceSavingTable:
    """The Space-Saving summary (Metwally, Agrawal, El Abbadi, 2005).

    Keeps ``capacity`` (item, count, error) entries.  A missed item
    always *replaces the current minimum*, inheriting its count + 1 and
    recording the inherited amount as the entry's error term.

    Guarantees (for W observations): every entry's count is an upper
    bound on the item's true count; any item with true count >
    W/capacity is in the table.  Note the denominator: Space-Saving
    needs ``capacity >= W/T`` where Misra-Gries needs ``> W/T - 1`` --
    the same size to within one entry.
    """

    __slots__ = (
        "capacity",
        "_counts",
        "_errors",
        "_buckets",
        "observations",
        "last_evicted",
    )

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counts: dict[Hashable, int] = {}
        self._errors: dict[Hashable, int] = {}
        #: count -> set of items, for O(1) minimum lookup (the hardware
        #: pain point the paper alludes to).
        self._buckets: dict[int, set[Hashable]] = {}
        self.observations = 0
        #: Item displaced by the most recent replacement (telemetry
        #: introspection hook; never consulted by the algorithm).
        self.last_evicted: Hashable | None = None

    def observe(self, item: Hashable) -> int:
        self.observations += 1
        current = self._counts.get(item)
        if current is not None:
            self._move(item, current, current + 1)
            return current + 1
        if len(self._counts) < self.capacity:
            self._counts[item] = 1
            self._errors[item] = 0
            self._buckets.setdefault(1, set()).add(item)
            return 1
        # Replace the minimum-count entry (deterministic smallest key).
        minimum = min(count for count, bucket in self._buckets.items()
                      if bucket)
        evicted = min(self._buckets[minimum])
        self._remove(evicted, minimum)
        self.last_evicted = evicted
        self._counts[item] = minimum + 1
        self._errors[item] = minimum
        self._buckets.setdefault(minimum + 1, set()).add(item)
        return minimum + 1

    def estimated_count(self, item: Hashable) -> int:
        return self._counts.get(item, 0)

    def guaranteed_count(self, item: Hashable) -> int:
        """Lower bound on the item's true count (count - error)."""
        return self._counts.get(item, 0) - self._errors.get(item, 0)

    def tracked(self) -> dict[Hashable, int]:
        return dict(self._counts)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def reset(self) -> None:
        self._counts.clear()
        self._errors.clear()
        self._buckets.clear()
        self.observations = 0
        self.last_evicted = None

    def check_invariants(self) -> None:
        """Sum of counts equals observations; errors bounded by min."""
        assert sum(self._counts.values()) == self.observations or (
            len(self._counts) < self.capacity
        )
        for item, error in self._errors.items():
            assert 0 <= error <= self._counts[item]

    def _move(self, item: Hashable, old: int, new: int) -> None:
        bucket = self._buckets[old]
        bucket.discard(item)
        if not bucket:
            del self._buckets[old]
        self._counts[item] = new
        self._buckets.setdefault(new, set()).add(item)

    def _remove(self, item: Hashable, count: int) -> None:
        del self._counts[item]
        del self._errors[item]
        bucket = self._buckets[count]
        bucket.discard(item)
        if not bucket:
            del self._buckets[count]


class LossyCountingTable:
    """Lossy Counting (Manku & Motwani, 2002), bucket-deletion variant.

    Streams are processed in buckets of width ``ceil(1/epsilon)``; at
    each bucket boundary, entries whose ``count + delta`` falls below
    the bucket index are deleted.  Estimated count = count + delta is
    an upper bound on the true count; any item with true count >
    epsilon * W survives.

    For Graphene-style use, ``epsilon`` should be ``T / W`` so that
    rows beyond ``T`` ACTs are guaranteed tracked; the expected table
    occupancy is then at most ``1/epsilon * log(epsilon * W)`` -- the
    looser space story that makes it less attractive than Misra-Gries
    for worst-case hardware provisioning.
    """

    def __init__(self, epsilon: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self.bucket_width = math.ceil(1.0 / epsilon)
        self._entries: dict[Hashable, tuple[int, int]] = {}  # count, delta
        self.observations = 0
        self.current_bucket = 1
        self.peak_occupancy = 0

    def observe(self, item: Hashable) -> int:
        self.observations += 1
        count, delta = self._entries.get(
            item, (0, self.current_bucket - 1)
        )
        count += 1
        self._entries[item] = (count, delta)
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        estimate = count + delta
        if self.observations % self.bucket_width == 0:
            self._prune()
            self.current_bucket += 1
        return estimate

    def _prune(self) -> None:
        doomed = [
            item
            for item, (count, delta) in self._entries.items()
            if count + delta <= self.current_bucket
        ]
        for item in doomed:
            del self._entries[item]

    def estimated_count(self, item: Hashable) -> int:
        entry = self._entries.get(item)
        if entry is None:
            return 0
        count, delta = entry
        return count + delta

    def __contains__(self, item: Hashable) -> bool:
        return item in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()
        self.observations = 0
        self.current_bucket = 1


class CountMinSketch:
    """Count-Min sketch (Cormode & Muthukrishnan, 2005).

    ``depth`` hash rows of ``width`` counters; an item's estimate is
    the minimum of its ``depth`` counters, which over-approximates its
    true count by at most ``e/width * W`` with probability
    ``1 - e^-depth``.  Over-approximation-only means **no false
    negatives** for threshold detection -- but collisions inflate
    estimates, so false-positive victim refreshes grow as the sketch
    saturates, and the structure cannot *name* the hot rows (only test
    the row currently being activated), which is why a sketch-based
    Graphene must check the threshold on every ACT.
    """

    def __init__(self, width: int, depth: int = 4, seed: int = 0x5EED) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self._table = np.zeros((depth, width), dtype=np.int64)
        rng = np.random.default_rng(seed)
        # Universal hashing: (a*x + b) mod p mod width per row.
        self._prime = (1 << 31) - 1
        self._a = rng.integers(1, self._prime, size=depth, dtype=np.int64)
        self._b = rng.integers(0, self._prime, size=depth, dtype=np.int64)
        self.observations = 0

    def _indices(self, item: Hashable) -> np.ndarray:
        key = hash(item) & 0x7FFFFFFF
        return ((self._a * key + self._b) % self._prime) % self.width

    def observe(self, item: Hashable) -> int:
        self.observations += 1
        indices = self._indices(item)
        rows = np.arange(self.depth)
        self._table[rows, indices] += 1
        return int(self._table[rows, indices].min())

    def estimated_count(self, item: Hashable) -> int:
        indices = self._indices(item)
        rows = np.arange(self.depth)
        return int(self._table[rows, indices].min())

    def __contains__(self, item: Hashable) -> bool:
        """Sketches track everything (with noise)."""
        return True

    def reset(self) -> None:
        self._table.fill(0)
        self.observations = 0

    @property
    def table_bits(self) -> int:
        """Storage of the counter array (32-bit counters suffice)."""
        return self.width * self.depth * 32


def tracker_table_bits(
    tracker: object, address_bits: int, count_bits: int
) -> int:
    """Storage footprint of a tracker instance, in bits.

    Entry-based trackers pay address + count (+ error for Space-Saving)
    per entry; the sketch reports its own array size.
    """
    if isinstance(tracker, CountMinSketch):
        return tracker.table_bits
    if isinstance(tracker, SpaceSavingTable):
        return tracker.capacity * (address_bits + 2 * count_bits)
    if isinstance(tracker, LossyCountingTable):
        # Provisioned at the analytic worst case 1/eps * ln(eps W) with
        # W = the window budget implied by epsilon and count width.
        expected = math.ceil(
            (1 / tracker.epsilon)
            * max(1.0, math.log(max(2.0, tracker.epsilon * 2**count_bits)))
        )
        return expected * (address_bits + count_bits)
    raise TypeError(f"unknown tracker type {type(tracker)!r}")
