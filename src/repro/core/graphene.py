"""The Graphene Row Hammer prevention engine (paper Section III-B).

One :class:`GrapheneEngine` protects one DRAM bank.  It owns a
Misra-Gries counter table sized per :class:`~repro.core.config.
GrapheneConfig`, observes every ACT to the bank, and emits a
:class:`VictimRefreshRequest` whenever a tracked row's estimated count
reaches a multiple of the tracking threshold ``T``.  The memory
controller turns each request into an NRR command.

The table and spillover count are reset every ``tREFW / k`` (the reset
window); the engine performs this lazily at the first ACT of a new
window, which is behaviorally identical to an eager reset because the
table is only consulted on ACTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..telemetry import runtime as _telemetry
from ..telemetry.events import (
    SpilloverBump,
    TableEvict,
    TableInsert,
    WindowReset,
)
from .config import GrapheneConfig
from .misra_gries import MisraGriesTable

__all__ = ["VictimRefreshRequest", "GrapheneStats", "GrapheneEngine"]


@dataclass(frozen=True)
class VictimRefreshRequest:
    """Directive to refresh the neighborhood of a potential aggressor.

    Attributes:
        bank: Flat index of the bank the aggressor lives in.
        aggressor_row: The row whose estimated count crossed a multiple
            of ``T``.
        victim_rows: The rows the resulting NRR must refresh (aggressor
            neighborhood out to the blast radius, clipped at bank edges).
        time_ns: The ACT time that triggered the request.
        threshold_multiple: Which multiple of ``T`` was crossed (1 for
            the first trigger on this row this window, 2 for ``2T``...).
    """

    bank: int
    aggressor_row: int
    victim_rows: tuple[int, ...]
    time_ns: float
    threshold_multiple: int


@dataclass
class GrapheneStats:
    """Counters describing what one engine did."""

    activations: int = 0
    table_hits: int = 0
    table_insertions: int = 0
    spillover_increments: int = 0
    victim_refresh_requests: int = 0
    victim_rows_refreshed: int = 0
    window_resets: int = 0

    @property
    def max_possible_spillover_fraction(self) -> float:
        """Spillover increments as a fraction of activations."""
        if self.activations == 0:
            return 0.0
        return self.spillover_increments / self.activations


class GrapheneEngine:
    """Per-bank Graphene protection engine.

    Args:
        config: Fully derived parameter set.
        bank: Flat bank index (labelling of emitted requests).

    Usage::

        engine = GrapheneEngine(GrapheneConfig.paper_optimized())
        for act_time, row in act_stream:
            for request in engine.on_activate(row, act_time):
                issue_nrr(request)
    """

    def __init__(self, config: GrapheneConfig, bank: int = 0) -> None:
        self.config = config
        self.bank = bank
        self.table = MisraGriesTable(config.num_entries)
        self.threshold = config.tracking_threshold
        self.rows = config.rows_per_bank
        self._window_length_ns = config.reset_window_ns
        self._current_window = 0
        self.stats = GrapheneStats()

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def on_activate(self, row: int, time_ns: float) -> list[VictimRefreshRequest]:
        """Process one ACT; return victim-refresh directives (usually [])."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        if time_ns < 0:
            raise ValueError("time must be non-negative")
        self._maybe_reset(time_ns)
        self.stats.activations += 1

        table = self.table
        was_tracked = row in table
        # Telemetry rides behind one branch: with no bus installed the
        # hot path allocates nothing and does no extra work.
        bus = _telemetry.BUS
        was_full = bus is not None and len(table) >= table.capacity
        new_count = table.observe(row)
        if new_count is None:
            self.stats.spillover_increments += 1
            if bus is not None:
                bus.publish(
                    SpilloverBump(
                        time_ns=time_ns,
                        bank=self.bank,
                        row=row,
                        spillover=table.spillover,
                    )
                )
            return []
        if was_tracked:
            self.stats.table_hits += 1
        else:
            self.stats.table_insertions += 1
            if bus is not None:
                if was_full:
                    bus.publish(
                        TableEvict(
                            time_ns=time_ns,
                            bank=self.bank,
                            row=table.last_evicted,
                            inherited_count=new_count - 1,
                            new_row=row,
                        )
                    )
                bus.publish(
                    TableInsert(
                        time_ns=time_ns,
                        bank=self.bank,
                        row=row,
                        count=new_count,
                    )
                )

        if new_count % self.threshold != 0:
            return []

        request = VictimRefreshRequest(
            bank=self.bank,
            aggressor_row=row,
            victim_rows=self.victim_rows_of(row),
            time_ns=time_ns,
            threshold_multiple=new_count // self.threshold,
        )
        self.stats.victim_refresh_requests += 1
        self.stats.victim_rows_refreshed += len(request.victim_rows)
        return [request]

    def victim_rows_of(self, aggressor_row: int) -> tuple[int, ...]:
        """Rows an NRR for ``aggressor_row`` refreshes (edge-clipped)."""
        radius = self.config.blast_radius
        return tuple(
            victim
            for distance in range(1, radius + 1)
            for victim in (aggressor_row - distance, aggressor_row + distance)
            if 0 <= victim < self.rows
        )

    # ------------------------------------------------------------------
    # Window management
    # ------------------------------------------------------------------

    def _maybe_reset(self, time_ns: float) -> None:
        window = int(time_ns // self._window_length_ns)
        if window != self._current_window:
            if window < self._current_window:
                raise ValueError(
                    f"time moved backwards across windows: window {window} "
                    f"after window {self._current_window}"
                )
            bus = _telemetry.BUS
            if bus is not None:
                bus.publish(
                    WindowReset(
                        time_ns=time_ns,
                        bank=self.bank,
                        window=window,
                        tracked_rows=len(self.table),
                        spillover=self.table.spillover,
                    )
                )
            self.table.reset()
            self.stats.window_resets += 1
            self._current_window = window

    @property
    def current_window(self) -> int:
        """Index of the reset window the engine last observed."""
        return self._current_window

    def window_of(self, time_ns: float) -> int:
        """Reset-window index containing ``time_ns``."""
        return int(time_ns // self._window_length_ns)

    def force_reset(self) -> None:
        """Explicitly reset table and spillover count (test hook)."""
        self.table.reset()
        self.stats.window_resets += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def tracked_aggressors(self) -> dict[int, int]:
        """Currently tracked rows and their estimated counts."""
        return self.table.tracked()

    def hottest_rows(self, limit: int = 10) -> list[tuple[int, int]]:
        """The ``limit`` highest-estimated rows, hottest first.

        Ties break on the row address (ascending) so snapshots are
        stable across Python hash seeds and interpreter runs.
        """
        ranked = sorted(
            self.table.tracked().items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:limit]

    @property
    def table_bits(self) -> int:
        """Storage footprint of this engine's table (Table IV metric)."""
        return self.config.table_bits_per_bank

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GrapheneEngine(bank={self.bank}, T={self.threshold}, "
            f"N_entry={self.config.num_entries}, window={self._current_window})"
        )
