"""Batched hot path: per-scheme kernels + bank-sharded dispatch.

:func:`repro.sim.simulator.simulate` normally pushes every ACT through
``MemoryController.step`` one :class:`~repro.workloads.trace.ActEvent`
at a time -- per-ACT Python dispatch plus dict/set churn inside the
tracking tables is what makes full-tREFW runs minutes-long.  This
module provides the same semantics in batch form:

* :class:`FastKernel` -- the protocol a scheme implements to join the
  batch engine: a scalar path that replays the reference engine
  operation-for-operation, plus :meth:`~FastKernel.commit_run`, which
  consumes a *prefix* of a pre-validated event run in bulk;
* a **kernel registry** (:func:`register_kernel` / :func:`kernel_for`)
  mapping mitigation-engine types to kernel factories.  Graphene's
  kernel lives here (:class:`FastGrapheneBank` over
  :class:`FastMisraGries`); PARA, TWiCe, CBT and refresh-rate kernels
  live in :mod:`repro.core.fast_kernels` and are registered lazily;
* :class:`FastMemoryController` -- consumes a columnar
  :class:`~repro.workloads.columnar.TraceArray`, partitions it into
  **per-bank lanes** (banks are independent between blocking events),
  dispatches each lane's whole event sequence through the vector/scalar
  machinery, and merges per-lane outputs (latency samples, bit flips,
  executed directives) back into exact global event order.  A
  round-robin interleave across 8 banks -- length-1 contiguous runs,
  the old dispatcher's worst case -- batches exactly as well as a
  single-bank hammer.  Two execution axes scale it further:
  ``shard_workers=N`` fans the lanes across the *persistent* shard
  pool (:mod:`repro.core.shard_pool`): lane state ships to each worker
  once per run and stays resident across chunks, event columns travel
  through shared-memory segments, and only chunk boundary offsets
  cross the IPC channel; ``run(..., chunk_events=N)`` streams
  arbitrarily long traces in bounded chunks with kernel/bank state
  carried across chunk boundaries, double-buffered so chunk ``n+1``
  materializes while chunk ``n`` executes -- both byte-identical to
  the serial in-memory run.  Kernels with bank-shared state (ABACuS)
  run in-process on the vectorized cross-bank lane instead: short
  same-bank runs coalesce into multi-bank segments committed through
  :meth:`FastKernel.commit_run_banked`.

**Equivalence contract.**  Driven over the same stream, the fast
controller produces *byte-identical* state to the reference stack:
same :class:`~repro.sim.metrics.SimulationResult` (including float
latency aggregates), same directive sequence, same tracking-table
contents, same bit flips.  This is possible because:

* the scalar fallback replays ``MemoryController.step``
  operation-for-operation on the *real*
  :class:`~repro.dram.device.DramBankModel` objects;
* an ACT's issue time is either its trace time (bank idle: ``issue ==
  t``) or chained off tRC (bank saturated: ``issue = prev_issue +
  trc``); both recurrences vectorize exactly -- ``np.cumsum`` is a
  sequential left-to-right accumulate, so seeding it with the live
  accumulator reproduces the scalar loop's partial sums bit-for-bit
  (never ``np.sum``, whose pairwise reduction rounds differently);
* a vector segment is truncated before the first auto-refresh pop or
  scheme blocking boundary (:meth:`FastKernel.next_blocking_ns`), and
  each kernel's ``commit_run`` truncates before the first event whose
  outcome the bulk update cannot reproduce (table miss, threshold
  crossing, RNG success, tree split); those events take the scalar
  path, so all blocking/eviction/NRR decisions are made by the exact
  reference logic;
* the per-event latency delays of *all* lanes land in one global
  scatter array and fold into :class:`LatencyTracker` afterwards with
  a seeded sequential cumsum over the positive entries in global event
  order -- the same float64 additions the reference performs; bit
  flips and executed directives are tagged with their global event
  index per lane and heap-merged, so cross-bank ordering is exact.

The fast path never runs when a telemetry bus is installed (per-event
telemetry would be skipped) or when any bank's scheme has no
registered kernel; :func:`build_fast_controller` returns ``None`` (and
:func:`build_fast_controller_ex` additionally names the reason) and
callers fall back to the reference engine.  ``docs/performance.md``
("Hot path") documents the design, the per-scheme kernel coverage and
the measured speedups.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import math
import queue
import threading
from collections import deque
from typing import Any, Callable, Iterable, Iterator, Protocol, runtime_checkable

import numpy as np

from ..controller.mc import ControllerCounters
from ..controller.scheduler import LatencySummary, LatencyTracker
from ..dram.device import DramDevice
from ..dram.faults import BitFlip
from ..mitigations.base import (
    MitigationEngine,
    MitigationFactory,
    MitigationStats,
    RefreshDirective,
)
from ..mitigations.graphene import GrapheneMitigation
from ..telemetry import runtime as _telemetry
from ..workloads.columnar import TraceArray
from .graphene import GrapheneStats

__all__ = [
    "FastKernel",
    "FastMisraGries",
    "FastGrapheneBank",
    "FastMemoryController",
    "register_kernel",
    "kernel_for",
    "kernel_schemes",
    "build_fast_controller",
    "build_fast_controller_ex",
    "reference_table_state",
]

#: Maximum events examined per vector attempt (bounds temporary arrays).
_SPAN = 4096
#: Minimum remaining events for a vector attempt to be worth the setup.
_MIN_VECTOR = 8
#: Ceiling on the scalar back-off after consecutive failed vector
#: attempts; the budget doubles per failure (1, 2, 4, ... _SCALAR_RUN)
#: so one table miss costs one scalar replay, while genuinely
#: miss-heavy streams still stop paying the vector setup per event.
_SCALAR_RUN = 32
#: Back-off ceiling for the *banked* cross-bank lane, whose attempt
#: setup is an order of magnitude above a per-bank probe.
_BANKED_SCALAR_RUN = 256
#: Stay this far (ns) below a scheme blocking boundary in vector mode;
#: boundary-adjacent ACTs take the scalar path where the reference
#: ``int(t // window)`` decides.
_WINDOW_MARGIN_NS = 1e-3

#: Degrade/fallback warnings go to the same logger ``simulate`` uses,
#: deduplicated to once per ``run`` (see ``_note_degrade``).
_log = logging.getLogger("repro.sim")


@runtime_checkable
class FastKernel(Protocol):
    """What a scheme implements to join the batch engine.

    One kernel instance wraps (or replicates) one bank's mitigation
    engine.  The controller owns all *timing* decisions -- issue-time
    regimes, REF truncation, bank-state commit -- and hands the kernel
    only the *tracking* phase.  The contract every method must honor is
    bit-identical equivalence with the reference engine.
    """

    #: Scheme label (matches the wrapped engine's ``name``).
    name: str
    #: The stats object ``simulate()`` reads (``MitigationStats``).
    stats: MitigationStats
    #: Declared capability: ``True`` when the kernel's tracking state is
    #: shared *across* banks (ABACuS), so per-bank lanes are not
    #: independent.  The controller then executes the trace in global
    #: order on the in-process cross-bank lane -- long same-bank runs
    #: batch through :meth:`commit_run`, and interleave-heavy stretches
    #: coalesce into multi-bank segments batched through the optional
    #: ``commit_run_banked(times, rows, banks) -> int`` hook when the
    #: kernel provides one -- and :func:`build_fast_controller_ex`
    #: degrades sharding requests to that lane (worker processes would
    #: each mutate a divergent copy of the shared table).  Per-bank
    #: kernels leave this ``False`` (the protocol default via
    #: ``getattr``).
    cross_bank: bool

    #: Optional capability (``getattr`` default ``False``): ``True``
    #: when ACTs cannot change the kernel's tracking decisions at all
    #: (refresh-rate -- all its work happens at REF ticks), so a failed
    #: vector attempt is always a *timing* boundary and never a reason
    #: to back off into a scalar run.
    act_transparent: bool

    def on_activate(self, row: int, time_ns: float) -> list[RefreshDirective]:
        """Exact scalar replay of the reference engine's ``on_activate``."""
        ...

    def on_refresh_command(self, time_ns: float) -> list[RefreshDirective]:
        """Exact scalar replay of the reference REF callback."""
        ...

    def next_blocking_ns(self) -> float:
        """Next scheme-level blocking boundary (e.g. a reset-window
        edge), or ``inf``.  The controller truncates vector segments
        before it (minus a safety margin) so ``commit_run`` never sees
        an event the scheme would treat specially for *time* reasons."""
        ...

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        """Consume a prefix of a timing-validated event run in bulk.

        ``times`` are the *issue* times the controller resolved (all
        strictly below :meth:`next_blocking_ns`).  Returns ``(consumed,
        directives)``: the kernel must commit exactly ``consumed``
        events' worth of state (including ``stats.activations``) and
        truncate *before* the first event whose outcome bulk arithmetic
        cannot reproduce -- that event then replays through the scalar
        path.  Directives, if any, must be anchored at the final
        committed event (the controller executes them after the batch,
        matching the reference order); kernels that trigger mid-run
        should instead truncate before the triggering event and let the
        scalar replay emit it.  Kernels with draw-consuming state (PARA)
        use :meth:`snapshot`/:meth:`restore` internally to rewind past
        speculative bulk work.
        """
        ...

    def snapshot(self) -> Any:
        """Opaque copy of all mutable kernel state (boundary replay)."""
        ...

    def restore(self, state: Any) -> None:
        """Restore a :meth:`snapshot` -- exact, including RNG streams."""
        ...

    def table_state(self) -> dict[str, Any]:
        """Comparable snapshot for differential checks."""
        ...


# ----------------------------------------------------------------------
# Kernel registry
# ----------------------------------------------------------------------

KernelFactory = Callable[[MitigationEngine], "FastKernel"]

_KERNEL_REGISTRY: dict[type, KernelFactory] = {}
_BUILTINS_LOADED = False


def register_kernel(engine_type: type, factory: KernelFactory) -> None:
    """Register ``factory`` as the batched kernel for ``engine_type``.

    Lookup is by exact type -- a subclass that changes semantics must
    register its own kernel (or get the reference loop)."""
    _KERNEL_REGISTRY[engine_type] = factory


def _ensure_builtin_kernels() -> None:
    """Import :mod:`repro.core.fast_kernels` once (registers on import).

    Lazy so this module can be imported without dragging every
    mitigation module in, and so schemes stay optional."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        from . import fast_kernels  # noqa: F401  (registration side effect)

        _BUILTINS_LOADED = True


def kernel_for(mitigation: MitigationEngine) -> "FastKernel | None":
    """Build the batched kernel wrapping ``mitigation``, or ``None``."""
    _ensure_builtin_kernels()
    factory = _KERNEL_REGISTRY.get(type(mitigation))
    return None if factory is None else factory(mitigation)


def kernel_schemes() -> tuple[str, ...]:
    """Scheme names with a registered kernel (sorted)."""
    _ensure_builtin_kernels()
    return tuple(
        sorted(
            getattr(engine_type, "name", engine_type.__name__)
            for engine_type in _KERNEL_REGISTRY
        )
    )


class FastMisraGries:
    """Misra-Gries summary over preallocated arrays.

    Scalar :meth:`observe` matches
    :meth:`repro.core.misra_gries.MisraGriesTable.observe` decision-for-
    decision, including the smallest-key eviction tie-break (``min``
    over entries whose count equals the spillover count); the vector
    path in :meth:`FastGrapheneBank.commit_run` additionally bumps
    counts of already-tracked rows in bulk.  All counts are exact
    integers, so "bit-for-bit" here is simply "the same integers".
    """

    __slots__ = (
        "capacity",
        "keys",
        "counts",
        "slot_of",
        "size",
        "spillover",
        "observations",
        "last_evicted",
    )

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.keys = np.zeros(capacity, dtype=np.int64)
        self.counts = np.zeros(capacity, dtype=np.int64)
        #: row -> slot index; the CAM lookup.
        self.slot_of: dict[int, int] = {}
        self.size = 0
        self.spillover = 0
        self.observations = 0
        self.last_evicted: int | None = None

    def observe(self, item: int) -> int | None:
        """Process one row; mirrors ``MisraGriesTable.observe``."""
        self.observations += 1
        slot = self.slot_of.get(item)
        if slot is not None:
            new = int(self.counts[slot]) + 1
            self.counts[slot] = new
            return new
        if self.size < self.capacity:
            slot = self.size
            self.keys[slot] = item
            self.counts[slot] = 1
            self.slot_of[item] = slot
            self.size += 1
            return 1
        spillover = self.spillover
        candidates = np.flatnonzero(self.counts[: self.size] == spillover)
        if len(candidates):
            # Smallest key among replaceable entries -- keys are
            # distinct, so argmin picks the unique minimum, same as
            # ``min(replaceable)`` over the reference's bucket set.
            slot = int(candidates[np.argmin(self.keys[candidates])])
            evicted = int(self.keys[slot])
            del self.slot_of[evicted]
            self.keys[slot] = item
            self.counts[slot] = spillover + 1
            self.slot_of[item] = slot
            self.last_evicted = evicted
            return spillover + 1
        self.spillover = spillover + 1
        return None

    def reset(self) -> None:
        self.slot_of.clear()
        self.size = 0
        self.spillover = 0
        self.observations = 0
        self.last_evicted = None

    def __contains__(self, item: int) -> bool:
        return item in self.slot_of

    def __len__(self) -> int:
        return self.size

    def estimated_count(self, item: int) -> int:
        slot = self.slot_of.get(item)
        return 0 if slot is None else int(self.counts[slot])

    def tracked(self) -> dict[int, int]:
        """Snapshot identical to ``MisraGriesTable.tracked()``."""
        return {
            int(self.keys[i]): int(self.counts[i]) for i in range(self.size)
        }


class FastGrapheneBank:
    """One bank's Graphene engine over the array kernel.

    Replicates the ``MitigationEngine.on_activate`` ->
    ``GrapheneMitigation._process_activation`` ->
    ``GrapheneEngine.on_activate`` chain exactly (validation order,
    stats increments, lazy window reset, directive fields), while
    keeping the reference's two stats layers: :attr:`stats`
    (:class:`~repro.mitigations.base.MitigationStats`, read by
    ``simulate``) and :attr:`gstats`
    (:class:`~repro.core.graphene.GrapheneStats`).  Implements the
    :class:`FastKernel` protocol; its :meth:`commit_run` batches pure
    table hits below their next threshold multiple.
    """

    name = "graphene"

    def __init__(self, mitigation: GrapheneMitigation) -> None:
        self.config = mitigation.config
        self.bank = mitigation.bank
        self.rows = mitigation.rows
        self.threshold = self.config.tracking_threshold
        self.window_len = self.config.reset_window_ns
        self.blast_radius = self.config.blast_radius
        self.kernel = FastMisraGries(self.config.num_entries)
        self.stats = MitigationStats()
        self.gstats = GrapheneStats()
        self.current_window = 0

    # ------------------------------------------------------------------
    # Scalar path (exact reference replay)
    # ------------------------------------------------------------------

    def on_activate(self, row: int, time_ns: float) -> list[RefreshDirective]:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        self.stats.activations += 1
        if time_ns < 0:
            raise ValueError("time must be non-negative")
        self._maybe_reset(time_ns)
        self.gstats.activations += 1

        kernel = self.kernel
        was_tracked = row in kernel.slot_of
        new_count = kernel.observe(row)
        if new_count is None:
            self.gstats.spillover_increments += 1
            return []
        if was_tracked:
            self.gstats.table_hits += 1
        else:
            self.gstats.table_insertions += 1
        if new_count % self.threshold != 0:
            return []

        victims = self.victim_rows_of(row)
        self.gstats.victim_refresh_requests += 1
        self.gstats.victim_rows_refreshed += len(victims)
        directives = [
            RefreshDirective(
                bank=self.bank,
                victim_rows=victims,
                time_ns=time_ns,
                aggressor_row=row,
                reason=f"T x {new_count // self.threshold}",
            )
        ]
        self.stats.record(directives)
        return directives

    def on_refresh_command(self, time_ns: float) -> list[RefreshDirective]:
        return []

    def victim_rows_of(self, aggressor_row: int) -> tuple[int, ...]:
        return tuple(
            victim
            for distance in range(1, self.blast_radius + 1)
            for victim in (aggressor_row - distance, aggressor_row + distance)
            if 0 <= victim < self.rows
        )

    def _maybe_reset(self, time_ns: float) -> None:
        window = int(time_ns // self.window_len)
        if window != self.current_window:
            if window < self.current_window:
                raise ValueError(
                    f"time moved backwards across windows: window {window} "
                    f"after window {self.current_window}"
                )
            self.kernel.reset()
            self.gstats.window_resets += 1
            self.current_window = window

    # ------------------------------------------------------------------
    # FastKernel batch interface
    # ------------------------------------------------------------------

    def next_blocking_ns(self) -> float:
        return (self.current_window + 1) * self.window_len

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        """Misra-Gries bulk phase: only already-tracked rows (pure
        hits) below their next threshold multiple may be batched.  The
        first miss or crossing truncates; that event replays scalar."""
        kernel = self.kernel
        threshold = self.threshold
        extent = len(rows)
        uniq, inverse = np.unique(rows, return_inverse=True)
        slots = np.fromiter(
            (kernel.slot_of.get(int(u), -1) for u in uniq),
            dtype=np.int64,
            count=len(uniq),
        )
        missing = slots < 0
        if missing.any():
            extent = min(extent, int(np.argmax(missing[inverse])))
            if extent == 0:
                return 0, []
        inverse = inverse[:extent]
        occurrences = np.bincount(inverse, minlength=len(uniq))
        base = kernel.counts[np.where(missing, 0, slots)]
        to_next_multiple = threshold - base % threshold
        crossing = (
            (occurrences >= to_next_multiple) & ~missing & (occurrences > 0)
        )
        if crossing.any():
            first_trigger = extent
            for u in np.flatnonzero(crossing):
                positions = np.flatnonzero(inverse == u)
                event_index = int(positions[int(to_next_multiple[u]) - 1])
                if event_index < first_trigger:
                    first_trigger = event_index
            extent = first_trigger
            if extent == 0:
                return 0, []
            inverse = inverse[:extent]
            occurrences = np.bincount(inverse, minlength=len(uniq))

        bumped = np.flatnonzero(occurrences)
        # Distinct rows -> distinct slots, so fancy in-place add is safe.
        kernel.counts[slots[bumped]] += occurrences[bumped]
        kernel.observations += extent
        self.gstats.activations += extent
        self.gstats.table_hits += extent
        self.stats.activations += extent
        return extent, []

    def snapshot(self) -> Any:
        kernel = self.kernel
        return (
            kernel.keys.copy(),
            kernel.counts.copy(),
            dict(kernel.slot_of),
            kernel.size,
            kernel.spillover,
            kernel.observations,
            kernel.last_evicted,
            self.current_window,
        )

    def restore(self, state: Any) -> None:
        kernel = self.kernel
        (
            keys,
            counts,
            slot_of,
            kernel.size,
            kernel.spillover,
            kernel.observations,
            kernel.last_evicted,
            self.current_window,
        ) = state
        kernel.keys[:] = keys
        kernel.counts[:] = counts
        kernel.slot_of = dict(slot_of)

    # ------------------------------------------------------------------
    # Parity helpers
    # ------------------------------------------------------------------

    def table_bits(self) -> int:
        return self.config.table_bits_per_bank

    def describe(self) -> str:
        return (
            f"graphene(T={self.config.tracking_threshold}, "
            f"N={self.config.num_entries}, k={self.config.k}, "
            f"radius={self.config.blast_radius})"
        )

    def table_state(self) -> dict[str, object]:
        """Comparable snapshot for differential checks."""
        return {
            "tracked": self.kernel.tracked(),
            "spillover": self.kernel.spillover,
            "observations": self.kernel.observations,
            "window": self.current_window,
        }


def reference_table_state(mitigation: GrapheneMitigation) -> dict[str, object]:
    """The reference engine's snapshot in :meth:`FastGrapheneBank.table_state`
    form, for divergence comparisons."""
    table = mitigation.engine.table
    return {
        "tracked": table.tracked(),
        "spillover": table.spillover,
        "observations": table.observations,
        "window": mitigation.engine.current_window,
    }


class _LaneEngine:
    """The per-bank lane executor: all scalar/vector lane machinery.

    Holds exactly the state a lane needs to run *anywhere* -- the
    counters it increments and whether executed directives are logged
    -- so the same code path serves both the in-process serial
    dispatcher and the sharded worker processes (which build a fresh
    ``ControllerCounters`` each task and ship it home for summation;
    every counter field is an order-independent sum, so merging by
    bank is exact).
    """

    def __init__(
        self,
        counters: ControllerCounters,
        keep_directive_log: bool,
        bank_of: Callable[[int], Any] | None = None,
    ) -> None:
        self.counters = counters
        self.keep_directive_log = keep_directive_log
        #: Resolves a directive's target bank model.  ``None`` in shard
        #: workers, which only ever run per-bank kernels whose
        #: directives target the lane's own bank; the serial dispatcher
        #: passes ``device.bank`` so cross-bank directives (ABACuS)
        #: land on the bank they name, as the reference MC does.
        self.bank_of = bank_of

    def run_lane(
        self,
        bank_model,
        kernel: FastKernel,
        times: np.ndarray,
        rows: np.ndarray,
        gids: np.ndarray,
        delays: np.ndarray,
        flips_out: list,
        directives_out: list,
    ) -> None:
        """One bank's full event sequence, vector where provable."""
        n = len(times)
        index = 0
        scalar_budget = 0
        vector_fails = 0
        act_transparent = getattr(kernel, "act_transparent", False)
        while index < n:
            if scalar_budget == 0 and n - index >= _MIN_VECTOR:
                limit = min(index + _SPAN, n)
                consumed, table_bound, kernel_cut = self._try_vector(
                    bank_model,
                    kernel,
                    times[index:limit],
                    rows[index:limit],
                    gids[index:limit],
                    delays,
                    flips_out,
                    directives_out,
                )
                if consumed:
                    index += consumed
                    vector_fails = 0
                    # A partial commit proves the *next* event is
                    # table-special (miss, crossing, RNG success): one
                    # scalar replay clears it, so skip the vector
                    # attempt that is guaranteed to return 0 on it.
                    scalar_budget = 1 if kernel_cut else 0
                    continue
                # A timing-boundary failure (REF tick, window edge,
                # blocked bank) is structural: one scalar step clears
                # it.  So is any failure under an ACT-transparent
                # kernel.  A table-phase failure (miss/eviction/trigger
                # at the very first event) *may* signal a miss-heavy
                # stream: back off exponentially -- one scalar replay
                # for an isolated miss, up to _SCALAR_RUN when vector
                # attempts keep dying.
                if table_bound and not act_transparent:
                    vector_fails += 1
                    scalar_budget = min(_SCALAR_RUN, 1 << (vector_fails - 1))
                else:
                    scalar_budget = 1
            self._scalar_step(
                bank_model,
                kernel,
                float(times[index]),
                int(rows[index]),
                int(gids[index]),
                delays,
                flips_out,
                directives_out,
            )
            if scalar_budget:
                scalar_budget -= 1
            index += 1

    def _scalar_step(
        self,
        bank_model,
        kernel: FastKernel,
        time_ns: float,
        row: int,
        gid: int,
        delays: np.ndarray,
        flips_out: list,
        directives_out: list,
    ) -> None:
        """One ACT, operation-for-operation as ``MemoryController.step``."""
        issue_ns = bank_model.earliest_activate(time_ns)
        delay_ns = issue_ns - time_ns
        if delay_ns > 0.0:
            delays[gid] = delay_ns
        flips = bank_model.activate(row, issue_ns)
        if flips:
            flips_out.append((gid, flips))
            self.counters.bit_flips += len(flips)
        self.counters.acts_issued += 1

        directives: list[RefreshDirective] = []
        for ref_event in bank_model.drain_refresh_events():
            self.counters.ref_ticks_forwarded += 1
            directives.extend(kernel.on_refresh_command(ref_event.time_ns))
        directives.extend(kernel.on_activate(row, issue_ns))
        for directive in directives:
            self._execute_directive(
                bank_model, directive, issue_ns, gid, directives_out
            )

    def _execute_directive(
        self, bank_model, directive, now_ns: float, gid: int, directives_out
    ) -> None:
        rows = list(directive.victim_rows)
        if not rows:
            return
        if self.bank_of is not None:
            bank_model = self.bank_of(directive.bank)
        bank_model.bank.nearby_row_refresh(len(rows), now_ns)
        if bank_model.faults is not None:
            bank_model.faults.on_refresh_range(rows)
        self.counters.nrr_commands += 1
        self.counters.nrr_rows += len(rows)
        if self.keep_directive_log:
            directives_out.append((gid, directive))

    # ------------------------------------------------------------------
    # Vector path
    # ------------------------------------------------------------------

    def _try_vector(
        self,
        bank_model,
        kernel: FastKernel,
        times: np.ndarray,
        rows: np.ndarray,
        gids: np.ndarray,
        delays: np.ndarray,
        flips_out: list,
        directives_out: list,
    ) -> tuple[int, bool, bool]:
        """Consume a prefix of ``times``/``rows`` in bulk; 0 if none.

        A prefix qualifies only while the per-event recurrence is one of
        two exactly-vectorizable regimes and no blocking event (REF pop,
        scheme boundary) falls inside; the kernel's ``commit_run`` then
        decides how much of the timing-valid prefix the tracking state
        can absorb in bulk.  The comparisons reuse the reference's
        epsilon expressions (``legal <= candidate + 1e-9``) verbatim so
        the regime boundary is decided by the same float operations.

        Returns ``(consumed, table_bound, kernel_cut)``: ``table_bound``
        flags a zero-consumption *tracking* failure (the stream may be
        miss-heavy; the caller backs off), ``kernel_cut`` flags a
        partial commit truncated by the kernel (the next event is
        provably table-special; exactly one scalar replay clears it).
        """
        bank = bank_model.bank
        trc = bank.timings.trc
        if trc <= 2e-9:
            return 0, False, False
        next_act = bank._next_act_ns
        busy = bank._busy_until_ns
        clock = bank_model._clock_ns
        t0 = float(times[0])

        # First blocking event: a REF pop (pops when next_ref <= issue,
        # matching ``pop_due``'s `<=`) or the kernel's next scheme
        # boundary (conservative margin; boundary ACTs go scalar).
        # Bound the working slice by it up front so a segment between
        # two tREFI ticks costs array ops of its own size, not the full
        # span.
        blocking_ns = min(
            bank_model.refresh_engine.next_time_ns,
            kernel.next_blocking_ns() - _WINDOW_MARGIN_NS,
        )

        chained = False
        if clock <= t0 and next_act <= t0 + 1e-9 and busy <= t0 + 1e-9:
            # Idle regime: every ACT issues at its trace time.  Needs
            # prev_time + trc legal (within epsilon) at each successor.
            extent = int(np.searchsorted(times, blocking_ns, side="left"))
            if extent == 0:
                return 0, False, False
            times = times[:extent]
            gaps_ok = (times[:-1] + trc) <= (times[1:] + 1e-9)
            if not gaps_ok.all():
                extent = int(np.argmin(gaps_ok)) + 1
                times = times[:extent]
            # gaps_ok makes the prefix strictly increasing, so its last
            # element is its max; this re-check keeps the searchsorted
            # bound honest even if the input was not globally sorted.
            if float(times[extent - 1]) >= blocking_ns:
                return 0, False, False
            issue = times
        elif busy <= next_act and next_act > t0 + 1e-9 and next_act > clock + 1e-9:
            # Saturated regime: ACTs queue back-to-back, each issuing at
            # prev_issue + trc.  The chain is the scalar loop's exact
            # partial sums (cumsum accumulates left-to-right).
            chained = True
            if next_act >= blocking_ns:
                return 0, False, False
            # issue[k] ~= next_act + k*trc, so this bound overshoots the
            # exact truncation below by at most a couple of elements.
            bound = min(
                len(times), int((blocking_ns - next_act) / trc) + 2
            )
            times = times[:bound]
            seeded = np.full(len(times), trc, dtype=np.float64)
            seeded[0] = next_act
            chain = np.cumsum(seeded)
            ok = chain > times + 1e-9
            if ok.all():
                extent = len(times)
            else:
                extent = int(np.argmin(ok))
                if extent == 0:
                    return 0, False, False
            blocked = chain[:extent] >= blocking_ns
            if blocked.any():
                extent = int(np.argmax(blocked))
                if extent == 0:
                    return 0, False, False
            issue = chain
        else:
            return 0, False, False

        # Tracking phase: the kernel absorbs as much of the prefix as
        # bulk arithmetic can reproduce; the truncating event (miss,
        # crossing, RNG success, split) replays scalar next iteration.
        consumed, directives = kernel.commit_run(
            issue[:extent], rows[:extent]
        )
        if consumed == 0:
            return 0, True, False
        kernel_cut = consumed < extent
        extent = consumed

        # ---- Commit the batch ----------------------------------------
        last_issue = float(issue[extent - 1])
        bank.open_row = int(rows[extent - 1])
        bank._last_act_ns = last_issue
        bank._next_act_ns = last_issue + trc
        bank.stats.activations += extent
        bank.stats.row_buffer_misses += extent
        bank_model._clock_ns = last_issue
        self.counters.acts_issued += extent

        if chained:
            # chain > times (strictly) on the committed prefix, so every
            # delay is positive, matching the reference's `delay > 0`
            # branch; idle-regime delays are exactly 0.0 and the scatter
            # array is already zero-initialized.
            delays[gids[:extent]] = issue[:extent] - times[:extent]

        if bank_model.faults is not None:
            faults = bank_model.faults
            for k in range(extent):
                flips = faults.on_activate(int(rows[k]), float(issue[k]))
                if flips:
                    flips_out.append((int(gids[k]), flips))
                    self.counters.bit_flips += len(flips)

        for directive in directives:
            self._execute_directive(
                bank_model,
                directive,
                last_issue,
                int(gids[extent - 1]),
                directives_out,
            )
        return extent, False, kernel_cut


def _prefetch_chunks(chunks: "Iterator[TraceArray]") -> "Iterator[TraceArray]":
    """Double-buffer a lazy chunk stream on a pump thread.

    The pump materializes chunk ``n+1`` (list-buffering an event
    iterable is pure-Python work that releases the GIL poorly but
    overlaps fine with the numpy-heavy execution of chunk ``n``) while
    the consumer executes chunk ``n``; the queue depth of one bounds
    peak memory at two chunks.  Exceptions raised by the source ship
    through the queue and re-raise in the consumer.  If the consumer
    abandons the generator mid-stream, the daemon pump parks on its
    final ``put`` holding at most one chunk.
    """
    buffer: queue.Queue = queue.Queue(maxsize=1)
    done = object()

    def pump() -> None:
        try:
            for chunk in chunks:
                buffer.put(chunk)
            buffer.put(done)
        except BaseException as exc:  # noqa: BLE001 - relayed to consumer
            buffer.put(exc)

    thread = threading.Thread(
        target=pump, name="repro-chunk-prefetch", daemon=True
    )
    thread.start()
    while True:
        item = buffer.get()
        if item is done:
            break
        if isinstance(item, BaseException):
            thread.join()
            raise item
        yield item
    thread.join()


class FastMemoryController:
    """Bank-sharded twin of ``MemoryController`` for kernel schemes.

    Drives the *real* :class:`~repro.dram.device.DramBankModel` objects:
    scalar steps call the same methods the reference controller calls,
    and vector segments write the same post-state the per-event calls
    would have produced.  The trace is partitioned into per-bank lanes
    up front (banks only share order-sensitive *outputs*, never state),
    each lane runs to completion, and the order-sensitive outputs --
    latency delays, bit flips, the directive log -- are merged back
    into global event order afterwards.  Construct via
    :func:`build_fast_controller`.

    Two orthogonal execution axes on top of the serial in-process
    default:

    * ``shard_workers > 1`` dispatches lanes across the persistent
      shard pool (:mod:`repro.core.shard_pool`): every worker receives
      its banks' models and kernels once per run and keeps them
      resident across chunks; event columns travel through
      shared-memory segments and per-chunk replies carry only sparse
      outputs (positive delays, flips, directives, counter deltas), so
      results stay byte-identical to serial fast mode at any worker
      count.  The pool outlives the run -- and the controller -- and is
      reused by every later sharded run in the process;
    * ``run(..., chunk_events=N)`` streams the trace through the engine
      in bounded chunks with all kernel/bank state carried across chunk
      boundaries -- peak working memory is O(chunk), and with a lazy
      event iterable the full trace is never materialized at all.
      Chunk ``n+1`` materializes while chunk ``n`` executes (pump
      thread in serial mode, pipelined double-buffering against the
      pool in sharded mode).

    Degenerate inputs never pay pool costs: an empty trace returns
    immediately, and a trace whose events all land on one bank (a
    single lane) runs serial fast mode with a once-per-run warning.
    """

    def __init__(
        self,
        device: DramDevice,
        engines: list[FastKernel],
        keep_directive_log: bool = False,
        shard_workers: int = 1,
    ) -> None:
        if shard_workers < 1:
            raise ValueError(
                f"shard_workers must be >= 1, got {shard_workers}"
            )
        self.device = device
        self.engines = engines
        self.latency = LatencyTracker()
        self.counters = ControllerCounters()
        self.bit_flips: list[BitFlip] = []
        self.directive_log: list[RefreshDirective] | None = (
            [] if keep_directive_log else None
        )
        #: Any kernel with bank-shared tracking state forces single-lane
        #: execution: global order on the cross-bank lane, never per-bank
        #: lanes (and never a shard pool -- divergent copies of the
        #: shared table would be silently wrong, so that combination is
        #: rejected here; ``build_fast_controller_ex`` degrades the
        #: request with a note before construction instead).
        self.cross_bank = any(
            getattr(engine, "cross_bank", False) for engine in engines
        )
        if self.cross_bank and shard_workers > 1:
            raise ValueError(
                "cross_bank kernels share tracking state across banks and "
                "cannot run sharded lanes; use shard_workers=1"
            )
        self.shard_workers = shard_workers
        #: Advisory note set by :func:`build_fast_controller_ex` when a
        #: sharding request silently degraded to serial fast mode.
        self.shard_note: str | None = None
        #: Timestamp of the last event consumed (across all chunks), so
        #: streaming callers need not keep the trace around.
        self.last_event_ns = 0.0
        self._lane = _LaneEngine(
            self.counters, keep_directive_log, bank_of=device.bank
        )
        #: Degrade warnings already logged this run (once-per-run dedupe
        #: for per-chunk call sites).
        self._run_warnings: set[str] = set()
        #: Adaptive attempt window for the banked cross-bank lane; a
        #: pure throughput heuristic (results are window-invariant),
        #: carried across segments so each slab starts where the
        #: workload's observed cadence left it.
        self._banked_span = 4 * _MIN_VECTOR

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, events, chunk_events: int | None = None) -> None:
        """Drive the full system from a time-sorted ACT stream.

        Accepts a :class:`TraceArray` or any ``ActEvent`` iterable.
        With ``chunk_events`` the stream executes in bounded chunks
        (state carried across boundaries; an iterable input is never
        fully materialized); without it, non-array input is
        materialized into one :class:`TraceArray` first.
        """
        self._run_warnings.clear()
        whole = events if isinstance(events, TraceArray) else None
        if whole is None and chunk_events is None:
            whole = TraceArray.from_events(events)
        pooled = self.shard_workers > 1 and len(self.engines) > 1

        if whole is not None:
            if len(whole) == 0:
                # Nothing to execute -- in particular, no worker pool is
                # touched (the per-call executor used to spin up even
                # for zero events).
                return
            if pooled and len(np.unique(whole.bank)) < 2:
                self._note_degrade(self._single_lane_note())
                pooled = False
            if pooled:
                self._run_pooled_whole(whole, chunk_events)
            elif chunk_events is None:
                self._run_chunk(whole)
            else:
                for chunk in whole.chunks(chunk_events):
                    self._run_chunk(chunk)
            return

        from ..workloads.columnar import iter_chunk_arrays

        chunks = iter_chunk_arrays(events, chunk_events)
        first = next(chunks, None)
        if first is None or len(first) == 0:
            return
        # A one-chunk stream whose events all hit one bank is a single
        # lane: peek one chunk ahead so the guard can tell (multi-chunk
        # streams go to the pool regardless -- later chunks may fan
        # out, and scanning the whole stream would defeat streaming).
        second = next(chunks, None) if pooled else None
        if pooled and second is None and len(np.unique(first.bank)) < 2:
            self._note_degrade(self._single_lane_note())
            pooled = False
        head = [c for c in (first, second) if c is not None]
        stream = itertools.chain(head, chunks)
        if pooled:
            self._run_pooled_stream(stream)
        else:
            for chunk in _prefetch_chunks(stream):
                self._run_chunk(chunk)

    def _single_lane_note(self) -> str:
        return (
            f"sharding requested ({self.shard_workers} workers) but the "
            "trace resolved to a single lane (every event on one bank); "
            "running serial fast mode without a worker pool"
        )

    def _note_degrade(self, message: str) -> None:
        """Log a degrade/fallback warning once per ``run``.

        Chunked streaming reaches degrade decisions once per chunk;
        the dedupe keeps the log at one line per distinct reason per
        run while the runner's job note machinery stays intact.
        """
        if message in self._run_warnings:
            return
        self._run_warnings.add(message)
        _log.warning("fast path: %s", message)

    # ------------------------------------------------------------------
    # Pooled execution (persistent shard pool)
    # ------------------------------------------------------------------

    def _acquire_pool(self):
        """The process pool plus this run's workers, or a degrade reason."""
        from . import shard_pool as _shard_pool

        requested = min(self.shard_workers, len(self.engines))
        try:
            pool = _shard_pool.get_pool()
            workers = pool.ensure(requested)
        except Exception as exc:  # noqa: BLE001 - any spawn failure degrades
            return None, (
                f"shard pool unavailable ({exc}); running serial fast mode"
            )
        return pool, workers

    def _run_pooled_whole(
        self, trace: TraceArray, chunk_events: int | None
    ) -> None:
        """Sharded run over an in-memory trace: one segment, many chunks.

        The columns are exported to shared memory exactly once; chunk
        messages carry only ``(segment, start, stop)`` offsets.
        """
        pool, workers = self._acquire_pool()
        if pool is None:
            size = chunk_events or len(trace)
            for chunk in trace.chunks(size):
                self._note_degrade(workers)
                self._run_chunk(chunk)
            return

        def plan():
            meta = pool.export(trace)
            size = chunk_events or len(trace)
            for start in range(0, len(trace), size):
                stop = min(start + size, len(trace))
                yield meta, start, stop, float(trace.time_ns[stop - 1]), False

        self._drive_pool(pool, workers, plan())

    def _run_pooled_stream(self, chunks) -> None:
        """Sharded run over a lazy chunk stream: one segment per chunk.

        Exporting chunk ``n+1`` (and materializing it from the source
        iterable) overlaps with the workers executing chunk ``n`` --
        the double buffer in :meth:`_drive_pool` collects a chunk only
        after the next one has been queued.
        """
        pool, workers = self._acquire_pool()
        if pool is None:
            for chunk in chunks:
                self._note_degrade(workers)
                self._run_chunk(chunk)
            return

        def plan():
            for chunk in chunks:
                if len(chunk) == 0:
                    continue
                meta = pool.export(chunk)
                yield meta, 0, len(chunk), float(chunk.time_ns[-1]), True

        self._drive_pool(pool, workers, plan())

    def _drive_pool(self, pool, workers, plan) -> None:
        """Ship lane state once, stream chunk offsets, collect in order.

        Bank ``i`` lives on worker ``i % len(workers)`` for the whole
        run (deterministic assignment; collection is in worker order,
        so scheduling never orders any output).  At most two chunks
        are in flight: send chunk ``n+1``, then collect chunk ``n``.
        On any failure -- a worker error, an interrupt -- the pool is
        aborted: workers' resident state has diverged from the
        parent's, so they are killed and every live shared-memory
        segment is unlinked before the exception propagates.
        """
        keep_log = self.directive_log is not None
        assignments: list[list] = [[] for _ in workers]
        for bank_index in range(len(self.engines)):
            assignments[bank_index % len(workers)].append((
                bank_index,
                self.device.bank(bank_index),
                self.engines[bank_index],
            ))
        try:
            for worker, lanes in zip(workers, assignments):
                worker.send(("start", lanes, keep_log))
            for worker in workers:
                worker.recv()
            pending: deque = deque()
            for record in plan:
                for worker in workers:
                    worker.send(("chunk", record[0], record[1], record[2]))
                pending.append(record)
                if len(pending) >= 2:
                    self._collect_pooled_chunk(
                        pool, workers, pending.popleft()
                    )
            while pending:
                self._collect_pooled_chunk(pool, workers, pending.popleft())
            for worker in workers:
                worker.send(("finish",))
            for worker in workers:
                for bank_index, bank_model, kernel in worker.recv()[1]:
                    self.device.banks[bank_index] = bank_model
                    self.engines[bank_index] = kernel
            pool.runs_served += 1
        except BaseException:
            pool.abort()
            raise
        finally:
            pool.release_all()

    def _collect_pooled_chunk(self, pool, workers, record) -> None:
        """Merge one chunk's worker replies (strict worker order)."""
        meta, start, stop, last_time_ns, owned = record
        delays = np.zeros(stop - start, dtype=np.float64)
        flip_lanes: list[list[tuple[int, list[BitFlip]]]] = []
        directive_lanes: list[list[tuple[int, RefreshDirective]]] = []
        for worker in workers:
            _, positions, values, w_flips, w_dirs, counters = worker.recv()
            if len(positions):
                delays[positions] = values
            flip_lanes.extend(w_flips)
            directive_lanes.extend(w_dirs)
            self.counters.absorb(ControllerCounters(*counters))
        self._merge_chunk(last_time_ns, delays, flip_lanes, directive_lanes)
        if owned:
            pool.release(meta.name)

    # ------------------------------------------------------------------
    # In-process execution
    # ------------------------------------------------------------------

    def _run_chunk(self, trace: TraceArray) -> None:
        """One chunk through the in-process serial lane dispatcher."""
        n = len(trace)
        if n == 0:
            return
        # Per-event issue delays, scattered by global index; folded into
        # the tracker once per chunk, in global order (see _fold_delays
        # -- the fold seeds its cumsum with the tracker's running total,
        # so chunked folding reproduces the unchunked float sums).
        delays = np.zeros(n, dtype=np.float64)
        if self.cross_bank:
            self._run_chunk_single_lane(trace, delays)
            return
        flip_lanes: list[list[tuple[int, list[BitFlip]]]] = []
        directive_lanes: list[list[tuple[int, RefreshDirective]]] = []
        for bank_index, lane_indices in trace.bank_partition():
            lane_flips: list[tuple[int, list[BitFlip]]] = []
            lane_directives: list[tuple[int, RefreshDirective]] = []
            self._lane.run_lane(
                self.device.bank(bank_index),
                self.engines[bank_index],
                trace.time_ns[lane_indices],
                trace.row[lane_indices],
                lane_indices,
                delays,
                lane_flips,
                lane_directives,
            )
            flip_lanes.append(lane_flips)
            directive_lanes.append(lane_directives)
        self._merge_chunk(
            float(trace.time_ns[-1]), delays, flip_lanes, directive_lanes
        )

    def _run_chunk_single_lane(
        self, trace: TraceArray, delays: np.ndarray
    ) -> None:
        """One chunk in global order for cross-bank kernels.

        A kernel whose tracking state spans banks (ABACuS) makes bank
        lanes order-dependent: an ACT on bank 0 can trigger refreshes
        on bank 3, and the shared table's next decision depends on the
        interleaved sequence.  So the chunk executes in global order:
        long contiguous same-bank runs go through the per-lane
        vector/scalar machinery (batching survives wherever runs are
        long), and stretches of *short* runs -- a round-robin
        interleave degenerates to length-1 runs, pure scalar under the
        old dispatcher -- coalesce into multi-bank segments that the
        vectorized cross-bank lane (:meth:`_try_vector_banked`) commits
        through the kernel's ``commit_run_banked`` hook.  Every output
        tag is globally ascending by construction (no per-lane merge
        needed).
        """
        flips_out: list[tuple[int, list[BitFlip]]] = []
        directives_out: list[tuple[int, RefreshDirective]] = []
        banked = self.engines and hasattr(
            self.engines[0], "commit_run_banked"
        )
        if not banked:
            for start, stop, bank_index in trace.bank_runs():
                self._run_lane_span(
                    trace, start, stop, bank_index,
                    delays, flips_out, directives_out,
                )
            self._merge_chunk(
                float(trace.time_ns[-1]), delays,
                [flips_out], [directives_out],
            )
            return
        # Run segmentation stays in numpy: a fully interleaved trace
        # degenerates to length-1 same-bank runs, and iterating those
        # one generator yield at a time costs more than executing them.
        # Long runs go through the per-lane machinery; everything
        # between two long runs feeds the banked engine in _SPAN-sized
        # slabs (slab boundaries only bound what one call *sees*, never
        # what a vector attempt may commit -- truncation rules are all
        # prefix-local, so placement is identity-free).
        bank_arr = trace.bank
        n = len(bank_arr)
        change = np.flatnonzero(bank_arr[1:] != bank_arr[:-1]) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
        ends = np.concatenate((change, np.array([n], dtype=np.int64)))
        long_runs = np.flatnonzero((ends - starts) >= _MIN_VECTOR)
        cursor = 0
        for run in long_runs:
            a, b = int(starts[run]), int(ends[run])
            if cursor < a:
                self._emit_banked_segments(
                    trace, cursor, a, delays, flips_out, directives_out
                )
            self._run_lane_span(
                trace, a, b, int(bank_arr[a]),
                delays, flips_out, directives_out,
            )
            cursor = b
        if cursor < n:
            self._emit_banked_segments(
                trace, cursor, n, delays, flips_out, directives_out
            )
        self._merge_chunk(
            float(trace.time_ns[-1]), delays, [flips_out], [directives_out]
        )

    def _run_lane_span(
        self, trace, start, stop, bank_index,
        delays, flips_out, directives_out,
    ) -> None:
        """One contiguous same-bank run through the lane machinery."""
        self._lane.run_lane(
            self.device.bank(bank_index),
            self.engines[bank_index],
            trace.time_ns[start:stop],
            trace.row[start:stop],
            np.arange(start, stop, dtype=np.int64),
            delays,
            flips_out,
            directives_out,
        )

    def _emit_banked_segments(
        self, trace, start, stop, delays, flips_out, directives_out,
    ) -> None:
        """One interleave-heavy stretch, sliced into banked slabs.

        The stretch is everything between two long same-bank runs (or a
        chunk edge); ``_run_banked_segment`` handles any event mix, so
        the only job here is bounding slab size to keep attempt windows
        and per-slab slices cache-sized.
        """
        for a in range(start, stop, _SPAN):
            self._run_banked_segment(
                trace, a, min(a + _SPAN, stop),
                delays, flips_out, directives_out,
            )

    def _run_banked_segment(
        self, trace, seg_start, seg_stop,
        delays, flips_out, directives_out,
    ) -> None:
        """An interleave-heavy stretch of a cross-bank chunk.

        The same vector/scalar alternation as ``run_lane`` -- with the
        same exponential back-off -- but a vector attempt spans every
        bank in the segment: per-bank timing regimes validate
        independently (banks share no timing state) and the shared
        table commits in global order via ``commit_run_banked``.

        Attempt windows are *adaptive*: a banked attempt's setup cost
        (unique/argsort/grouping over the window) is paid whether or
        not the kernel consumes much, so the window tracks recent
        consumption -- doubling after a fully-consumed attempt up to
        ``_SPAN``, shrinking toward the achieved extent after a
        truncated one.  Window size only bounds how much is *offered*;
        every truncation rule depends on the prefix alone, so results
        are identical at any window size.
        """
        times = trace.time_ns[seg_start:seg_stop]
        rows = trace.row[seg_start:seg_stop]
        banks = trace.bank[seg_start:seg_stop]
        n = seg_stop - seg_start
        index = 0
        scalar_budget = 0
        vector_fails = 0
        span = self._banked_span
        while index < n:
            if scalar_budget == 0 and n - index >= _MIN_VECTOR:
                limit = min(index + span, n)
                consumed, table_bound, kernel_cut = self._try_vector_banked(
                    times[index:limit],
                    rows[index:limit],
                    banks[index:limit],
                    seg_start + index,
                    delays,
                    flips_out,
                )
                if consumed:
                    if consumed == limit - index:
                        span = min(_SPAN, span * 2)
                        scalar_budget = 0
                        vector_fails = 0
                    elif consumed >= 4 * _MIN_VECTOR:
                        span = min(span, max(4 * _MIN_VECTOR, 2 * consumed))
                        # A partial commit means the cut event itself
                        # is unconsumable right now -- blocked by a REF
                        # boundary, a timing-gap violation, or a
                        # trigger landing on it.  Retrying the vector
                        # immediately would fail on that same event, so
                        # clear it scalar first (which also forwards
                        # the REF tick when that is the blocker).
                        scalar_budget = 1
                        vector_fails = 0
                    else:
                        # A *tiny* commit repaid none of the attempt's
                        # setup (unique/argsort/grouping over the
                        # window).  Trigger-dense, miss-heavy or
                        # jittered traffic produces these back to
                        # back, so they back off exponentially exactly
                        # like failures.
                        span = max(4 * _MIN_VECTOR, span // 2)
                        vector_fails += 1
                        scalar_budget = min(
                            _BANKED_SCALAR_RUN, 1 << (vector_fails - 1)
                        )
                    index += consumed
                    continue
                span = max(4 * _MIN_VECTOR, span // 2)
                vector_fails += 1
                # The banked cap is far above the per-bank lane's: a
                # banked attempt's setup (unique/argsort/grouping over
                # the whole window) dwarfs a per-bank probe, so a
                # stream that keeps rebuffing it -- e.g. Misra-Gries
                # misses on nearly every row at toy thresholds --
                # must converge to the plain scalar loop, probing only
                # once every few hundred events.
                scalar_budget = min(
                    _BANKED_SCALAR_RUN, 1 << (vector_fails - 1)
                )
            bank_index = int(banks[index])
            self._lane._scalar_step(
                self.device.bank(bank_index),
                self.engines[bank_index],
                float(times[index]),
                int(rows[index]),
                seg_start + index,
                delays,
                flips_out,
                directives_out,
            )
            if scalar_budget:
                scalar_budget -= 1
            index += 1
        # The window heuristic carries across segments and chunks: the
        # workload's trigger/REF cadence, which is what the span tracks,
        # does not reset at slab boundaries.
        self._banked_span = span

    def _try_vector_banked(
        self, times, rows, banks, gid_base, delays, flips_out
    ) -> tuple[int, bool, bool]:
        """Multi-bank vector attempt for the cross-bank lane.

        Timing validation is ``_try_vector``'s per-bank logic applied
        to each bank's event subsequence against that bank's own state
        (identical regimes, identical epsilon expressions); the global
        extent is the minimum cut across banks, which keeps every
        bank's committed prefix prefix-valid.  Tracking then commits in
        *global order* through the kernel's ``commit_run_banked`` --
        issue times may interleave non-monotonically across banks, but
        the reference processes events in trace order too, so order,
        not time, is what the shared table sees.  Returns the same
        ``(consumed, table_bound, kernel_cut)`` triple as
        ``_try_vector``.

        REF boundaries cut *per bank* when the kernel declares
        ``ref_transparent`` (REF ticks never touch its tracking state):
        bank ``b``'s lane stops before its own next auto-refresh, but
        the other banks' events continue past it -- without this, the
        staggered per-bank tREFI ticks of an 8-bank interleave bound
        every batch to ~tREFI/8 of events.  The tick itself is
        forwarded by the cut event's scalar replay, exactly as in the
        per-bank lane path.
        """
        if int(banks.max()) >= 63:
            # The banked kernel's SAV bits live in int64 vector math;
            # a >= 63-bank device replays scalar (Python ints) instead.
            return 0, False, False
        first_bank = int(banks[0])
        kernel = self.engines[first_bank]
        ref_transparent = getattr(kernel, "ref_transparent", False)
        blocking_ns = kernel.next_blocking_ns() - _WINDOW_MARGIN_NS
        # Cheap pre-check: a structural cut at position 0 can only come
        # from the *first* event's bank (it alone owns global position
        # 0), and that happens every time an attempt window starts on a
        # REF boundary -- the per-boundary cadence of an interleaved
        # trace.  Deciding it from one bank's scalars skips the whole
        # windowed setup; any uncertain case falls through.
        first_model = self.device.bank(first_bank)
        first_t0 = float(times[0])
        first_block = blocking_ns
        if ref_transparent:
            first_block = min(
                blocking_ns, first_model.refresh_engine.next_time_ns
            )
        fb = first_model.bank
        if (
            first_model._clock_ns <= first_t0
            and fb._next_act_ns <= first_t0 + 1e-9
            and fb._busy_until_ns <= first_t0 + 1e-9
        ):
            if first_t0 >= first_block:
                return 0, False, False
        elif (
            fb._busy_until_ns <= fb._next_act_ns
            and fb._next_act_ns > first_t0 + 1e-9
            and fb._next_act_ns > first_model._clock_ns + 1e-9
        ):
            if fb._next_act_ns >= first_block:
                return 0, False, False
        else:
            # Neither regime matches the first event's bank: the loop
            # below would cut it at position 0 regardless.
            return 0, False, False
        uniq_banks = np.unique(banks)
        models: dict[int, Any] = {}
        for bank_index in uniq_banks:
            model = self.device.bank(int(bank_index))
            models[int(bank_index)] = model
            if not ref_transparent:
                blocking_ns = min(
                    blocking_ns, model.refresh_engine.next_time_ns
                )
            if model.bank.timings.trc <= 2e-9:
                return 0, False, False
        extent = int(np.searchsorted(times, blocking_ns, side="left"))
        if extent == 0:
            return 0, False, False

        issue = times[:extent].copy()
        cut = extent
        chained: list[int] = []
        for bank_index in uniq_banks:
            b = int(bank_index)
            positions = np.flatnonzero(banks[:extent] == b)
            if not len(positions):
                continue
            model = models[b]
            bank = model.bank
            trc = bank.timings.trc
            bank_times = times[positions]
            t0 = float(bank_times[0])
            next_act = bank._next_act_ns
            busy = bank._busy_until_ns
            clock = model._clock_ns
            bank_block = blocking_ns
            if ref_transparent:
                # This bank's own REF boundary; other banks' lanes run
                # past it.  (Without ref_transparent, blocking_ns
                # already folds in every bank's next REF.)
                bank_block = min(
                    blocking_ns, model.refresh_engine.next_time_ns
                )
            if clock <= t0 and next_act <= t0 + 1e-9 and busy <= t0 + 1e-9:
                # Idle regime: this bank's ACTs issue at trace time.
                ref_cut = int(
                    np.searchsorted(bank_times, bank_block, side="left")
                )
                if ref_cut < len(positions):
                    cut = min(cut, int(positions[ref_cut]))
                gaps_ok = (
                    (bank_times[:-1] + trc) <= (bank_times[1:] + 1e-9)
                )
                if not gaps_ok.all():
                    bad = int(np.argmin(gaps_ok)) + 1
                    cut = min(cut, int(positions[bad]))
            elif (
                busy <= next_act
                and next_act > t0 + 1e-9
                and next_act > clock + 1e-9
            ):
                # Saturated regime: this bank's ACTs chain off tRC.
                if next_act >= bank_block:
                    cut = min(cut, int(positions[0]))
                    continue
                seeded = np.full(len(bank_times), trc, dtype=np.float64)
                seeded[0] = next_act
                chain = np.cumsum(seeded)
                ok = chain > bank_times + 1e-9
                if not ok.all():
                    cut = min(cut, int(positions[int(np.argmin(ok))]))
                blocked = chain >= bank_block
                if blocked.any():
                    cut = min(
                        cut, int(positions[int(np.argmax(blocked))])
                    )
                issue[positions] = chain
                chained.append(b)
            else:
                cut = min(cut, int(positions[0]))
            if cut == 0:
                return 0, False, False
        extent = cut
        if extent == 0:
            # A bank's cut can land on position 0 via a `continue`
            # branch above, skipping the in-loop early return.
            return 0, False, False

        timing_extent = extent
        consumed = kernel.commit_run_banked(
            issue[:extent], rows[:extent], banks[:extent]
        )
        if consumed == 0:
            return 0, True, False
        kernel_cut = consumed < timing_extent
        extent = consumed

        # ---- Commit the batch (per-bank device state, global stats) --
        for bank_index in uniq_banks:
            b = int(bank_index)
            positions = np.flatnonzero(banks[:extent] == b)
            if not len(positions):
                continue
            model = models[b]
            bank = model.bank
            last = int(positions[-1])
            last_issue = float(issue[last])
            bank.open_row = int(rows[last])
            bank._last_act_ns = last_issue
            bank._next_act_ns = last_issue + bank.timings.trc
            bank.stats.activations += len(positions)
            bank.stats.row_buffer_misses += len(positions)
            model._clock_ns = last_issue
            # Per-bank engine stats: the reference bumps the receiving
            # bank's MitigationStats per ACT; commit_run_banked owns
            # only the shared-table side.
            self.engines[b].stats.activations += len(positions)
            if b in chained:
                delays[gid_base + positions] = (
                    issue[positions] - times[positions]
                )
        self.counters.acts_issued += extent

        if any(models[int(b)].faults is not None for b in uniq_banks):
            for k in range(extent):
                model = models[int(banks[k])]
                if model.faults is None:
                    continue
                flips = model.faults.on_activate(
                    int(rows[k]), float(issue[k])
                )
                if flips:
                    flips_out.append((gid_base + k, flips))
                    self.counters.bit_flips += len(flips)
        return extent, False, kernel_cut

    def _merge_chunk(
        self,
        last_time_ns: float,
        delays: np.ndarray,
        flip_lanes: list,
        directive_lanes: list,
    ) -> None:
        """Fold a chunk's per-lane outputs back into global order."""
        self._fold_delays(delays)
        # Each lane's tags are ascending in global index and indices are
        # unique across lanes, so a heap merge restores the exact order
        # the reference's single event loop would have produced.
        for _, flips in heapq.merge(*flip_lanes, key=lambda tag: tag[0]):
            self.bit_flips.extend(flips)
        if self.directive_log is not None:
            for _, directive in heapq.merge(
                *directive_lanes, key=lambda tag: tag[0]
            ):
                self.directive_log.append(directive)
        self.last_event_ns = last_time_ns

    def _fold_delays(self, delays: np.ndarray) -> None:
        """Fold the global delay scatter into the tracker in one pass.

        Reproduces per-event ``LatencyTracker.record`` state exactly:
        the float total is a seeded sequential cumsum over the positive
        delays *in global event order* (same rounding as the scalar
        ``+=``), and log2 bucket exponents come from ``np.frexp`` --
        exact bit manipulation -- except in the narrow band where
        ``math.log2`` may round up across an integer, which replays the
        reference's scalar expression.  All other tracker fields are
        order-independent counts.
        """
        tracker = self.latency
        count = len(delays)
        tracker._count += count
        positive = np.flatnonzero(delays > 0.0)
        tracker._buckets[0] += count - len(positive)
        if not len(positive):
            return
        pos = delays[positive]
        tracker._delayed += len(pos)
        seeded = np.empty(len(pos) + 1, dtype=np.float64)
        seeded[0] = tracker._total
        seeded[1:] = pos
        tracker._total = float(np.cumsum(seeded)[-1])
        peak = float(pos.max())
        if peak > tracker._max:
            tracker._max = peak
        floored = np.maximum(pos, 1.0)
        mantissa, frexp_exp = np.frexp(floored)
        exponents = frexp_exp.astype(np.int64) - 1
        risky = mantissa >= 1.0 - 1e-12
        if risky.any():
            for j in np.flatnonzero(risky):
                exponents[j] = max(
                    0, int(math.log2(max(float(pos[j]), 1.0)))
                )
        np.minimum(exponents, LatencyTracker._MAX_EXPONENT, out=exponents)
        bucket_counts = np.bincount(exponents + 1, minlength=32)
        buckets = tracker._buckets
        for index in np.flatnonzero(bucket_counts):
            buckets[index] += int(bucket_counts[index])

    # ------------------------------------------------------------------
    # Results (``MemoryController`` parity)
    # ------------------------------------------------------------------

    def latency_summary(self) -> LatencySummary:
        return self.latency.summary()

    def engine_stats(self):
        return [engine.stats for engine in self.engines]

    def total_victim_rows_refreshed(self) -> int:
        return sum(engine.stats.rows_refreshed for engine in self.engines)

    def describe(self) -> str:
        scheme = self.engines[0].describe() if self.engines else "none"
        return (
            f"FastMemoryController(banks={len(self.engines)}, "
            f"scheme={scheme})"
        )


def build_fast_controller_ex(
    device: DramDevice,
    factory: MitigationFactory,
    keep_directive_log: bool = False,
    shard_workers: int = 1,
) -> tuple[FastMemoryController | None, str | None]:
    """Build the fast controller, or ``(None, reason)`` if it cannot
    apply.  Fallback triggers (the caller should use the reference
    ``MemoryController``):

    * a telemetry bus is installed -- the vector path cannot publish
      the per-event telemetry the reference emits;
    * some bank's engine type has no registered kernel (see
      :func:`register_kernel`; :func:`kernel_schemes` lists coverage).

    ``shard_workers > 1`` requests the process-pool lane dispatcher.
    On a device with fewer than two banks there is only one lane, so
    sharding degrades to serial fast mode; likewise when any kernel
    declares the ``cross_bank`` capability (ABACuS) -- independent
    worker processes would each mutate a divergent copy of the shared
    tracking table.  The built controller then carries a ``shard_note``
    naming the requested worker count *and the capability that forced
    the degrade* so callers (``simulate``, the experiment runner's job
    notes) can surface the silent degrade instead of swallowing it.
    """
    if shard_workers < 1:
        # A nonsense worker count is a caller bug, not a configuration
        # the reference loop should quietly absorb.
        raise ValueError(f"shard_workers must be >= 1, got {shard_workers}")
    if _telemetry.BUS is not None:
        return None, (
            "telemetry bus active (per-event telemetry needs the "
            "reference loop)"
        )
    mitigations = [
        factory(bank, device.geometry.rows_per_bank)
        for bank in range(device.geometry.total_banks)
    ]
    engines: list[FastKernel] = []
    for mitigation in mitigations:
        kernel = kernel_for(mitigation)
        if kernel is None:
            scheme = getattr(mitigation, "name", type(mitigation).__name__)
            return None, f"no batched kernel for scheme {scheme!r}"
        engines.append(kernel)
    shard_note = None
    if shard_workers > 1 and device.geometry.total_banks < 2:
        shard_note = (
            f"sharding requested ({shard_workers} workers) but the device "
            f"has a single bank (one lane); running serial fast mode "
            f"without the shard pool"
        )
        shard_workers = 1
    cross_bank_schemes = sorted(
        {
            engine.name
            for engine in engines
            if getattr(engine, "cross_bank", False)
        }
    )
    if shard_workers > 1 and cross_bank_schemes:
        shard_note = (
            f"sharding requested ({shard_workers} workers) but scheme "
            f"{cross_bank_schemes[0]!r} declares the cross_bank capability "
            f"(tracking state shared across banks); running serial fast "
            f"mode on the vectorized cross-bank lane"
        )
        shard_workers = 1
    controller = FastMemoryController(
        device, engines, keep_directive_log, shard_workers=shard_workers
    )
    controller.shard_note = shard_note
    return controller, None


def build_fast_controller(
    device: DramDevice,
    factory: MitigationFactory,
    keep_directive_log: bool = False,
) -> FastMemoryController | None:
    """:func:`build_fast_controller_ex` without the fallback reason."""
    controller, _ = build_fast_controller_ex(
        device, factory, keep_directive_log
    )
    return controller


# Graphene's kernel lives in this module; the rest register from
# repro.core.fast_kernels on first lookup.
register_kernel(GrapheneMitigation, FastGrapheneBank)
