"""Batched hot path: per-scheme kernels + bank-sharded dispatch.

:func:`repro.sim.simulator.simulate` normally pushes every ACT through
``MemoryController.step`` one :class:`~repro.workloads.trace.ActEvent`
at a time -- per-ACT Python dispatch plus dict/set churn inside the
tracking tables is what makes full-tREFW runs minutes-long.  This
module provides the same semantics in batch form:

* :class:`FastKernel` -- the protocol a scheme implements to join the
  batch engine: a scalar path that replays the reference engine
  operation-for-operation, plus :meth:`~FastKernel.commit_run`, which
  consumes a *prefix* of a pre-validated event run in bulk;
* a **kernel registry** (:func:`register_kernel` / :func:`kernel_for`)
  mapping mitigation-engine types to kernel factories.  Graphene's
  kernel lives here (:class:`FastGrapheneBank` over
  :class:`FastMisraGries`); PARA, TWiCe, CBT and refresh-rate kernels
  live in :mod:`repro.core.fast_kernels` and are registered lazily;
* :class:`FastMemoryController` -- consumes a columnar
  :class:`~repro.workloads.columnar.TraceArray`, partitions it into
  **per-bank lanes** (banks are independent between blocking events),
  dispatches each lane's whole event sequence through the vector/scalar
  machinery, and merges per-lane outputs (latency samples, bit flips,
  executed directives) back into exact global event order.  A
  round-robin interleave across 8 banks -- length-1 contiguous runs,
  the old dispatcher's worst case -- batches exactly as well as a
  single-bank hammer.  Two execution axes scale it further:
  ``shard_workers=N`` fans the lanes across a process pool (one
  :func:`_shard_lane_task` per bank, state shipped out and back,
  outputs remapped to global indices), and ``run(...,
  chunk_events=N)`` streams arbitrarily long traces in bounded chunks
  with kernel/bank state carried across chunk boundaries -- both
  byte-identical to the serial in-memory run.

**Equivalence contract.**  Driven over the same stream, the fast
controller produces *byte-identical* state to the reference stack:
same :class:`~repro.sim.metrics.SimulationResult` (including float
latency aggregates), same directive sequence, same tracking-table
contents, same bit flips.  This is possible because:

* the scalar fallback replays ``MemoryController.step``
  operation-for-operation on the *real*
  :class:`~repro.dram.device.DramBankModel` objects;
* an ACT's issue time is either its trace time (bank idle: ``issue ==
  t``) or chained off tRC (bank saturated: ``issue = prev_issue +
  trc``); both recurrences vectorize exactly -- ``np.cumsum`` is a
  sequential left-to-right accumulate, so seeding it with the live
  accumulator reproduces the scalar loop's partial sums bit-for-bit
  (never ``np.sum``, whose pairwise reduction rounds differently);
* a vector segment is truncated before the first auto-refresh pop or
  scheme blocking boundary (:meth:`FastKernel.next_blocking_ns`), and
  each kernel's ``commit_run`` truncates before the first event whose
  outcome the bulk update cannot reproduce (table miss, threshold
  crossing, RNG success, tree split); those events take the scalar
  path, so all blocking/eviction/NRR decisions are made by the exact
  reference logic;
* the per-event latency delays of *all* lanes land in one global
  scatter array and fold into :class:`LatencyTracker` afterwards with
  a seeded sequential cumsum over the positive entries in global event
  order -- the same float64 additions the reference performs; bit
  flips and executed directives are tagged with their global event
  index per lane and heap-merged, so cross-bank ordering is exact.

The fast path never runs when a telemetry bus is installed (per-event
telemetry would be skipped) or when any bank's scheme has no
registered kernel; :func:`build_fast_controller` returns ``None`` (and
:func:`build_fast_controller_ex` additionally names the reason) and
callers fall back to the reference engine.  ``docs/performance.md``
("Hot path") documents the design, the per-scheme kernel coverage and
the measured speedups.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from ..controller.mc import ControllerCounters
from ..controller.scheduler import LatencySummary, LatencyTracker
from ..dram.device import DramDevice
from ..dram.faults import BitFlip
from ..mitigations.base import (
    MitigationEngine,
    MitigationFactory,
    MitigationStats,
    RefreshDirective,
)
from ..mitigations.graphene import GrapheneMitigation
from ..telemetry import runtime as _telemetry
from ..workloads.columnar import TraceArray
from .graphene import GrapheneStats

__all__ = [
    "FastKernel",
    "FastMisraGries",
    "FastGrapheneBank",
    "FastMemoryController",
    "register_kernel",
    "kernel_for",
    "kernel_schemes",
    "build_fast_controller",
    "build_fast_controller_ex",
    "reference_table_state",
]

#: Maximum events examined per vector attempt (bounds temporary arrays).
_SPAN = 4096
#: Minimum remaining events for a vector attempt to be worth the setup.
_MIN_VECTOR = 8
#: After a failed vector attempt, process this many events scalar before
#: trying again (keeps miss-heavy streams from paying the vector setup
#: cost on every event).
_SCALAR_RUN = 32
#: Stay this far (ns) below a scheme blocking boundary in vector mode;
#: boundary-adjacent ACTs take the scalar path where the reference
#: ``int(t // window)`` decides.
_WINDOW_MARGIN_NS = 1e-3


@runtime_checkable
class FastKernel(Protocol):
    """What a scheme implements to join the batch engine.

    One kernel instance wraps (or replicates) one bank's mitigation
    engine.  The controller owns all *timing* decisions -- issue-time
    regimes, REF truncation, bank-state commit -- and hands the kernel
    only the *tracking* phase.  The contract every method must honor is
    bit-identical equivalence with the reference engine.
    """

    #: Scheme label (matches the wrapped engine's ``name``).
    name: str
    #: The stats object ``simulate()`` reads (``MitigationStats``).
    stats: MitigationStats
    #: Declared capability: ``True`` when the kernel's tracking state is
    #: shared *across* banks (ABACuS), so per-bank lanes are not
    #: independent.  The controller then executes contiguous same-bank
    #: runs in global order on a single lane, and
    #: :func:`build_fast_controller_ex` degrades sharding requests to
    #: serial fast mode (lanes in separate processes would each mutate
    #: a divergent copy of the shared table).  Per-bank kernels leave
    #: this ``False`` (the protocol default via ``getattr``).
    cross_bank: bool

    def on_activate(self, row: int, time_ns: float) -> list[RefreshDirective]:
        """Exact scalar replay of the reference engine's ``on_activate``."""
        ...

    def on_refresh_command(self, time_ns: float) -> list[RefreshDirective]:
        """Exact scalar replay of the reference REF callback."""
        ...

    def next_blocking_ns(self) -> float:
        """Next scheme-level blocking boundary (e.g. a reset-window
        edge), or ``inf``.  The controller truncates vector segments
        before it (minus a safety margin) so ``commit_run`` never sees
        an event the scheme would treat specially for *time* reasons."""
        ...

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        """Consume a prefix of a timing-validated event run in bulk.

        ``times`` are the *issue* times the controller resolved (all
        strictly below :meth:`next_blocking_ns`).  Returns ``(consumed,
        directives)``: the kernel must commit exactly ``consumed``
        events' worth of state (including ``stats.activations``) and
        truncate *before* the first event whose outcome bulk arithmetic
        cannot reproduce -- that event then replays through the scalar
        path.  Directives, if any, must be anchored at the final
        committed event (the controller executes them after the batch,
        matching the reference order); kernels that trigger mid-run
        should instead truncate before the triggering event and let the
        scalar replay emit it.  Kernels with draw-consuming state (PARA)
        use :meth:`snapshot`/:meth:`restore` internally to rewind past
        speculative bulk work.
        """
        ...

    def snapshot(self) -> Any:
        """Opaque copy of all mutable kernel state (boundary replay)."""
        ...

    def restore(self, state: Any) -> None:
        """Restore a :meth:`snapshot` -- exact, including RNG streams."""
        ...

    def table_state(self) -> dict[str, Any]:
        """Comparable snapshot for differential checks."""
        ...


# ----------------------------------------------------------------------
# Kernel registry
# ----------------------------------------------------------------------

KernelFactory = Callable[[MitigationEngine], "FastKernel"]

_KERNEL_REGISTRY: dict[type, KernelFactory] = {}
_BUILTINS_LOADED = False


def register_kernel(engine_type: type, factory: KernelFactory) -> None:
    """Register ``factory`` as the batched kernel for ``engine_type``.

    Lookup is by exact type -- a subclass that changes semantics must
    register its own kernel (or get the reference loop)."""
    _KERNEL_REGISTRY[engine_type] = factory


def _ensure_builtin_kernels() -> None:
    """Import :mod:`repro.core.fast_kernels` once (registers on import).

    Lazy so this module can be imported without dragging every
    mitigation module in, and so schemes stay optional."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        from . import fast_kernels  # noqa: F401  (registration side effect)

        _BUILTINS_LOADED = True


def kernel_for(mitigation: MitigationEngine) -> "FastKernel | None":
    """Build the batched kernel wrapping ``mitigation``, or ``None``."""
    _ensure_builtin_kernels()
    factory = _KERNEL_REGISTRY.get(type(mitigation))
    return None if factory is None else factory(mitigation)


def kernel_schemes() -> tuple[str, ...]:
    """Scheme names with a registered kernel (sorted)."""
    _ensure_builtin_kernels()
    return tuple(
        sorted(
            getattr(engine_type, "name", engine_type.__name__)
            for engine_type in _KERNEL_REGISTRY
        )
    )


class FastMisraGries:
    """Misra-Gries summary over preallocated arrays.

    Scalar :meth:`observe` matches
    :meth:`repro.core.misra_gries.MisraGriesTable.observe` decision-for-
    decision, including the smallest-key eviction tie-break (``min``
    over entries whose count equals the spillover count); the vector
    path in :meth:`FastGrapheneBank.commit_run` additionally bumps
    counts of already-tracked rows in bulk.  All counts are exact
    integers, so "bit-for-bit" here is simply "the same integers".
    """

    __slots__ = (
        "capacity",
        "keys",
        "counts",
        "slot_of",
        "size",
        "spillover",
        "observations",
        "last_evicted",
    )

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.keys = np.zeros(capacity, dtype=np.int64)
        self.counts = np.zeros(capacity, dtype=np.int64)
        #: row -> slot index; the CAM lookup.
        self.slot_of: dict[int, int] = {}
        self.size = 0
        self.spillover = 0
        self.observations = 0
        self.last_evicted: int | None = None

    def observe(self, item: int) -> int | None:
        """Process one row; mirrors ``MisraGriesTable.observe``."""
        self.observations += 1
        slot = self.slot_of.get(item)
        if slot is not None:
            new = int(self.counts[slot]) + 1
            self.counts[slot] = new
            return new
        if self.size < self.capacity:
            slot = self.size
            self.keys[slot] = item
            self.counts[slot] = 1
            self.slot_of[item] = slot
            self.size += 1
            return 1
        spillover = self.spillover
        candidates = np.flatnonzero(self.counts[: self.size] == spillover)
        if len(candidates):
            # Smallest key among replaceable entries -- keys are
            # distinct, so argmin picks the unique minimum, same as
            # ``min(replaceable)`` over the reference's bucket set.
            slot = int(candidates[np.argmin(self.keys[candidates])])
            evicted = int(self.keys[slot])
            del self.slot_of[evicted]
            self.keys[slot] = item
            self.counts[slot] = spillover + 1
            self.slot_of[item] = slot
            self.last_evicted = evicted
            return spillover + 1
        self.spillover = spillover + 1
        return None

    def reset(self) -> None:
        self.slot_of.clear()
        self.size = 0
        self.spillover = 0
        self.observations = 0
        self.last_evicted = None

    def __contains__(self, item: int) -> bool:
        return item in self.slot_of

    def __len__(self) -> int:
        return self.size

    def estimated_count(self, item: int) -> int:
        slot = self.slot_of.get(item)
        return 0 if slot is None else int(self.counts[slot])

    def tracked(self) -> dict[int, int]:
        """Snapshot identical to ``MisraGriesTable.tracked()``."""
        return {
            int(self.keys[i]): int(self.counts[i]) for i in range(self.size)
        }


class FastGrapheneBank:
    """One bank's Graphene engine over the array kernel.

    Replicates the ``MitigationEngine.on_activate`` ->
    ``GrapheneMitigation._process_activation`` ->
    ``GrapheneEngine.on_activate`` chain exactly (validation order,
    stats increments, lazy window reset, directive fields), while
    keeping the reference's two stats layers: :attr:`stats`
    (:class:`~repro.mitigations.base.MitigationStats`, read by
    ``simulate``) and :attr:`gstats`
    (:class:`~repro.core.graphene.GrapheneStats`).  Implements the
    :class:`FastKernel` protocol; its :meth:`commit_run` batches pure
    table hits below their next threshold multiple.
    """

    name = "graphene"

    def __init__(self, mitigation: GrapheneMitigation) -> None:
        self.config = mitigation.config
        self.bank = mitigation.bank
        self.rows = mitigation.rows
        self.threshold = self.config.tracking_threshold
        self.window_len = self.config.reset_window_ns
        self.blast_radius = self.config.blast_radius
        self.kernel = FastMisraGries(self.config.num_entries)
        self.stats = MitigationStats()
        self.gstats = GrapheneStats()
        self.current_window = 0

    # ------------------------------------------------------------------
    # Scalar path (exact reference replay)
    # ------------------------------------------------------------------

    def on_activate(self, row: int, time_ns: float) -> list[RefreshDirective]:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        self.stats.activations += 1
        if time_ns < 0:
            raise ValueError("time must be non-negative")
        self._maybe_reset(time_ns)
        self.gstats.activations += 1

        kernel = self.kernel
        was_tracked = row in kernel.slot_of
        new_count = kernel.observe(row)
        if new_count is None:
            self.gstats.spillover_increments += 1
            return []
        if was_tracked:
            self.gstats.table_hits += 1
        else:
            self.gstats.table_insertions += 1
        if new_count % self.threshold != 0:
            return []

        victims = self.victim_rows_of(row)
        self.gstats.victim_refresh_requests += 1
        self.gstats.victim_rows_refreshed += len(victims)
        directives = [
            RefreshDirective(
                bank=self.bank,
                victim_rows=victims,
                time_ns=time_ns,
                aggressor_row=row,
                reason=f"T x {new_count // self.threshold}",
            )
        ]
        self.stats.record(directives)
        return directives

    def on_refresh_command(self, time_ns: float) -> list[RefreshDirective]:
        return []

    def victim_rows_of(self, aggressor_row: int) -> tuple[int, ...]:
        return tuple(
            victim
            for distance in range(1, self.blast_radius + 1)
            for victim in (aggressor_row - distance, aggressor_row + distance)
            if 0 <= victim < self.rows
        )

    def _maybe_reset(self, time_ns: float) -> None:
        window = int(time_ns // self.window_len)
        if window != self.current_window:
            if window < self.current_window:
                raise ValueError(
                    f"time moved backwards across windows: window {window} "
                    f"after window {self.current_window}"
                )
            self.kernel.reset()
            self.gstats.window_resets += 1
            self.current_window = window

    # ------------------------------------------------------------------
    # FastKernel batch interface
    # ------------------------------------------------------------------

    def next_blocking_ns(self) -> float:
        return (self.current_window + 1) * self.window_len

    def commit_run(
        self, times: np.ndarray, rows: np.ndarray
    ) -> tuple[int, list[RefreshDirective]]:
        """Misra-Gries bulk phase: only already-tracked rows (pure
        hits) below their next threshold multiple may be batched.  The
        first miss or crossing truncates; that event replays scalar."""
        kernel = self.kernel
        threshold = self.threshold
        extent = len(rows)
        uniq, inverse = np.unique(rows, return_inverse=True)
        slots = np.fromiter(
            (kernel.slot_of.get(int(u), -1) for u in uniq),
            dtype=np.int64,
            count=len(uniq),
        )
        missing = slots < 0
        if missing.any():
            extent = min(extent, int(np.argmax(missing[inverse])))
            if extent == 0:
                return 0, []
        inverse = inverse[:extent]
        occurrences = np.bincount(inverse, minlength=len(uniq))
        base = kernel.counts[np.where(missing, 0, slots)]
        to_next_multiple = threshold - base % threshold
        crossing = (
            (occurrences >= to_next_multiple) & ~missing & (occurrences > 0)
        )
        if crossing.any():
            first_trigger = extent
            for u in np.flatnonzero(crossing):
                positions = np.flatnonzero(inverse == u)
                event_index = int(positions[int(to_next_multiple[u]) - 1])
                if event_index < first_trigger:
                    first_trigger = event_index
            extent = first_trigger
            if extent == 0:
                return 0, []
            inverse = inverse[:extent]
            occurrences = np.bincount(inverse, minlength=len(uniq))

        bumped = np.flatnonzero(occurrences)
        # Distinct rows -> distinct slots, so fancy in-place add is safe.
        kernel.counts[slots[bumped]] += occurrences[bumped]
        kernel.observations += extent
        self.gstats.activations += extent
        self.gstats.table_hits += extent
        self.stats.activations += extent
        return extent, []

    def snapshot(self) -> Any:
        kernel = self.kernel
        return (
            kernel.keys.copy(),
            kernel.counts.copy(),
            dict(kernel.slot_of),
            kernel.size,
            kernel.spillover,
            kernel.observations,
            kernel.last_evicted,
            self.current_window,
        )

    def restore(self, state: Any) -> None:
        kernel = self.kernel
        (
            keys,
            counts,
            slot_of,
            kernel.size,
            kernel.spillover,
            kernel.observations,
            kernel.last_evicted,
            self.current_window,
        ) = state
        kernel.keys[:] = keys
        kernel.counts[:] = counts
        kernel.slot_of = dict(slot_of)

    # ------------------------------------------------------------------
    # Parity helpers
    # ------------------------------------------------------------------

    def table_bits(self) -> int:
        return self.config.table_bits_per_bank

    def describe(self) -> str:
        return (
            f"graphene(T={self.config.tracking_threshold}, "
            f"N={self.config.num_entries}, k={self.config.k}, "
            f"radius={self.config.blast_radius})"
        )

    def table_state(self) -> dict[str, object]:
        """Comparable snapshot for differential checks."""
        return {
            "tracked": self.kernel.tracked(),
            "spillover": self.kernel.spillover,
            "observations": self.kernel.observations,
            "window": self.current_window,
        }


def reference_table_state(mitigation: GrapheneMitigation) -> dict[str, object]:
    """The reference engine's snapshot in :meth:`FastGrapheneBank.table_state`
    form, for divergence comparisons."""
    table = mitigation.engine.table
    return {
        "tracked": table.tracked(),
        "spillover": table.spillover,
        "observations": table.observations,
        "window": mitigation.engine.current_window,
    }


class _LaneEngine:
    """The per-bank lane executor: all scalar/vector lane machinery.

    Holds exactly the state a lane needs to run *anywhere* -- the
    counters it increments and whether executed directives are logged
    -- so the same code path serves both the in-process serial
    dispatcher and the sharded worker processes (which build a fresh
    ``ControllerCounters`` each task and ship it home for summation;
    every counter field is an order-independent sum, so merging by
    bank is exact).
    """

    def __init__(
        self,
        counters: ControllerCounters,
        keep_directive_log: bool,
        bank_of: Callable[[int], Any] | None = None,
    ) -> None:
        self.counters = counters
        self.keep_directive_log = keep_directive_log
        #: Resolves a directive's target bank model.  ``None`` in shard
        #: workers, which only ever run per-bank kernels whose
        #: directives target the lane's own bank; the serial dispatcher
        #: passes ``device.bank`` so cross-bank directives (ABACuS)
        #: land on the bank they name, as the reference MC does.
        self.bank_of = bank_of

    def run_lane(
        self,
        bank_model,
        kernel: FastKernel,
        times: np.ndarray,
        rows: np.ndarray,
        gids: np.ndarray,
        delays: np.ndarray,
        flips_out: list,
        directives_out: list,
    ) -> None:
        """One bank's full event sequence, vector where provable."""
        n = len(times)
        index = 0
        scalar_budget = 0
        while index < n:
            if scalar_budget == 0 and n - index >= _MIN_VECTOR:
                limit = min(index + _SPAN, n)
                consumed, table_bound = self._try_vector(
                    bank_model,
                    kernel,
                    times[index:limit],
                    rows[index:limit],
                    gids[index:limit],
                    delays,
                    flips_out,
                    directives_out,
                )
                if consumed:
                    index += consumed
                    continue
                # A timing-boundary failure (REF tick, window edge,
                # blocked bank) is structural: one scalar step clears
                # it.  A table-phase failure (miss/eviction/trigger at
                # the very first event) signals a miss-heavy stream, so
                # back off before paying the vector setup cost again.
                scalar_budget = _SCALAR_RUN if table_bound else 1
            self._scalar_step(
                bank_model,
                kernel,
                float(times[index]),
                int(rows[index]),
                int(gids[index]),
                delays,
                flips_out,
                directives_out,
            )
            if scalar_budget:
                scalar_budget -= 1
            index += 1

    def _scalar_step(
        self,
        bank_model,
        kernel: FastKernel,
        time_ns: float,
        row: int,
        gid: int,
        delays: np.ndarray,
        flips_out: list,
        directives_out: list,
    ) -> None:
        """One ACT, operation-for-operation as ``MemoryController.step``."""
        issue_ns = bank_model.earliest_activate(time_ns)
        delay_ns = issue_ns - time_ns
        if delay_ns > 0.0:
            delays[gid] = delay_ns
        flips = bank_model.activate(row, issue_ns)
        if flips:
            flips_out.append((gid, flips))
            self.counters.bit_flips += len(flips)
        self.counters.acts_issued += 1

        directives: list[RefreshDirective] = []
        for ref_event in bank_model.drain_refresh_events():
            self.counters.ref_ticks_forwarded += 1
            directives.extend(kernel.on_refresh_command(ref_event.time_ns))
        directives.extend(kernel.on_activate(row, issue_ns))
        for directive in directives:
            self._execute_directive(
                bank_model, directive, issue_ns, gid, directives_out
            )

    def _execute_directive(
        self, bank_model, directive, now_ns: float, gid: int, directives_out
    ) -> None:
        rows = list(directive.victim_rows)
        if not rows:
            return
        if self.bank_of is not None:
            bank_model = self.bank_of(directive.bank)
        bank_model.bank.nearby_row_refresh(len(rows), now_ns)
        if bank_model.faults is not None:
            bank_model.faults.on_refresh_range(rows)
        self.counters.nrr_commands += 1
        self.counters.nrr_rows += len(rows)
        if self.keep_directive_log:
            directives_out.append((gid, directive))

    # ------------------------------------------------------------------
    # Vector path
    # ------------------------------------------------------------------

    def _try_vector(
        self,
        bank_model,
        kernel: FastKernel,
        times: np.ndarray,
        rows: np.ndarray,
        gids: np.ndarray,
        delays: np.ndarray,
        flips_out: list,
        directives_out: list,
    ) -> tuple[int, bool]:
        """Consume a prefix of ``times``/``rows`` in bulk; 0 if none.

        A prefix qualifies only while the per-event recurrence is one of
        two exactly-vectorizable regimes and no blocking event (REF pop,
        scheme boundary) falls inside; the kernel's ``commit_run`` then
        decides how much of the timing-valid prefix the tracking state
        can absorb in bulk.  The comparisons reuse the reference's
        epsilon expressions (``legal <= candidate + 1e-9``) verbatim so
        the regime boundary is decided by the same float operations.
        """
        bank = bank_model.bank
        trc = bank.timings.trc
        if trc <= 2e-9:
            return 0, False
        next_act = bank._next_act_ns
        busy = bank._busy_until_ns
        clock = bank_model._clock_ns
        t0 = float(times[0])

        # First blocking event: a REF pop (pops when next_ref <= issue,
        # matching ``pop_due``'s `<=`) or the kernel's next scheme
        # boundary (conservative margin; boundary ACTs go scalar).
        # Bound the working slice by it up front so a segment between
        # two tREFI ticks costs array ops of its own size, not the full
        # span.
        blocking_ns = min(
            bank_model.refresh_engine.next_time_ns,
            kernel.next_blocking_ns() - _WINDOW_MARGIN_NS,
        )

        chained = False
        if clock <= t0 and next_act <= t0 + 1e-9 and busy <= t0 + 1e-9:
            # Idle regime: every ACT issues at its trace time.  Needs
            # prev_time + trc legal (within epsilon) at each successor.
            extent = int(np.searchsorted(times, blocking_ns, side="left"))
            if extent == 0:
                return 0, False
            times = times[:extent]
            gaps_ok = (times[:-1] + trc) <= (times[1:] + 1e-9)
            if not gaps_ok.all():
                extent = int(np.argmin(gaps_ok)) + 1
                times = times[:extent]
            # gaps_ok makes the prefix strictly increasing, so its last
            # element is its max; this re-check keeps the searchsorted
            # bound honest even if the input was not globally sorted.
            if float(times[extent - 1]) >= blocking_ns:
                return 0, False
            issue = times
        elif busy <= next_act and next_act > t0 + 1e-9 and next_act > clock + 1e-9:
            # Saturated regime: ACTs queue back-to-back, each issuing at
            # prev_issue + trc.  The chain is the scalar loop's exact
            # partial sums (cumsum accumulates left-to-right).
            chained = True
            if next_act >= blocking_ns:
                return 0, False
            # issue[k] ~= next_act + k*trc, so this bound overshoots the
            # exact truncation below by at most a couple of elements.
            bound = min(
                len(times), int((blocking_ns - next_act) / trc) + 2
            )
            times = times[:bound]
            seeded = np.full(len(times), trc, dtype=np.float64)
            seeded[0] = next_act
            chain = np.cumsum(seeded)
            ok = chain > times + 1e-9
            if ok.all():
                extent = len(times)
            else:
                extent = int(np.argmin(ok))
                if extent == 0:
                    return 0, False
            blocked = chain[:extent] >= blocking_ns
            if blocked.any():
                extent = int(np.argmax(blocked))
                if extent == 0:
                    return 0, False
            issue = chain
        else:
            return 0, False

        # Tracking phase: the kernel absorbs as much of the prefix as
        # bulk arithmetic can reproduce; the truncating event (miss,
        # crossing, RNG success, split) replays scalar next iteration.
        consumed, directives = kernel.commit_run(
            issue[:extent], rows[:extent]
        )
        if consumed == 0:
            return 0, True
        extent = consumed

        # ---- Commit the batch ----------------------------------------
        last_issue = float(issue[extent - 1])
        bank.open_row = int(rows[extent - 1])
        bank._last_act_ns = last_issue
        bank._next_act_ns = last_issue + trc
        bank.stats.activations += extent
        bank.stats.row_buffer_misses += extent
        bank_model._clock_ns = last_issue
        self.counters.acts_issued += extent

        if chained:
            # chain > times (strictly) on the committed prefix, so every
            # delay is positive, matching the reference's `delay > 0`
            # branch; idle-regime delays are exactly 0.0 and the scatter
            # array is already zero-initialized.
            delays[gids[:extent]] = issue[:extent] - times[:extent]

        if bank_model.faults is not None:
            faults = bank_model.faults
            for k in range(extent):
                flips = faults.on_activate(int(rows[k]), float(issue[k]))
                if flips:
                    flips_out.append((int(gids[k]), flips))
                    self.counters.bit_flips += len(flips)

        for directive in directives:
            self._execute_directive(
                bank_model,
                directive,
                last_issue,
                int(gids[extent - 1]),
                directives_out,
            )
        return extent, False


def _shard_lane_task(
    bank_model,
    kernel: FastKernel,
    times: np.ndarray,
    rows: np.ndarray,
    keep_directive_log: bool,
):
    """Worker entry point: run one bank lane in a shard process.

    The parent ships the lane's *state* (bank model + kernel) and its
    event columns; the worker runs the identical lane machinery the
    serial dispatcher uses -- against lane-local event indices and a
    fresh counters object -- and ships everything back: the mutated
    state (pickling round-trips float bits, dict insertion order and
    numpy generator state exactly), the lane's delay column, and its
    flip/directive outputs tagged with lane-local indices the parent
    remaps to global ones.  Because each lane is self-contained, the
    result is independent of worker scheduling; the parent collects in
    bank order, so a sharded run is byte-identical to a serial one.
    """
    counters = ControllerCounters()
    lane = _LaneEngine(counters, keep_directive_log)
    n = len(times)
    delays = np.zeros(n, dtype=np.float64)
    flips_out: list[tuple[int, list[BitFlip]]] = []
    directives_out: list[tuple[int, RefreshDirective]] = []
    lane.run_lane(
        bank_model,
        kernel,
        times,
        rows,
        np.arange(n, dtype=np.int64),
        delays,
        flips_out,
        directives_out,
    )
    return bank_model, kernel, delays, flips_out, directives_out, counters


class FastMemoryController:
    """Bank-sharded twin of ``MemoryController`` for kernel schemes.

    Drives the *real* :class:`~repro.dram.device.DramBankModel` objects:
    scalar steps call the same methods the reference controller calls,
    and vector segments write the same post-state the per-event calls
    would have produced.  The trace is partitioned into per-bank lanes
    up front (banks only share order-sensitive *outputs*, never state),
    each lane runs to completion, and the order-sensitive outputs --
    latency delays, bit flips, the directive log -- are merged back
    into global event order afterwards.  Construct via
    :func:`build_fast_controller`.

    Two orthogonal execution axes on top of the serial in-process
    default:

    * ``shard_workers > 1`` dispatches lanes across a process pool
      (:func:`_shard_lane_task`); per-lane state ships out and back and
      outputs are remapped to global event indices, so results stay
      byte-identical to serial fast mode at any worker count;
    * ``run(..., chunk_events=N)`` streams the trace through the engine
      in bounded chunks with all kernel/bank state carried across chunk
      boundaries -- peak working memory is O(chunk), and with a lazy
      event iterable the full trace is never materialized at all.
    """

    def __init__(
        self,
        device: DramDevice,
        engines: list[FastKernel],
        keep_directive_log: bool = False,
        shard_workers: int = 1,
    ) -> None:
        if shard_workers < 1:
            raise ValueError(
                f"shard_workers must be >= 1, got {shard_workers}"
            )
        self.device = device
        self.engines = engines
        self.latency = LatencyTracker()
        self.counters = ControllerCounters()
        self.bit_flips: list[BitFlip] = []
        self.directive_log: list[RefreshDirective] | None = (
            [] if keep_directive_log else None
        )
        #: Any kernel with bank-shared tracking state forces single-lane
        #: execution: same-bank runs in global order, never per-bank
        #: lanes (and never a shard pool -- divergent copies of the
        #: shared table would be silently wrong, so that combination is
        #: rejected here; ``build_fast_controller_ex`` degrades the
        #: request with a note before construction instead).
        self.cross_bank = any(
            getattr(engine, "cross_bank", False) for engine in engines
        )
        if self.cross_bank and shard_workers > 1:
            raise ValueError(
                "cross_bank kernels share tracking state across banks and "
                "cannot run sharded lanes; use shard_workers=1"
            )
        self.shard_workers = shard_workers
        #: Advisory note set by :func:`build_fast_controller_ex` when a
        #: sharding request silently degraded to serial fast mode.
        self.shard_note: str | None = None
        #: Timestamp of the last event consumed (across all chunks), so
        #: streaming callers need not keep the trace around.
        self.last_event_ns = 0.0
        self._lane = _LaneEngine(
            self.counters, keep_directive_log, bank_of=device.bank
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, events, chunk_events: int | None = None) -> None:
        """Drive the full system from a time-sorted ACT stream.

        Accepts a :class:`TraceArray` or any ``ActEvent`` iterable.
        With ``chunk_events`` the stream executes in bounded chunks
        (state carried across boundaries; an iterable input is never
        fully materialized); without it, non-array input is
        materialized into one :class:`TraceArray` first.
        """
        if chunk_events is not None:
            from ..workloads.columnar import iter_chunk_arrays

            chunks = iter_chunk_arrays(events, chunk_events)
        else:
            chunks = iter((TraceArray.from_events(events),))
        if self.shard_workers > 1 and len(self.engines) > 1:
            from concurrent.futures import ProcessPoolExecutor

            workers = min(self.shard_workers, len(self.engines))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for chunk in chunks:
                    self._run_chunk_sharded(chunk, pool)
        else:
            for chunk in chunks:
                self._run_chunk(chunk)

    def _run_chunk(self, trace: TraceArray) -> None:
        """One chunk through the in-process serial lane dispatcher."""
        n = len(trace)
        if n == 0:
            return
        # Per-event issue delays, scattered by global index; folded into
        # the tracker once per chunk, in global order (see _fold_delays
        # -- the fold seeds its cumsum with the tracker's running total,
        # so chunked folding reproduces the unchunked float sums).
        delays = np.zeros(n, dtype=np.float64)
        if self.cross_bank:
            self._run_chunk_single_lane(trace, delays)
            return
        flip_lanes: list[list[tuple[int, list[BitFlip]]]] = []
        directive_lanes: list[list[tuple[int, RefreshDirective]]] = []
        for bank_index, lane_indices in trace.bank_partition():
            lane_flips: list[tuple[int, list[BitFlip]]] = []
            lane_directives: list[tuple[int, RefreshDirective]] = []
            self._lane.run_lane(
                self.device.bank(bank_index),
                self.engines[bank_index],
                trace.time_ns[lane_indices],
                trace.row[lane_indices],
                lane_indices,
                delays,
                lane_flips,
                lane_directives,
            )
            flip_lanes.append(lane_flips)
            directive_lanes.append(lane_directives)
        self._merge_chunk(trace, delays, flip_lanes, directive_lanes)

    def _run_chunk_single_lane(
        self, trace: TraceArray, delays: np.ndarray
    ) -> None:
        """One chunk in global order for cross-bank kernels.

        A kernel whose tracking state spans banks (ABACuS) makes bank
        lanes order-dependent: an ACT on bank 0 can trigger refreshes
        on bank 3, and the shared table's next decision depends on the
        interleaved sequence.  So the chunk executes as contiguous
        same-bank *runs* in global order -- each run still goes through
        the vector/scalar lane machinery, so batching survives wherever
        same-bank runs are long -- and every output tag is globally
        ascending by construction (no per-lane merge needed).
        """
        flips_out: list[tuple[int, list[BitFlip]]] = []
        directives_out: list[tuple[int, RefreshDirective]] = []
        for start, stop, bank_index in trace.bank_runs():
            gids = np.arange(start, stop, dtype=np.int64)
            self._lane.run_lane(
                self.device.bank(bank_index),
                self.engines[bank_index],
                trace.time_ns[start:stop],
                trace.row[start:stop],
                gids,
                delays,
                flips_out,
                directives_out,
            )
        self._merge_chunk(trace, delays, [flips_out], [directives_out])

    def _run_chunk_sharded(self, trace: TraceArray, pool) -> None:
        """One chunk with lanes fanned across the shard worker pool.

        Lanes are submitted in bank order and *collected* in submission
        order -- worker completion order never orders any output.  Each
        worker returns its lane's post-state, which is written back
        into the live device/engine slots so the next chunk (or a final
        table-state comparison) sees exactly the state a serial run
        would have produced.
        """
        n = len(trace)
        if n == 0:
            return
        delays = np.zeros(n, dtype=np.float64)
        flip_lanes: list[list[tuple[int, list[BitFlip]]]] = []
        directive_lanes: list[list[tuple[int, RefreshDirective]]] = []
        lanes = list(trace.bank_partition())
        futures = [
            pool.submit(
                _shard_lane_task,
                self.device.bank(bank_index),
                self.engines[bank_index],
                trace.time_ns[lane_indices],
                trace.row[lane_indices],
                self.directive_log is not None,
            )
            for bank_index, lane_indices in lanes
        ]
        for (bank_index, lane_indices), future in zip(lanes, futures):
            (
                bank_model,
                kernel,
                lane_delays,
                lane_flips,
                lane_directives,
                counters,
            ) = future.result()
            self.device.banks[bank_index] = bank_model
            self.engines[bank_index] = kernel
            delays[lane_indices] = lane_delays
            flip_lanes.append(
                [(int(lane_indices[i]), flips) for i, flips in lane_flips]
            )
            directive_lanes.append(
                [(int(lane_indices[i]), d) for i, d in lane_directives]
            )
            self.counters.acts_issued += counters.acts_issued
            self.counters.nrr_commands += counters.nrr_commands
            self.counters.nrr_rows += counters.nrr_rows
            self.counters.ref_ticks_forwarded += counters.ref_ticks_forwarded
            self.counters.bit_flips += counters.bit_flips
        self._merge_chunk(trace, delays, flip_lanes, directive_lanes)

    def _merge_chunk(
        self,
        trace: TraceArray,
        delays: np.ndarray,
        flip_lanes: list,
        directive_lanes: list,
    ) -> None:
        """Fold a chunk's per-lane outputs back into global order."""
        self._fold_delays(delays)
        # Each lane's tags are ascending in global index and indices are
        # unique across lanes, so a heap merge restores the exact order
        # the reference's single event loop would have produced.
        for _, flips in heapq.merge(*flip_lanes, key=lambda tag: tag[0]):
            self.bit_flips.extend(flips)
        if self.directive_log is not None:
            for _, directive in heapq.merge(
                *directive_lanes, key=lambda tag: tag[0]
            ):
                self.directive_log.append(directive)
        self.last_event_ns = float(trace.time_ns[-1])

    def _fold_delays(self, delays: np.ndarray) -> None:
        """Fold the global delay scatter into the tracker in one pass.

        Reproduces per-event ``LatencyTracker.record`` state exactly:
        the float total is a seeded sequential cumsum over the positive
        delays *in global event order* (same rounding as the scalar
        ``+=``), and log2 bucket exponents come from ``np.frexp`` --
        exact bit manipulation -- except in the narrow band where
        ``math.log2`` may round up across an integer, which replays the
        reference's scalar expression.  All other tracker fields are
        order-independent counts.
        """
        tracker = self.latency
        count = len(delays)
        tracker._count += count
        positive = np.flatnonzero(delays > 0.0)
        tracker._buckets[0] += count - len(positive)
        if not len(positive):
            return
        pos = delays[positive]
        tracker._delayed += len(pos)
        seeded = np.empty(len(pos) + 1, dtype=np.float64)
        seeded[0] = tracker._total
        seeded[1:] = pos
        tracker._total = float(np.cumsum(seeded)[-1])
        peak = float(pos.max())
        if peak > tracker._max:
            tracker._max = peak
        floored = np.maximum(pos, 1.0)
        mantissa, frexp_exp = np.frexp(floored)
        exponents = frexp_exp.astype(np.int64) - 1
        risky = mantissa >= 1.0 - 1e-12
        if risky.any():
            for j in np.flatnonzero(risky):
                exponents[j] = max(
                    0, int(math.log2(max(float(pos[j]), 1.0)))
                )
        np.minimum(exponents, LatencyTracker._MAX_EXPONENT, out=exponents)
        bucket_counts = np.bincount(exponents + 1, minlength=32)
        buckets = tracker._buckets
        for index in np.flatnonzero(bucket_counts):
            buckets[index] += int(bucket_counts[index])

    # ------------------------------------------------------------------
    # Results (``MemoryController`` parity)
    # ------------------------------------------------------------------

    def latency_summary(self) -> LatencySummary:
        return self.latency.summary()

    def engine_stats(self):
        return [engine.stats for engine in self.engines]

    def total_victim_rows_refreshed(self) -> int:
        return sum(engine.stats.rows_refreshed for engine in self.engines)

    def describe(self) -> str:
        scheme = self.engines[0].describe() if self.engines else "none"
        return (
            f"FastMemoryController(banks={len(self.engines)}, "
            f"scheme={scheme})"
        )


def build_fast_controller_ex(
    device: DramDevice,
    factory: MitigationFactory,
    keep_directive_log: bool = False,
    shard_workers: int = 1,
) -> tuple[FastMemoryController | None, str | None]:
    """Build the fast controller, or ``(None, reason)`` if it cannot
    apply.  Fallback triggers (the caller should use the reference
    ``MemoryController``):

    * a telemetry bus is installed -- the vector path cannot publish
      the per-event telemetry the reference emits;
    * some bank's engine type has no registered kernel (see
      :func:`register_kernel`; :func:`kernel_schemes` lists coverage).

    ``shard_workers > 1`` requests the process-pool lane dispatcher.
    On a device with fewer than two banks there is only one lane, so
    sharding degrades to serial fast mode; likewise when any kernel
    declares the ``cross_bank`` capability (ABACuS) -- independent
    worker processes would each mutate a divergent copy of the shared
    tracking table.  The built controller then carries a ``shard_note``
    naming the requested worker count *and the capability that forced
    the degrade* so callers (``simulate``, the experiment runner's job
    notes) can surface the silent degrade instead of swallowing it.
    """
    if shard_workers < 1:
        # A nonsense worker count is a caller bug, not a configuration
        # the reference loop should quietly absorb.
        raise ValueError(f"shard_workers must be >= 1, got {shard_workers}")
    if _telemetry.BUS is not None:
        return None, (
            "telemetry bus active (per-event telemetry needs the "
            "reference loop)"
        )
    mitigations = [
        factory(bank, device.geometry.rows_per_bank)
        for bank in range(device.geometry.total_banks)
    ]
    engines: list[FastKernel] = []
    for mitigation in mitigations:
        kernel = kernel_for(mitigation)
        if kernel is None:
            scheme = getattr(mitigation, "name", type(mitigation).__name__)
            return None, f"no batched kernel for scheme {scheme!r}"
        engines.append(kernel)
    shard_note = None
    if shard_workers > 1 and device.geometry.total_banks < 2:
        shard_note = (
            f"sharding requested ({shard_workers} workers) but the device "
            f"has a single bank (one lane); running serial fast mode"
        )
        shard_workers = 1
    cross_bank_schemes = sorted(
        {
            engine.name
            for engine in engines
            if getattr(engine, "cross_bank", False)
        }
    )
    if shard_workers > 1 and cross_bank_schemes:
        shard_note = (
            f"sharding requested ({shard_workers} workers) but scheme "
            f"{cross_bank_schemes[0]!r} declares the cross_bank capability "
            f"(tracking state shared across banks); running serial fast mode"
        )
        shard_workers = 1
    controller = FastMemoryController(
        device, engines, keep_directive_log, shard_workers=shard_workers
    )
    controller.shard_note = shard_note
    return controller, None


def build_fast_controller(
    device: DramDevice,
    factory: MitigationFactory,
    keep_directive_log: bool = False,
) -> FastMemoryController | None:
    """:func:`build_fast_controller_ex` without the fallback reason."""
    controller, _ = build_fast_controller_ex(
        device, factory, keep_directive_log
    )
    return controller


# Graphene's kernel lives in this module; the rest register from
# repro.core.fast_kernels on first lookup.
register_kernel(GrapheneMitigation, FastGrapheneBank)
