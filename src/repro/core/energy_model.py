"""Graphene hardware-module energy model (paper Table V).

The paper synthesizes the Graphene RTL in TSMC 40 nm and reports, for
the k=2 / ``T_RH`` = 50K table (81 entries x 31 bits = 2,511 bits):

* dynamic energy per ACT (one table update): 3.69e-3 nJ -- 0.032% of a
  DRAM ACT+PRE pair (11.49 nJ);
* static (leakage) energy per tREFW: 4.03e3 nJ -- 0.373% of a bank's
  regular refresh energy over the same period (1.08e6 nJ).

We carry those measured values as anchor constants and scale them with
table size for other configurations (CAM search/update energy and
leakage are, to first order, proportional to the number of table bits).
The point the numbers make -- Graphene's own energy is three orders of
magnitude below the DRAM operations it shadows -- is preserved across
the whole Fig. 9 sweep.

Note: the paper's prose quotes 2.11e3 nJ static while its Table V lists
4.03e3 nJ; only the latter is consistent with the stated 0.373% ratio,
so this model uses 4.03e3 nJ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.energy import PAPER_DRAM_ENERGY, DramEnergyModel
from .config import GrapheneConfig

__all__ = ["GrapheneEnergyModel", "EnergyReport"]

#: Table size (bits/bank) of the configuration the paper synthesized.
_ANCHOR_TABLE_BITS = 2511
#: Measured dynamic energy per table update at the anchor size (nJ).
_ANCHOR_DYNAMIC_NJ = 3.69e-3
#: Measured static energy per tREFW at the anchor size (nJ).
_ANCHOR_STATIC_NJ = 4.03e3


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one bank's Graphene module over a period."""

    dynamic_nj: float
    static_nj: float
    dram_act_pre_nj: float
    dram_refresh_nj: float

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.static_nj

    @property
    def dynamic_fraction_of_act(self) -> float:
        """Per-ACT table-update energy over per-ACT DRAM energy."""
        if self.dram_act_pre_nj == 0:
            return 0.0
        return self.dynamic_nj / self.dram_act_pre_nj

    @property
    def static_fraction_of_refresh(self) -> float:
        """Module leakage over DRAM refresh energy for the period."""
        if self.dram_refresh_nj == 0:
            return 0.0
        return self.static_nj / self.dram_refresh_nj


@dataclass(frozen=True)
class GrapheneEnergyModel:
    """Energy of the Graphene tracking hardware for one bank.

    Args:
        config: Graphene configuration; its table size scales the
            anchor-calibrated constants.
        dram: DRAM-side energy constants for ratio reporting.
    """

    config: GrapheneConfig = field(
        default_factory=GrapheneConfig.paper_optimized
    )
    dram: DramEnergyModel = PAPER_DRAM_ENERGY

    @property
    def _size_scale(self) -> float:
        return self.config.table_bits_per_bank / _ANCHOR_TABLE_BITS

    @property
    def dynamic_energy_per_act_nj(self) -> float:
        """Energy of one table update (Fig. 5 sequence)."""
        return _ANCHOR_DYNAMIC_NJ * self._size_scale

    @property
    def static_energy_per_window_nj(self) -> float:
        """Leakage of the table over one tREFW."""
        return _ANCHOR_STATIC_NJ * self._size_scale

    def report(self, activations: int, windows: float = 1.0) -> EnergyReport:
        """Energy of the module across a measured period.

        Args:
            activations: ACTs (table updates) during the period.
            windows: Period length in tREFW units.
        """
        if activations < 0:
            raise ValueError("activations must be non-negative")
        if windows <= 0:
            raise ValueError("windows must be positive")
        return EnergyReport(
            dynamic_nj=activations * self.dynamic_energy_per_act_nj,
            static_nj=windows * self.static_energy_per_window_nj,
            dram_act_pre_nj=self.dram.activation_energy_nj(activations),
            dram_refresh_nj=self.dram.normal_refresh_energy_nj(windows),
        )

    def table_v_rows(self) -> dict[str, float]:
        """The four Table V cells, in nJ."""
        return {
            "graphene_dynamic_per_act_nj": self.dynamic_energy_per_act_nj,
            "graphene_static_per_trefw_nj": self.static_energy_per_window_nj,
            "dram_act_pre_nj": self.dram.act_pre_nj,
            "dram_refresh_per_bank_trefw_nj": self.dram.refresh_per_window_nj,
        }
