"""Structural area (table-size) models for the counter-based schemes.

Reproduces Table IV (bits per bank at ``T_RH`` = 50K) and the Fig. 9(a)
scaling study (bits per 16-bank rank across ``T_RH`` in {50K ... 1.56K}).

The paper reports, per bank at ``T_RH`` = 50K:

==========  =======================  ===========
Scheme      Table size (bits/bank)   Memory type
==========  =======================  ===========
CBT-128     3,824                    SRAM
TWiCe       20,484 CAM + 15,932 SRAM CAM + SRAM
Graphene    2,511                    CAM
==========  =======================  ===========

*Graphene*'s size is derived exactly from first principles via
:class:`~repro.core.config.GrapheneConfig` (81 entries x 31 bits =
2,511 at k=2).  *TWiCe* and *CBT* sizes depend on microarchitectural
constants from their own papers that this paper only cites; we model
their structure (entry counts and field widths) and calibrate the one
free constant each to the Table IV anchor, then scale structurally --
which matches the paper's observation that all three schemes' table
sizes grow linearly as ``T_RH`` shrinks.  Calibration details are
documented per-model below and in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..dram.timing import DDR4_2400, DramTimings
from .config import PAPER_TRH_DDR4, GrapheneConfig

__all__ = [
    "TableArea",
    "GrapheneAreaModel",
    "TwiceAreaModel",
    "CbtAreaModel",
    "PAPER_TABLE_IV_BITS_PER_BANK",
    "cbt_counters_for_threshold",
    "table_size_series",
]

#: Table IV of the paper, bits per bank at T_RH = 50K.
PAPER_TABLE_IV_BITS_PER_BANK: dict[str, dict[str, int]] = {
    "CBT-128": {"sram": 3824, "cam": 0},
    "TWiCe": {"sram": 15932, "cam": 20484},
    "Graphene": {"sram": 0, "cam": 2511},
}


@dataclass(frozen=True)
class TableArea:
    """Bit footprint of one scheme's per-bank tracking state."""

    scheme: str
    cam_bits: int
    sram_bits: int
    entries: int

    @property
    def total_bits(self) -> int:
        return self.cam_bits + self.sram_bits

    def per_rank(self, banks_per_rank: int = 16) -> int:
        """Total bits per rank -- the Fig. 9(a) reporting unit."""
        return self.total_bits * banks_per_rank

    def per_system_bytes(
        self, banks_per_rank: int = 16, ranks: int = 4
    ) -> float:
        """Bytes across the paper's 4-rank system (Section V-C prose)."""
        return self.per_rank(banks_per_rank) * ranks / 8


# ----------------------------------------------------------------------
# Graphene
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GrapheneAreaModel:
    """Exact structural size of Graphene's table (Section IV-B).

    Entirely first-principles: ``N_entry x (address + count + overflow)``
    bits, all derived from the configuration.
    """

    config: GrapheneConfig = field(
        default_factory=GrapheneConfig.paper_optimized
    )

    def area(self) -> TableArea:
        return TableArea(
            scheme="Graphene",
            cam_bits=self.config.table_bits_per_bank,
            sram_bits=0,
            entries=self.config.num_entries,
        )

    @classmethod
    def for_threshold(
        cls, hammer_threshold: int, timings: DramTimings = DDR4_2400
    ) -> "GrapheneAreaModel":
        return cls(
            config=GrapheneConfig(
                hammer_threshold=hammer_threshold,
                timings=timings,
                reset_window_divisor=2,
            )
        )


# ----------------------------------------------------------------------
# TWiCe
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TwiceAreaModel:
    """Structural size of the TWiCe table (Lee et al., ISCA 2019).

    Each TWiCe entry pairs a CAM word (row address + valid/flag bits)
    with an SRAM word (ACT count + life counter).  The per-bank entry
    count follows TWiCe's analysis that the number of rows whose count
    can stay above the pruning line within tREFW is inversely
    proportional to the Row Hammer threshold.

    Calibration: at ``T_RH`` = 50K the paper's Table IV numbers decompose
    exactly as 1,138 entries x (18 CAM + 14 SRAM) bits = 20,484 + 15,932,
    so we anchor ``entries = round(1138 * 50K / T_RH)``.
    """

    hammer_threshold: int = PAPER_TRH_DDR4
    rows_per_bank: int = 65536
    #: Entries at the 50K anchor (decomposed from Table IV).
    anchor_entries: int = 1138
    anchor_threshold: int = PAPER_TRH_DDR4

    @property
    def entries(self) -> int:
        return max(
            1,
            round(self.anchor_entries * self.anchor_threshold / self.hammer_threshold),
        )

    @property
    def cam_bits_per_entry(self) -> int:
        """Row address plus valid and overflow-protection flags."""
        address = max(1, math.ceil(math.log2(self.rows_per_bank)))
        return address + 2

    @property
    def sram_bits_per_entry(self) -> int:
        """ACT counter sized for the per-aggressor threshold T_RH / 4."""
        per_aggressor = max(2, self.hammer_threshold // 4)
        return max(4, math.ceil(math.log2(per_aggressor + 1)))

    def area(self) -> TableArea:
        return TableArea(
            scheme="TWiCe",
            cam_bits=self.entries * self.cam_bits_per_entry,
            sram_bits=self.entries * self.sram_bits_per_entry,
            entries=self.entries,
        )


# ----------------------------------------------------------------------
# CBT
# ----------------------------------------------------------------------


def cbt_counters_for_threshold(hammer_threshold: int) -> tuple[int, int]:
    """(counters, levels) for CBT at a given ``T_RH`` (Section V-C).

    The paper evaluates CBT-128 with 10 levels at 50K and "doubles the
    number of counters and increases its levels by one every time the
    Row Hammer threshold is halved": 256/11 at 25K ... 4096/15 at 1.56K.
    """
    if hammer_threshold < 1:
        raise ValueError("hammer_threshold must be positive")
    doublings = max(0, round(math.log2(PAPER_TRH_DDR4 / hammer_threshold)))
    return 128 * 2**doublings, 10 + doublings


@dataclass(frozen=True)
class CbtAreaModel:
    """Structural size of the Counter-Based Tree table (Seyedzadeh et al.).

    Each of the ``counters`` SRAM entries stores a count (sized for the
    last-level threshold, ~``T_RH/2``), the node's tree level, and the
    row-range prefix identifying the subtree it covers.

    Calibration: the structural width at the 50K anchor (count 15 +
    level 4 + prefix 9 + valid 1 = 29 bits) undershoots the paper's
    3,824-bit anchor by 112 bits of fixed control state (per-level split
    threshold registers etc.), which we carry as ``fixed_overhead_bits``.
    """

    hammer_threshold: int = PAPER_TRH_DDR4
    counters: int | None = None
    levels: int | None = None
    fixed_overhead_bits: int = 112

    def resolved(self) -> tuple[int, int]:
        if self.counters is not None and self.levels is not None:
            return self.counters, self.levels
        return cbt_counters_for_threshold(self.hammer_threshold)

    @property
    def bits_per_counter(self) -> int:
        counters, levels = self.resolved()
        last_level_threshold = max(2, self.hammer_threshold // 2)
        count_bits = math.ceil(math.log2(last_level_threshold + 1))
        level_bits = max(1, math.ceil(math.log2(levels + 1)))
        prefix_bits = max(1, levels - 1)
        valid_bits = 1
        return count_bits + level_bits + prefix_bits + valid_bits

    def area(self) -> TableArea:
        counters, levels = self.resolved()
        return TableArea(
            scheme=f"CBT-{counters}",
            cam_bits=0,
            sram_bits=counters * self.bits_per_counter + self.fixed_overhead_bits,
            entries=counters,
        )


# ----------------------------------------------------------------------
# Fig. 9(a) series
# ----------------------------------------------------------------------


def table_size_series(
    thresholds: list[int] | None = None,
    timings: DramTimings = DDR4_2400,
) -> dict[str, dict[int, TableArea]]:
    """Per-rank table sizes across Row Hammer thresholds (Fig. 9(a)).

    Returns:
        ``{scheme: {threshold: TableArea}}`` for Graphene, TWiCe and CBT
        across the paper's sweep (50K down to 1.56K by default).
    """
    if thresholds is None:
        thresholds = [50_000, 25_000, 12_500, 6_250, 3_125, 1_562]
    series: dict[str, dict[int, TableArea]] = {
        "Graphene": {},
        "TWiCe": {},
        "CBT": {},
    }
    for trh in thresholds:
        series["Graphene"][trh] = GrapheneAreaModel.for_threshold(
            trh, timings
        ).area()
        series["TWiCe"][trh] = TwiceAreaModel(hammer_threshold=trh).area()
        series["CBT"][trh] = CbtAreaModel(hammer_threshold=trh).area()
    return series
