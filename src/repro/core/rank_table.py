"""Rank-level shared-table ablation (extension beyond the paper).

The paper provisions one Graphene table *per bank*: 16 tables per rank,
each sized against the per-bank ACT budget ``W_bank = tREFW(1 -
tRFC/tREFI)/tRC``.  But DDR4 also caps the *rank-level* ACT rate --
at most four ACTs per tFAW window across all banks -- and
``4/tFAW << 16/tRC``.  A single table shared by the whole rank
therefore needs entries for only

    N_shared > W_rank / T - 1,   W_rank = tREFW' (1 - tRFC/tREFI) 4/tFAW

which is ~6x the per-bank ``W`` rather than 16x: the shared table is
roughly **2.6x smaller in total bits** than sixteen per-bank tables at
the paper's parameters.

The trade-offs (quantified by :func:`compare_rank_vs_per_bank` and the
ablation bench):

* (+) fewer total bits and one control block instead of sixteen;
* (-) the CAM must absorb the full rank ACT rate (one update per
  ~7.5 ns rather than per 45 ns) -- a much harder timing budget than
  the paper's "hidden within tRC" argument;
* (-) keys widen by 4 bits (bank id joins the row address);
* (=) the protection guarantee is unchanged -- the proof only needs
  the stream budget ``W`` to bound the spillover count, and rows are
  still tracked individually (per (bank, row) key).

:class:`RankLevelEngine` implements it; the guarantee is exercised in
the test suite with 16 banks hammered concurrently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..dram.timing import DDR4_2400, DramTimings
from .config import GrapheneConfig
from .misra_gries import MisraGriesTable

__all__ = ["RankTableConfig", "RankLevelEngine", "compare_rank_vs_per_bank"]


@dataclass(frozen=True)
class RankTableConfig:
    """Derived parameters of the rank-level shared table."""

    hammer_threshold: int = 50_000
    timings: DramTimings = DDR4_2400
    banks_per_rank: int = 16
    rows_per_bank: int = 65536
    reset_window_divisor: int = 2

    @property
    def k(self) -> int:
        return self.reset_window_divisor

    @property
    def reset_window_ns(self) -> float:
        return self.timings.trefw / self.k

    @property
    def tracking_threshold(self) -> int:
        """Same ``T`` as the per-bank design: the per-row math is
        unchanged (a row's victims still absorb T_RH/2 double-sided
        over k+1 windows)."""
        return int(self.hammer_threshold / (2 * (self.k + 1)))

    @property
    def max_activations_per_window(self) -> int:
        """``W_rank``: the rank ACT budget per reset window (tFAW cap)."""
        return self.timings.max_rank_activations_in(self.reset_window_ns)

    @property
    def num_entries(self) -> int:
        ratio = self.max_activations_per_window / self.tracking_threshold
        minimum = math.floor(ratio - 1) + 1
        if minimum <= ratio - 1:
            minimum += 1
        return max(1, minimum)

    @property
    def key_bits(self) -> int:
        """Bank id + row address per CAM key."""
        bank_bits = max(1, math.ceil(math.log2(self.banks_per_rank)))
        row_bits = max(1, math.ceil(math.log2(self.rows_per_bank)))
        return bank_bits + row_bits

    @property
    def entry_bits(self) -> int:
        count_bits = max(
            1, math.ceil(math.log2(self.tracking_threshold + 1))
        )
        return self.key_bits + count_bits + 1  # + overflow bit

    @property
    def table_bits_per_rank(self) -> int:
        return self.num_entries * self.entry_bits

    @property
    def update_interval_ns(self) -> float:
        """Worst-case time between consecutive table updates -- the
        hardware budget the shared CAM must meet."""
        return 1.0 / self.timings.rank_activation_rate_per_ns


class RankLevelEngine:
    """One shared Misra-Gries table protecting a whole rank.

    Keys are ``(bank, row)`` pairs; everything else follows the
    per-bank engine's protection loop.
    """

    def __init__(self, config: RankTableConfig) -> None:
        self.config = config
        self.table = MisraGriesTable(config.num_entries)
        self.threshold = config.tracking_threshold
        self._window_length_ns = config.reset_window_ns
        self._current_window = 0
        self.victim_refresh_requests = 0
        self.activations = 0

    def on_activate(
        self, bank: int, row: int, time_ns: float
    ) -> list[tuple[int, int]]:
        """Returns (bank, victim_row) pairs to refresh (usually [])."""
        if not 0 <= bank < self.config.banks_per_rank:
            raise IndexError(f"bank {bank} out of range")
        if not 0 <= row < self.config.rows_per_bank:
            raise IndexError(f"row {row} out of range")
        window = int(time_ns // self._window_length_ns)
        if window != self._current_window:
            if window < self._current_window:
                raise ValueError("time moved backwards")
            self.table.reset()
            self._current_window = window
        self.activations += 1
        count = self.table.observe((bank, row))
        if count is None or count % self.threshold != 0:
            return []
        self.victim_refresh_requests += 1
        return [
            (bank, victim)
            for victim in (row - 1, row + 1)
            if 0 <= victim < self.config.rows_per_bank
        ]


def compare_rank_vs_per_bank(
    hammer_threshold: int = 50_000,
    timings: DramTimings = DDR4_2400,
    banks_per_rank: int = 16,
    reset_window_divisor: int = 2,
) -> dict[str, float]:
    """Head-to-head bit/timing comparison of the two provisioning styles."""
    per_bank = GrapheneConfig(
        hammer_threshold=hammer_threshold,
        timings=timings,
        reset_window_divisor=reset_window_divisor,
    )
    shared = RankTableConfig(
        hammer_threshold=hammer_threshold,
        timings=timings,
        banks_per_rank=banks_per_rank,
        reset_window_divisor=reset_window_divisor,
    )
    per_bank_total = per_bank.table_bits_per_bank * banks_per_rank
    return {
        "per_bank_entries_total": per_bank.num_entries * banks_per_rank,
        "per_bank_bits_total": per_bank_total,
        "shared_entries": shared.num_entries,
        "shared_bits": shared.table_bits_per_rank,
        "bit_savings_factor": per_bank_total / shared.table_bits_per_rank,
        "per_bank_update_interval_ns": timings.trc,
        "shared_update_interval_ns": shared.update_interval_ns,
    }
