"""Seeded adversarial ACT-stream generators for differential fuzzing.

Every generator is a pure function of ``(seed, length, scale)`` and
produces a time-sorted list of :class:`~repro.workloads.trace.ActEvent`
designed to stress one failure mode of frequent-elements trackers:

* ``random``    -- mixed hot-set / uniform background traffic;
* ``eviction``  -- Misra-Gries eviction targeting: cycles of just over
  ``N_entry`` distinct rows so every miss exercises the
  replace-with-carry-over or spillover path;
* ``decoy``     -- decoy churn: a stream of one-shot rows inflates the
  spillover count while one or two focus rows ride the inherited
  counts toward the threshold;
* ``straddle``  -- bursts positioned to straddle reset-window
  boundaries at ``tREFW/k`` multiples, attacking the table-reset edge;
* ``interleave`` -- multi-bank round-robin double-sided hammering,
  exercising per-bank isolation and the rank-level shared table.

Streams stay inside the **guarantee domain**: the Misra-Gries theorem
only binds while each window's ACT count is within the ``W`` the table
was sized for (Inequality 1), so :class:`_StreamBuilder` enforces the
per-bank and per-rank ACT budgets per reset window -- when a budget is
exhausted the stream jumps to the next window instead of emitting an
out-of-domain ACT.  A violation reported on one of these streams is
therefore always an implementation bug, never a sizing artifact.

:class:`VerifyScale` derives the scaled-down verification parameters
through the *production* config classes (custom ``DramTimings`` with a
0.4 ms refresh window), so the engines under test run completely stock
-- no private-attribute overrides.
"""

from __future__ import annotations

import random
import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from ..core.config import GrapheneConfig
from ..core.rank_table import RankTableConfig
from ..dram.timing import DramTimings
from ..workloads.trace import ActEvent

__all__ = [
    "VERIFY_TIMINGS",
    "VerifyScale",
    "DEFAULT_SCALE",
    "StreamSpec",
    "GENERATORS",
    "GENERATOR_NAMES",
    "generate_stream",
]

#: DDR4-like timings with a 0.4 ms refresh window and a slow tRC, so
#: the *derived* Graphene parameters come out tiny (T = 24, N_entry =
#: 5, 200 us reset windows) and threshold crossings, evictions and
#: window resets all happen within a ~1000-ACT stream.
VERIFY_TIMINGS = DramTimings(
    trefi=7_800.0,
    trfc=350.0,
    trc=1_330.0,
    trefw=400_000.0,
    tfaw=2_800.0,
)


@dataclass(frozen=True)
class VerifyScale:
    """The scaled parameter set all fuzz subjects are built at.

    Everything is derived through :class:`GrapheneConfig` /
    :class:`RankTableConfig` from :data:`VERIFY_TIMINGS`, exactly like
    production configurations -- the verification domain is a genuine
    (if small) Graphene sizing, not a hand-patched table.
    """

    hammer_threshold: int = 144
    rows_per_bank: int = 512
    banks: int = 4
    reset_window_divisor: int = 2
    timings: DramTimings = field(default_factory=lambda: VERIFY_TIMINGS)
    #: Pacing of generated streams (simulated ns between ACTs).
    act_interval_ns: float = 500.0
    #: T_RH used for the full-system mitigation layer (which runs at
    #: real DDR4 timings, repaced by the differential executor).  Low
    #: enough that the unprotected control arm takes bit flips on
    #: hammering generators at the default stream length -- the
    #: streams demonstrably have teeth -- while every deterministic-
    #: guarantee scheme must still hold the line at zero.
    mitigation_trh: int = 250

    @property
    def config(self) -> GrapheneConfig:
        """Per-bank Graphene config (T=24, N_entry=5 at the defaults)."""
        return GrapheneConfig(
            hammer_threshold=self.hammer_threshold,
            timings=self.timings,
            rows_per_bank=self.rows_per_bank,
            reset_window_divisor=self.reset_window_divisor,
        )

    @property
    def rank_config(self) -> RankTableConfig:
        """Shared rank-level table config over the same window."""
        return RankTableConfig(
            hammer_threshold=self.hammer_threshold,
            timings=self.timings,
            banks_per_rank=self.banks,
            rows_per_bank=self.rows_per_bank,
            reset_window_divisor=self.reset_window_divisor,
        )

    @property
    def threshold(self) -> int:
        """The scaled tracking threshold ``T``."""
        return self.config.tracking_threshold

    @property
    def window_ns(self) -> float:
        return self.config.reset_window_ns

    @property
    def bank_budget(self) -> int:
        """``W``: in-domain ACTs per bank per reset window."""
        return self.config.max_activations_per_window

    @property
    def rank_budget(self) -> int:
        """``W_rank``: in-domain ACTs per rank per reset window."""
        return self.rank_config.max_activations_per_window

    def describe(self) -> dict[str, object]:
        """Scale summary embedded in artifacts (cache/replay sanity)."""
        return {
            "hammer_threshold": self.hammer_threshold,
            "rows_per_bank": self.rows_per_bank,
            "banks": self.banks,
            "k": self.reset_window_divisor,
            "T": self.threshold,
            "N_entry": self.config.num_entries,
            "window_ns": self.window_ns,
            "bank_budget": self.bank_budget,
            "rank_budget": self.rank_budget,
            "mitigation_trh": self.mitigation_trh,
        }


DEFAULT_SCALE = VerifyScale()


class _StreamBuilder:
    """Emits in-domain ACT events with automatic window-budget rollover."""

    def __init__(self, scale: VerifyScale) -> None:
        self.scale = scale
        self.interval = scale.act_interval_ns
        self.window_ns = scale.window_ns
        self.time = 0.0
        self.events: list[ActEvent] = []
        self._window = 0
        self._bank_counts: Counter = Counter()
        self._total = 0

    def _roll_window(self) -> None:
        window = int(self.time // self.window_ns)
        if window != self._window:
            self._window = window
            self._bank_counts.clear()
            self._total = 0

    def emit(self, bank: int, row: int) -> None:
        """Emit one ACT, jumping to the next window if budgets are spent."""
        self._roll_window()
        if (
            self._total >= self.scale.rank_budget
            or self._bank_counts[bank] >= self.scale.bank_budget
        ):
            self.time = (self._window + 1) * self.window_ns
            self._roll_window()
        self._bank_counts[bank] += 1
        self._total += 1
        self.events.append(ActEvent(self.time, bank, row))
        self.time += self.interval

    def jump_to(self, time_ns: float) -> None:
        """Advance (never rewind) the stream clock."""
        if time_ns > self.time:
            self.time = time_ns

    @property
    def next_boundary_ns(self) -> float:
        return (int(self.time // self.window_ns) + 1) * self.window_ns


Generator = Callable[[random.Random, VerifyScale, int, "_StreamBuilder"], None]


def _gen_random(
    rng: random.Random, scale: VerifyScale, length: int, out: _StreamBuilder
) -> None:
    """Hot-set plus uniform background across all banks."""
    hot = [
        (rng.randrange(scale.banks), rng.randrange(1, scale.rows_per_bank - 1))
        for _ in range(3)
    ]
    for _ in range(length):
        if rng.random() < 0.6:
            bank, row = rng.choice(hot)
        else:
            bank = rng.randrange(scale.banks)
            row = rng.randrange(scale.rows_per_bank)
        out.emit(bank, row)


def _gen_eviction(
    rng: random.Random, scale: VerifyScale, length: int, out: _StreamBuilder
) -> None:
    """Keep the table churning: cycle just over ``N_entry`` distinct
    rows so misses constantly hit the replace/spillover paths, with a
    focus row riding the carried-over counts."""
    capacity = scale.config.num_entries
    bank = rng.randrange(scale.banks)
    base = rng.randrange(8, scale.rows_per_bank - 8 - 2 * capacity)
    cycle = [base + 2 * i for i in range(capacity + 1 + rng.randint(0, 2))]
    focus = base + 2 * len(cycle)
    index = 0
    for _ in range(length):
        if rng.random() < 0.25:
            out.emit(bank, focus)
        else:
            out.emit(bank, cycle[index % len(cycle)])
            index += 1


def _gen_decoy(
    rng: random.Random, scale: VerifyScale, length: int, out: _StreamBuilder
) -> None:
    """One-shot decoys inflate the spillover count while one or two
    focus rows approach the threshold through inherited counts."""
    bank = rng.randrange(scale.banks)
    focus = [rng.randrange(4, scale.rows_per_bank - 4)
             for _ in range(rng.randint(1, 2))]
    decoy = 0
    for _ in range(length):
        if rng.random() < 0.4:
            out.emit(bank, rng.choice(focus))
        else:
            out.emit(bank, decoy)
            decoy = (decoy + 1) % scale.rows_per_bank
            if decoy in focus:
                decoy = (decoy + 1) % scale.rows_per_bank


def _gen_straddle(
    rng: random.Random, scale: VerifyScale, length: int, out: _StreamBuilder
) -> None:
    """Bursts placed across ``tREFW/k`` multiples: half the hammering
    lands just before a table reset, half just after, attacking any
    off-by-one in the lazy window-reset logic."""
    bank = rng.randrange(scale.banks)
    emitted = 0
    while emitted < length:
        focus = rng.randrange(2, scale.rows_per_bank - 2)
        burst = min(length - emitted, rng.randint(16, 48))
        # Park the burst so roughly half of it crosses the boundary.
        lead = (burst // 2) * out.interval
        out.jump_to(out.next_boundary_ns - lead)
        for i in range(burst):
            row = focus + (1 if i % 2 else -1) if rng.random() < 0.5 else focus
            out.emit(bank, row)
        emitted += burst


def _gen_interleave(
    rng: random.Random, scale: VerifyScale, length: int, out: _StreamBuilder
) -> None:
    """Round-robin double-sided hammering across every bank at once."""
    focus = [
        rng.randrange(2, scale.rows_per_bank - 2) for _ in range(scale.banks)
    ]
    for index in range(length):
        bank = index % scale.banks
        side = 1 if (index // scale.banks) % 2 else -1
        row = focus[bank] + side if rng.random() < 0.8 else focus[bank]
        out.emit(bank, row)


GENERATORS: dict[str, Generator] = {
    "random": _gen_random,
    "eviction": _gen_eviction,
    "decoy": _gen_decoy,
    "straddle": _gen_straddle,
    "interleave": _gen_interleave,
}

GENERATOR_NAMES: tuple[str, ...] = tuple(sorted(GENERATORS))


@dataclass(frozen=True)
class StreamSpec:
    """Reproducible description of one fuzz stream."""

    generator: str
    seed: int
    length: int = 1000

    def rng(self) -> random.Random:
        """Stream RNG: hash-seed independent, unique per (gen, seed)."""
        return random.Random(
            self.seed * 1_000_003 + zlib.crc32(self.generator.encode())
        )


def generate_stream(
    spec: StreamSpec, scale: VerifyScale = DEFAULT_SCALE
) -> list[ActEvent]:
    """Materialize the ACT stream a spec describes (always identical)."""
    generator = GENERATORS.get(spec.generator)
    if generator is None:
        raise ValueError(
            f"unknown generator {spec.generator!r}; "
            f"choose one of {', '.join(GENERATOR_NAMES)}"
        )
    if spec.length < 1:
        raise ValueError("stream length must be >= 1")
    builder = _StreamBuilder(scale)
    generator(spec.rng(), scale, spec.length, builder)
    return builder.events
