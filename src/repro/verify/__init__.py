"""Adversarial verification: differential fuzzing against the oracle.

The paper's headline claim is a *proof* (Section III-C): the
Misra-Gries estimate never undercounts by more than the spillover
bound, so no row reaches ``T_RH`` activations undetected.
:mod:`repro.core.guarantees` encodes that oracle; this package hammers
every implementation in the repository against it at scale:

* :mod:`~repro.verify.generators` -- seeded adversarial ACT-stream
  generators (random, eviction-targeting, decoy-churn, reset-window
  straddling, multi-bank interleaved), reproducible from
  ``(generator, seed, length)``;
* :mod:`~repro.verify.differential` -- the differential executor: one
  stream through :class:`~repro.core.graphene.GrapheneEngine`, the
  Section-VI tracker engines, the CAM-level hardware table, the
  rank-level shared table and every scheme in :mod:`repro.mitigations`,
  checked per-ACT against exact ground-truth counts;
* :mod:`~repro.verify.shrink` -- a greedy delta-debugging shrinker that
  reduces failing streams to minimal replayable reproducers;
* :mod:`~repro.verify.campaign` -- the campaign runner (reuses the
  parallel experiment runner and telemetry), JSON artifact replay, and
  the regression corpus under ``tests/corpus/``.

CLI: ``python -m repro verify fuzz|replay|corpus``.  See
``docs/testing.md`` for the test-tier and seed-management conventions.
"""

from .campaign import (
    CampaignReport,
    artifact_verdict,
    load_artifact,
    replay_artifact,
    run_campaign,
    save_artifact,
)
from .differential import (
    DEFAULT_SCALE,
    StreamReport,
    VerifyScale,
    Violation,
    core_subjects,
    run_stream,
)
from .generators import GENERATOR_NAMES, StreamSpec, generate_stream
from .shrink import shrink_stream

__all__ = [
    "GENERATOR_NAMES",
    "StreamSpec",
    "generate_stream",
    "VerifyScale",
    "DEFAULT_SCALE",
    "Violation",
    "StreamReport",
    "core_subjects",
    "run_stream",
    "shrink_stream",
    "CampaignReport",
    "run_campaign",
    "save_artifact",
    "load_artifact",
    "replay_artifact",
    "artifact_verdict",
]
