"""Greedy delta debugging: reduce failing streams to minimal reproducers.

A fuzz campaign that finds a violation on a 1000-ACT stream has found a
bug wrapped in 970 ACTs of noise.  :func:`shrink_stream` strips the
noise with the classic *ddmin* algorithm (Zeller & Hildebrandt 2002):
repeatedly try removing chunks of the stream, keep any removal that
still fails, and halve the chunk size when stuck; a final one-by-one
pass removes every individually-deletable event.  The result is
1-minimal -- removing any single remaining ACT makes the failure
disappear -- which is exactly what a committed regression reproducer
should look like.

Events keep their **original timestamps** when removed around: a
subsequence of a time-sorted stream is still time-sorted, window
membership of the survivors is unchanged, and every engine here
consumes absolute times (lazy window resets included), so any
subsequence is a valid stream.  No re-timing, no re-budgeting: the
subsequence of an in-domain stream trivially stays within the
per-window ACT budgets.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from ..workloads.trace import ActEvent

__all__ = ["shrink_stream"]


def shrink_stream(
    events: Sequence[ActEvent],
    failing: Callable[[Sequence[ActEvent]], bool],
    max_tests: int = 2000,
) -> list[ActEvent]:
    """Reduce ``events`` to a 1-minimal stream that still fails.

    Args:
        events: The original failing stream (time-sorted).
        failing: Predicate running the differential check; must return
            True on ``events`` (else ValueError) and be deterministic.
        max_tests: Safety cap on predicate invocations; the current
            best reduction is returned if the budget runs out.

    Returns:
        The reduced stream (original timestamps preserved).
    """
    current = list(events)
    if not failing(current):
        raise ValueError("shrink_stream needs a stream the predicate fails")
    tests = 0

    def check(candidate: list[ActEvent]) -> bool:
        nonlocal tests
        tests += 1
        return bool(candidate) and failing(candidate)

    # ddmin: remove complements at increasing granularity.
    granularity = 2
    while len(current) >= 2 and tests < max_tests:
        chunk = math.ceil(len(current) / granularity)
        reduced = False
        start = 0
        while start < len(current) and tests < max_tests:
            candidate = current[:start] + current[start + chunk:]
            if check(candidate):
                current = candidate
                reduced = True
                # Same start now addresses the next chunk.
            else:
                start += chunk
        if reduced:
            granularity = max(2, granularity - 1)
        elif chunk <= 1:
            break
        else:
            granularity = min(len(current), granularity * 2)

    # Final greedy pass: drop any single event that is still removable
    # (back to front, so earlier indices stay valid).
    index = len(current) - 1
    while index >= 0 and len(current) > 1 and tests < max_tests:
        candidate = current[:index] + current[index + 1:]
        if check(candidate):
            current = candidate
        index -= 1
    return current
