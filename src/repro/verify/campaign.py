"""Fuzz campaigns: scheduled cells, shrinking, replayable artifacts.

A *campaign* is a budgeted batch of fuzz **cells**.  Each cell is one
``(generator, seed)`` stream pushed through the whole differential
executor; cells are independent, picklable and content-addressed, so
they ride the shared :class:`~repro.experiments.runner.ExperimentRunner`
-- ``--jobs N`` fans them across cores and the on-disk result cache
makes re-running a seed matrix free.  Probabilistic mitigation schemes
are rotated across cells (one per cell on top of the full
deterministic set) so a campaign covers every scheme without paying
for nine simulations per stream.

When a cell fails, the campaign regenerates the stream locally,
shrinks it with :func:`~repro.verify.shrink.shrink_stream` against a
predicate that reproduces the *same* (subject, kind) violations, and
serializes the minimal reproducer as a JSON artifact.  Artifacts are
replayable (``repro verify replay <file>``) and committable: the
regression corpus under ``tests/corpus/`` is exactly this format with
``"expect": "pass"`` and is replayed by the tier-1 suite.

The deliberate-weakening hooks run the campaign against a mutated
engine: ``threshold_offset`` keeps its historical meaning (weakened
*graphene* triggering at ``T + offset``), while the general
``weakened`` label (e.g. ``"comet-weakened+1"`` or
``"abacus-weakened-spill1"``, resolved by
:func:`~repro.verify.differential.weakened_subject`) selects any
scheme's mutant.  The self-tests in ``tests/test_verify_campaign.py``
use both to prove the oracle catches real protection bugs in every
deterministic scheme and shrinks them to few-dozen-ACT reproducers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..experiments.runner import ExperimentRunner, Job, get_runner
from ..telemetry import runtime as _telemetry
from ..telemetry.events import OracleViolation
from ..workloads.trace import ActEvent
from .differential import (
    DEFAULT_SCALE,
    DETERMINISTIC_SCHEMES,
    PROBABILISTIC_SCHEMES,
    StreamReport,
    VerifyScale,
    Violation,
    core_subjects,
    run_stream,
    weakened_graphene_subject,
    weakened_subject,
)
from .generators import GENERATOR_NAMES, StreamSpec, generate_stream
from .shrink import shrink_stream

__all__ = [
    "ARTIFACT_SCHEMA",
    "CampaignReport",
    "run_cell",
    "run_campaign",
    "save_artifact",
    "load_artifact",
    "replay_artifact",
]

ARTIFACT_SCHEMA = 1


# ----------------------------------------------------------------------
# One cell (the picklable, cacheable unit of campaign work)
# ----------------------------------------------------------------------


def _cell_subjects(
    scale: VerifyScale, threshold_offset: int,
    parallel_fastpath: bool = False,
    weakened: str | None = None,
):
    """Subject roster for a cell.

    A ``weakened`` label (e.g. ``"abacus-weakened-spill1"``) narrows
    the roster to that one mutated engine; a non-zero
    ``threshold_offset`` keeps the historical graphene-only weakening.
    Otherwise the full core roster runs.
    """
    if weakened is not None:
        return {weakened: weakened_subject(weakened, scale)}
    if threshold_offset:
        name = f"graphene-weakened+{threshold_offset}"
        return {name: weakened_graphene_subject(scale, threshold_offset)}
    return core_subjects(scale, parallel_fastpath=parallel_fastpath)


def run_cell(
    *,
    generator: str,
    seed: int,
    length: int,
    schemes: Sequence[str],
    scale: Mapping[str, Any],
    threshold_offset: int = 0,
    parallel_fastpath: bool = False,
    weakened: str | None = None,
) -> dict[str, Any]:
    """Run one fuzz cell; returns a JSON-able result dict.

    Top-level and keyword-only so campaigns can ship cells through the
    experiment runner (process pools + on-disk cache).  ``scale`` is
    the :meth:`VerifyScale.describe` dict -- it is part of the cache
    key, and must match the current code's derivation (a mismatch means
    a stale caller, not a tunable).  ``parallel_fastpath`` adds the
    sharded + chunked fast-engine leg to the ``fastpath`` subject.
    """
    current = DEFAULT_SCALE
    if dict(scale) != current.describe():
        raise ValueError(
            f"cell scale {dict(scale)!r} does not match this build's "
            f"verification scale {current.describe()!r}"
        )
    spec = StreamSpec(generator=generator, seed=seed, length=length)
    events = generate_stream(spec, current)
    subjects = _cell_subjects(
        current, threshold_offset, parallel_fastpath=parallel_fastpath,
        weakened=weakened,
    )
    skip_mitigation = threshold_offset or weakened is not None
    report = run_stream(
        events,
        current,
        subjects=subjects,
        mitigation_schemes=() if skip_mitigation else tuple(schemes),
    )
    return {
        "generator": generator,
        "seed": seed,
        "length": length,
        "threshold_offset": threshold_offset,
        "weakened": weakened,
        "schemes": list(schemes),
        "acts": report.acts,
        "violations": [v.to_dict() for v in report.violations],
        "stats": report.subject_stats,
    }


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------


@dataclass
class CampaignReport:
    """Aggregated outcome of one fuzz campaign."""

    budget: int
    seed: int
    length: int
    cells: list[dict[str, Any]] = field(default_factory=list)
    #: Flattened violations, each annotated with its cell's spec.
    violations: list[dict[str, Any]] = field(default_factory=list)
    #: Paths of shrunken reproducer artifacts written for failures.
    artifacts: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_acts(self) -> int:
        return sum(cell["acts"] for cell in self.cells)

    def summary(self) -> list[str]:
        """Human-readable campaign footer."""
        per_generator: dict[str, int] = {}
        for cell in self.cells:
            per_generator[cell["generator"]] = (
                per_generator.get(cell["generator"], 0) + 1
            )
        lines = [
            f"campaign: {self.budget} cells x {self.length} ACTs "
            f"(seed {self.seed}), {self.total_acts} ACTs total",
            "generators: "
            + ", ".join(f"{g}={n}" for g, n in sorted(per_generator.items())),
        ]
        if self.ok:
            lines.append("oracle: no violations")
        else:
            lines.append(f"oracle: {len(self.violations)} VIOLATION(S)")
            for item in self.violations:
                lines.append(
                    f"  {item['subject']}/{item['kind']} on "
                    f"{item['generator']} seed {item['seed']}"
                    + (f" step {item['step']}" if item.get("step") is not None
                       else "")
                )
            for path in self.artifacts:
                lines.append(f"  reproducer: {path}")
        return lines


def _cell_seed(campaign_seed: int, index: int) -> int:
    """Deterministic, collision-free per-cell stream seed."""
    return campaign_seed * 100_000 + index


def _reproduces(
    targets: set[tuple[str, str]],
    scale: VerifyScale,
    threshold_offset: int,
    schemes: Sequence[str],
    parallel_fastpath: bool = False,
    weakened: str | None = None,
):
    """Predicate: does a candidate stream still hit the same failures?"""
    subject_names = {subject for subject, _ in targets}
    subjects = {
        name: fn
        for name, fn in _cell_subjects(
            scale, threshold_offset, parallel_fastpath=parallel_fastpath,
            weakened=weakened,
        ).items()
        if name in subject_names
    }
    mitigation = tuple(
        s for s in schemes if f"mitigation:{s}" in subject_names
    )

    def failing(events: Sequence[ActEvent]) -> bool:
        report = run_stream(
            events, scale, subjects=subjects, mitigation_schemes=mitigation
        )
        return any((v.subject, v.kind) in targets for v in report.violations)

    return failing


def run_campaign(
    budget: int,
    seed: int = 0,
    *,
    length: int = 1000,
    runner: ExperimentRunner | None = None,
    shrink: bool = True,
    artifact_dir: str | Path | None = "verify-artifacts",
    threshold_offset: int = 0,
    scale: VerifyScale = DEFAULT_SCALE,
    parallel_fastpath: bool = False,
    weakened: str | None = None,
) -> CampaignReport:
    """Run a budgeted differential-fuzzing campaign.

    Args:
        budget: Number of fuzz cells (streams); generators and
            probabilistic schemes are rotated round-robin across cells.
        seed: Campaign seed; cell ``i`` fuzzes stream seed
            ``seed * 100000 + i``.
        length: ACTs per stream.
        runner: Experiment runner (default: the configured module-level
            runner, giving ``--jobs``/cache behavior for free).
        shrink: Reduce each failing stream to a minimal reproducer.
        artifact_dir: Where reproducer JSONs go (None: don't write).
        threshold_offset: Weaken graphene to trigger at ``T+offset``
            (self-test hook; skips the mitigation layer).
        weakened: General weakened-subject label (any deterministic
            scheme, e.g. ``"comet-weakened+1"``); narrows each cell to
            that one mutant and skips the mitigation layer.
        scale: Verification scale (must be the default scale for now --
            cells are cached against its ``describe()`` dict).
        parallel_fastpath: Extend each cell's ``fastpath`` subject with
            a sharded + chunked fast-engine leg (``verify fuzz
            --parallel``).
    """
    if budget < 1:
        raise ValueError("campaign budget must be >= 1")
    runner = runner or get_runner()
    jobs = []
    for index in range(budget):
        generator = GENERATOR_NAMES[index % len(GENERATOR_NAMES)]
        rotation = PROBABILISTIC_SCHEMES[index % len(PROBABILISTIC_SCHEMES)]
        schemes = list(DETERMINISTIC_SCHEMES) + [rotation]
        cell_seed = _cell_seed(seed, index)
        kwargs = dict(
            generator=generator,
            seed=cell_seed,
            length=length,
            schemes=schemes,
            scale=scale.describe(),
            threshold_offset=threshold_offset,
        )
        # Only widen the cache key when the optional legs are on, so
        # existing campaign results keep their addresses.
        if parallel_fastpath:
            kwargs["parallel_fastpath"] = True
        if weakened is not None:
            kwargs["weakened"] = weakened
        jobs.append(
            Job(
                fn="repro.verify.campaign:run_cell",
                kwargs=kwargs,
                label=f"verify/{generator}/s{cell_seed}",
            )
        )
    results = runner.run(jobs)

    report = CampaignReport(budget=budget, seed=seed, length=length)
    bus = _telemetry.BUS
    for cell in results:
        report.cells.append(cell)
        for violation in cell["violations"]:
            annotated = dict(violation)
            annotated["generator"] = cell["generator"]
            annotated["seed"] = cell["seed"]
            report.violations.append(annotated)
            if bus is not None:
                bus.publish(
                    OracleViolation(
                        time_ns=0.0,
                        subject=violation["subject"],
                        kind=violation["kind"],
                        generator=cell["generator"],
                        seed=cell["seed"],
                        step=violation.get("step"),
                        detail=violation["detail"],
                    )
                )

    if shrink and artifact_dir is not None:
        directory = Path(artifact_dir)
        for cell in results:
            if not cell["violations"]:
                continue
            path = _shrink_and_save(
                cell, scale, directory, parallel_fastpath=parallel_fastpath
            )
            report.artifacts.append(str(path))
    return report


def _shrink_and_save(
    cell: Mapping[str, Any], scale: VerifyScale, directory: Path,
    parallel_fastpath: bool = False,
) -> Path:
    """Shrink one failing cell's stream and write its reproducer."""
    spec = StreamSpec(
        generator=cell["generator"], seed=cell["seed"], length=cell["length"]
    )
    events = generate_stream(spec, scale)
    targets = {(v["subject"], v["kind"]) for v in cell["violations"]}
    failing = _reproduces(
        targets, scale, cell["threshold_offset"], cell["schemes"],
        parallel_fastpath=parallel_fastpath,
        weakened=cell.get("weakened"),
    )
    reduced = shrink_stream(events, failing)
    first = cell["violations"][0]
    slug = f"{first['subject']}-{first['kind']}".replace(":", "_")
    path = directory / f"{cell['generator']}-seed{cell['seed']}-{slug}.json"
    save_artifact(
        path,
        reduced,
        generator=cell["generator"],
        seed=cell["seed"],
        length=cell["length"],
        expect="fail",
        violations=list(cell["violations"]),
        schemes=list(cell["schemes"]),
        threshold_offset=cell["threshold_offset"],
        weakened=cell.get("weakened"),
        scale=scale,
        note=f"shrunk from {cell['acts']} to {len(reduced)} ACTs",
    )
    return path


# ----------------------------------------------------------------------
# Replayable JSON artifacts
# ----------------------------------------------------------------------


def save_artifact(
    path: str | Path,
    events: Sequence[ActEvent],
    *,
    generator: str,
    seed: int,
    length: int,
    expect: str,
    violations: Sequence[Mapping[str, Any]] = (),
    schemes: Sequence[str] | None = None,
    threshold_offset: int = 0,
    weakened: str | None = None,
    scale: VerifyScale = DEFAULT_SCALE,
    note: str = "",
) -> Path:
    """Serialize a stream (plus its expectation) as a replayable JSON."""
    if expect not in ("pass", "fail"):
        raise ValueError(f"expect must be 'pass' or 'fail', got {expect!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "kind": "verify-stream",
        "expect": expect,
        "generator": generator,
        "seed": seed,
        "length": length,
        "acts": len(events),
        "threshold_offset": threshold_offset,
        "weakened": weakened,
        "schemes": list(schemes) if schemes is not None else None,
        "scale": scale.describe(),
        "violations": [dict(v) for v in violations],
        "note": note,
        "events": [[e.time_ns, e.bank, e.row] for e in events],
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Load an artifact; ``"events"`` comes back as live ActEvents."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path}: unsupported artifact schema {payload.get('schema')!r}"
        )
    if payload.get("kind") != "verify-stream":
        raise ValueError(f"{path}: not a verify-stream artifact")
    payload["events"] = [
        ActEvent(float(t), int(bank), int(row))
        for t, bank, row in payload["events"]
    ]
    return payload


def replay_artifact(
    path: str | Path, scale: VerifyScale = DEFAULT_SCALE,
    parallel_fastpath: bool = False,
) -> tuple[StreamReport, dict[str, Any]]:
    """Re-run an artifact's stream through the differential executor.

    Returns the fresh report plus the loaded artifact.  For
    ``"expect": "pass"`` corpus entries the report must be clean; for
    ``"expect": "fail"`` reproducers it must re-hit at least one of the
    recorded (subject, kind) pairs.  :func:`artifact_verdict` applies
    that rule.  ``parallel_fastpath`` replays the ``fastpath`` subject
    with the sharded + chunked fast-engine leg as well (``verify
    replay --parallel``).
    """
    artifact = load_artifact(path)
    if artifact["scale"] != scale.describe():
        raise ValueError(
            f"{path}: artifact was recorded at scale {artifact['scale']!r}, "
            f"which no longer matches the current verification scale -- "
            f"regenerate the artifact"
        )
    offset = artifact.get("threshold_offset", 0)
    weakened = artifact.get("weakened")
    subjects = _cell_subjects(
        scale, offset, parallel_fastpath=parallel_fastpath,
        weakened=weakened,
    )
    schemes = artifact.get("schemes")
    if offset or weakened is not None:
        mitigation: tuple[str, ...] = ()
    elif schemes is None:
        mitigation = DETERMINISTIC_SCHEMES + PROBABILISTIC_SCHEMES
    else:
        mitigation = tuple(schemes)
    report = run_stream(
        artifact["events"], scale, subjects=subjects,
        mitigation_schemes=mitigation,
    )
    return report, artifact


def artifact_verdict(
    report: StreamReport, artifact: Mapping[str, Any]
) -> tuple[bool, str]:
    """(ok, message): does a replay match the artifact's expectation?"""
    if artifact["expect"] == "pass":
        if report.ok:
            return True, "clean (as expected)"
        first = report.violations[0]
        return False, (
            f"expected clean but got {len(report.violations)} violation(s); "
            f"first: {first.subject}/{first.kind}: {first.detail}"
        )
    recorded = {
        (v["subject"], v["kind"]) for v in artifact.get("violations", ())
    }
    hits = [
        v for v in report.violations if (v.subject, v.kind) in recorded
    ]
    if hits:
        return True, (
            f"still reproduces {hits[0].subject}/{hits[0].kind} "
            f"(as expected)"
        )
    return False, (
        "expected the recorded violation(s) "
        + ", ".join(sorted(f"{s}/{k}" for s, k in recorded))
        + " but the replay came back clean -- bug fixed? refresh or retire "
        "this artifact"
    )
