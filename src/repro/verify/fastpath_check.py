"""Differential subject: the columnar fast path vs the reference engine.

The fast path (:mod:`repro.core.fastpath`) promises *byte-identical*
results, not approximately-equal ones, and since the kernel registry
covers every scheme in :data:`KERNEL_SCHEMES` the promise is
per-scheme.  This subject runs every verify stream through both stacks
once per kernel scheme and compares everything observable:

* the serialized :class:`~repro.sim.metrics.SimulationResult` (which
  folds in latency buckets, bank stats and controller counters),
* the full executed-directive log (order, victim rows, reasons),
* every recorded :class:`~repro.dram.faults.BitFlip`,
* each bank's final tracking-table state (Misra-Gries table, TWiCe
  entry table, CBT leaf partition, PARA generator state, refresh-rate
  pointer -- see :func:`repro.core.fast_kernels.reference_state`).

PARA is probabilistic but the comparison is still exact: both stacks
build their engines from the same seeded factory, and the kernel
contract includes leaving the generator in the bit-identical state the
scalar loop would.  Any mismatch is a ``divergence`` violation,
addressable enough for the shrinker to minimize.  The stream is
repaced to DDR4 timings exactly like the ``mitigation:*`` subjects so
the two layers see the same traffic.  When the fast path declines to
build (telemetry bus active), the subject reports itself skipped
rather than silently passing.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from ..core.fastpath import build_fast_controller_ex
from ..dram.timing import DDR4_2400
from ..workloads.trace import ActEvent
from .generators import VerifyScale

__all__ = ["KERNEL_SCHEMES", "run_fastpath_check", "fastpath_subject"]

#: Same DDR4 pacing the mitigation subjects use (one ACT per tRC).
_PACE_INTERVAL_NS = 45.0

#: Every scheme with a registered batched kernel; each verify stream is
#: differentially checked once per entry.  ABACuS declares the
#: ``cross_bank`` capability, so its ``parallel`` leg exercises the
#: degrade (still chunked) onto the vectorized cross-bank lane --
#: ``commit_run_banked`` over interleaved multi-bank segments -- rather
#: than true sharding.
KERNEL_SCHEMES = (
    "graphene", "para", "twice", "cbt", "refresh-rate", "comet", "abacus"
)


def _result_dict(controller, device, scheme, banks, rows_per_bank,
                 last_time_ns, duration_ns) -> dict[str, Any]:
    """Mirror :func:`repro.sim.simulator.simulate`'s result assembly."""
    from ..sim.metrics import SimulationResult

    if duration_ns is None:
        if controller.counters.acts_issued == 0:
            duration_ns = 0.0
        else:
            windows = max(1, math.ceil(last_time_ns / DDR4_2400.trefw))
            duration_ns = windows * DDR4_2400.trefw
    stats = device.total_stats()
    largest = max(
        (engine.stats.largest_directive_rows for engine in controller.engines),
        default=0,
    )
    return SimulationResult(
        scheme=scheme,
        workload="verify-fastpath",
        banks=banks,
        rows_per_bank=rows_per_bank,
        duration_ns=duration_ns,
        acts=controller.counters.acts_issued,
        victim_refresh_directives=controller.counters.nrr_commands,
        victim_rows_refreshed=controller.counters.nrr_rows,
        largest_directive_rows=largest,
        bit_flips=controller.counters.bit_flips,
        latency=controller.latency_summary(),
        bank_stats=stats,
        timings=DDR4_2400,
    ).to_dict()


def _directive_rows(log) -> list[tuple]:
    return [
        (d.bank, d.aggressor_row, tuple(d.victim_rows), d.time_ns, d.reason)
        for d in log
    ]


def _flip_rows(flips) -> list[tuple]:
    return [
        (f.bank, f.row, f.time_ns, f.disturbance, f.triggering_aggressor)
        for f in flips
    ]


def _check_scheme(
    scheme: str,
    paced: Sequence[ActEvent],
    duration_ns: float,
    scale: VerifyScale,
    parallel: bool = False,
) -> tuple[list, dict[str, Any] | None, dict[str, Any]]:
    """One scheme through the reference stack and one or two fast stacks.

    With ``parallel`` two more fast stacks run sharded across two
    persistent pool workers *and* chunked -- the first cold (it spawns
    the workers), the second warm on the same pool with different chunk
    boundaries -- so the differential covers the full execution matrix
    including pool reuse, not just in-process serial fast mode.
    Returns ``(violations, skipped, stats)``; ``skipped`` is non-None
    only when the fast controller refused to build.
    """
    from ..controller.mc import MemoryController
    from ..core.fast_kernels import reference_state
    from ..sim.simulator import build_device
    from ..workloads.columnar import TraceArray
    from .differential import Violation, _mitigation_factory

    subject = "fastpath"
    trh = scale.mitigation_trh

    def device():
        return build_device(
            banks=scale.banks,
            rows_per_bank=scale.rows_per_bank,
            hammer_threshold=scale.mitigation_trh,
            track_faults=True,
        )

    # (label-suffix, controller, device, run kwargs) per fast stack.
    stacks = []
    fast_device = device()
    fast, reason = build_fast_controller_ex(
        fast_device, _mitigation_factory(scheme, trh),
        keep_directive_log=True,
    )
    if fast is None:
        return [], {"skipped": f"fast path unavailable ({reason})"}, {}
    stacks.append(("", fast, fast_device, {}))
    if parallel:
        shard_device = device()
        sharded, reason = build_fast_controller_ex(
            shard_device, _mitigation_factory(scheme, trh),
            keep_directive_log=True, shard_workers=2,
        )
        if sharded is None:
            return [], {"skipped": f"fast path unavailable ({reason})"}, {}
        stacks.append((
            "/sharded", sharded, shard_device,
            {"chunk_events": max(1, len(paced) // 3)},
        ))
        # Pool-reuse leg: a second sharded stack on the *same*
        # persistent shard pool (the first sharded run warms it), with
        # a different chunking, so the differential also proves that a
        # warm pool and moved chunk boundaries change nothing.
        reuse_device = device()
        reused, reason = build_fast_controller_ex(
            reuse_device, _mitigation_factory(scheme, trh),
            keep_directive_log=True, shard_workers=2,
        )
        if reused is None:
            return [], {"skipped": f"fast path unavailable ({reason})"}, {}
        stacks.append((
            "/pool-reuse", reused, reuse_device,
            {"chunk_events": max(1, len(paced) // 2)},
        ))

    ref_device = device()
    reference = MemoryController(
        ref_device, _mitigation_factory(scheme, trh),
        keep_directive_log=True,
    )
    try:
        reference.run(iter(paced))
        for _, controller, _, run_kwargs in stacks:
            controller.run(TraceArray.from_events(paced), **run_kwargs)
    except Exception as exc:  # noqa: BLE001 - crash capture is the point
        return (
            [Violation(
                subject, "crash", f"[{scheme}] {type(exc).__name__}: {exc}"
            )],
            None,
            {},
        )

    last_time_ns = paced[-1].time_ns if paced else 0.0
    stats = {
        "acts": fast.counters.acts_issued,
        "directives": fast.counters.nrr_commands,
        "flips": fast.counters.bit_flips,
    }

    ref_result = _result_dict(
        reference, ref_device, scheme, scale.banks, scale.rows_per_bank,
        last_time_ns, duration_ns,
    )
    ref_log = _directive_rows(reference.directive_log)
    ref_flips = _flip_rows(reference.bit_flips)

    for label, fast, fast_device, _ in stacks:
        tag = f"{scheme}{label}"
        fast_result = _result_dict(
            fast, fast_device, scheme, scale.banks, scale.rows_per_bank,
            last_time_ns, duration_ns,
        )
        if ref_result != fast_result:
            keys = sorted(
                k for k in ref_result
                if ref_result[k] != fast_result.get(k)
            )
            return (
                [Violation(
                    subject, "divergence",
                    f"[{tag}] SimulationResult mismatch in field(s) "
                    + ", ".join(
                        f"{k}: ref={ref_result[k]!r} "
                        f"fast={fast_result.get(k)!r}"
                        for k in keys
                    ),
                )],
                None,
                stats,
            )

        fast_log = _directive_rows(fast.directive_log)
        if ref_log != fast_log:
            first = next(
                (i for i, (a, b) in enumerate(zip(ref_log, fast_log))
                 if a != b),
                min(len(ref_log), len(fast_log)),
            )
            return (
                [Violation(
                    subject, "divergence",
                    f"[{tag}] directive logs diverge at index {first}: "
                    f"ref has {len(ref_log)} directives, "
                    f"fast {len(fast_log)}; "
                    f"ref[{first}]="
                    f"{ref_log[first] if first < len(ref_log) else None!r} "
                    f"fast[{first}]="
                    f"{fast_log[first] if first < len(fast_log) else None!r}",
                )],
                None,
                stats,
            )

        if ref_flips != _flip_rows(fast.bit_flips):
            return (
                [Violation(
                    subject, "divergence",
                    f"[{tag}] bit-flip records diverge: "
                    f"ref={len(reference.bit_flips)} "
                    f"fast={len(fast.bit_flips)}",
                )],
                None,
                stats,
            )

        for bank in range(scale.banks):
            ref_state = reference_state(reference.engines[bank])
            fast_state = fast.engines[bank].table_state()
            if ref_state != fast_state:
                return (
                    [Violation(
                        subject, "divergence",
                        f"[{tag}] bank {bank} table state diverged: "
                        f"ref={ref_state!r} fast={fast_state!r}",
                    )],
                    None,
                    stats,
                )

    return [], None, stats


def run_fastpath_check(
    events: Sequence[ActEvent], scale: VerifyScale,
    parallel: bool = False,
) -> tuple[list, dict[str, Any]]:
    """Run one stream through both engines for every kernel scheme.

    Any difference for any scheme is a bug; the first divergence is
    returned (with the scheme named in the detail) so the shrinker has
    one addressable failure to minimize.  ``stats`` aggregates across
    schemes and records the roster size.  With ``parallel`` each scheme
    additionally runs two sharded + chunked fast stacks -- cold pool,
    then warm pool with moved chunk boundaries -- against the same
    reference.
    """
    paced = [
        ActEvent(index * _PACE_INTERVAL_NS, event.bank, event.row)
        for index, event in enumerate(events)
    ]
    duration_ns = (len(paced) + 1) * _PACE_INTERVAL_NS

    totals = {"acts": 0, "directives": 0, "flips": 0}
    for scheme in KERNEL_SCHEMES:
        violations, skipped, stats = _check_scheme(
            scheme, paced, duration_ns, scale, parallel=parallel
        )
        if skipped is not None:
            # Telemetry bus installed: the fast path correctly refuses
            # to build (it cannot publish per-ACT events) for every
            # scheme alike.  Nothing to compare.
            return [], skipped
        if violations:
            return violations, stats
        for key in totals:
            totals[key] += stats.get(key, 0)
    totals["schemes"] = len(KERNEL_SCHEMES)
    return [], totals


def fastpath_subject(scale: VerifyScale, parallel: bool = False):
    """Subject-roster entry (shape matches ``core_subjects`` values)."""
    return lambda ev: run_fastpath_check(ev, scale, parallel=parallel)
