"""The differential executor: one stream, every implementation, one oracle.

Runs an adversarial ACT stream through every tracker/engine in the
repository and checks each against **exact ground truth**:

* ``graphene``             -- the stock per-bank engine wrapped in
  :class:`~repro.core.guarantees.InstrumentedGrapheneEngine` (Lemmas
  1-2 + Theorem after every ACT);
* ``tracker:<kind>``       -- the Section-VI
  :class:`~repro.core.tracker_engine.TrackerBackedEngine` substrates
  (misra-gries, space-saving, lossy-counting, count-min);
* ``hardware-vs-logical``  -- lock-step comparison of the CAM-level
  :class:`~repro.core.hardware_table.HardwareGrapheneTable` against the
  logical :class:`~repro.core.misra_gries.MisraGriesTable`, flagging
  any trigger/spillover/tracked-set divergence;
* ``rank``                 -- the rank-level shared table;
* ``comet`` / ``abacus``   -- the CoMeT (count-min sketch + recent
  aggressor table) and ABACuS (rank-level shared row-ID counters)
  reference engines from :mod:`repro.mitigations`, each under the same
  exact-count gap oracle as Graphene;
* ``fastpath``             -- the columnar batch engine
  (:mod:`repro.core.fastpath`) against the reference controller,
  requiring byte-identical results, directives, bit flips and table
  state (see :mod:`.fastpath_check`);
* ``mitigation:<scheme>``  -- the full-system layer: the stream is
  repaced to DDR4 timings and driven through
  :func:`repro.sim.simulator.simulate` with the fault referee on;
  deterministic-guarantee schemes must produce **zero bit flips**.

The universal core check is the **gap theorem**: within a reset
window, a row must never receive more than ``T`` of its own ACTs
between two consecutive victim refreshes (equivalently, since the
window start).  For any tracker whose estimate upper-bounds the true
count this follows from the Section III-C argument, and it is checked
from exact per-row counts -- independent of whatever the subject
believes its counts are.  Probabilistic schemes (PARA, PRoHIT, MRLoc,
refresh-rate, none) carry no such guarantee and are executed for
crash-freedom and directive sanity only; the unprotected baseline
doubles as the control arm showing the streams have teeth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.graphene import GrapheneEngine
from ..core.guarantees import GuaranteeViolation, InstrumentedGrapheneEngine
from ..core.hardware_table import HardwareGrapheneTable
from ..core.misra_gries import MisraGriesTable
from ..core.rank_table import RankLevelEngine
from ..core.tracker_engine import TrackerBackedEngine
from ..workloads.trace import ActEvent
from .generators import DEFAULT_SCALE, VerifyScale

__all__ = [
    "VerifyScale",
    "DEFAULT_SCALE",
    "Violation",
    "StreamReport",
    "TRACKER_KINDS",
    "DETERMINISTIC_SCHEMES",
    "PROBABILISTIC_SCHEMES",
    "MITIGATION_SCHEMES",
    "core_subjects",
    "weakened_graphene_subject",
    "weakened_comet_subject",
    "weakened_abacus_subject",
    "weakened_subject",
    "run_stream",
]

TRACKER_KINDS = ("misra-gries", "space-saving", "lossy-counting", "count-min")

#: Schemes whose design carries a deterministic protection guarantee:
#: any bit flip under an in-range stream is an implementation bug.
DETERMINISTIC_SCHEMES = (
    "graphene", "twice", "cbt", "cra", "oracle", "comet", "abacus"
)
#: Probabilistic / best-effort schemes: executed for crash-freedom and
#: sanity only (flips are recorded, not gated).
PROBABILISTIC_SCHEMES = ("none", "para", "prohit", "mrloc", "refresh-rate")
MITIGATION_SCHEMES = DETERMINISTIC_SCHEMES + PROBABILISTIC_SCHEMES


@dataclass(frozen=True)
class Violation:
    """One oracle disagreement, addressable enough to shrink and replay."""

    subject: str
    #: "lemma1", "lemma2", "theorem", "gap", "divergence", "bit-flips",
    #: "crash" or "invariant".
    kind: str
    detail: str
    #: Stream index where the violation was detected (None for
    #: end-of-run checks such as bit-flip verdicts).
    step: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "kind": self.kind,
            "detail": self.detail,
            "step": self.step,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Violation":
        return cls(
            subject=data["subject"],
            kind=data["kind"],
            detail=data["detail"],
            step=data.get("step"),
        )


@dataclass
class StreamReport:
    """Outcome of one stream through the differential executor."""

    acts: int
    violations: list[Violation] = field(default_factory=list)
    #: subject -> small stat dict (triggers, flips, ...).
    subject_stats: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


class _GapOracle:
    """Exact-count gap theorem: per (bank, row), own-ACT count since
    the last victim refresh (or window start) must never exceed ``T``.

    The check runs *before* trigger bookkeeping: an ACT that both
    overflows the gap and triggers a refresh is still a violation --
    the refresh came one ACT too late.
    """

    def __init__(self, threshold: int, window_ns: float) -> None:
        self.threshold = threshold
        self.window_ns = window_ns
        self._window = 0
        self._gaps: dict[tuple[int, int], int] = {}

    def on_act(
        self,
        subject: str,
        step: int,
        bank: int,
        row: int,
        time_ns: float,
        triggered: Iterable[tuple[int, int]],
    ) -> Violation | None:
        window = int(time_ns // self.window_ns)
        if window != self._window:
            self._window = window
            self._gaps.clear()
        key = (bank, row)
        gap = self._gaps.get(key, 0) + 1
        self._gaps[key] = gap
        violation = None
        if gap > self.threshold:
            violation = Violation(
                subject=subject,
                kind="gap",
                detail=(
                    f"row {row} (bank {bank}) received {gap} ACTs since its "
                    f"last victim refresh in window {window}; the guarantee "
                    f"bound is T={self.threshold}"
                ),
                step=step,
            )
        for hit in triggered:
            self._gaps[hit] = 0
        return violation


def _classify(exc: BaseException) -> str:
    message = str(exc)
    if "Lemma 1" in message:
        return "lemma1"
    if "Lemma 2" in message:
        return "lemma2"
    if "Theorem" in message:
        return "theorem"
    return "invariant"


# ----------------------------------------------------------------------
# Core-layer subjects (scaled engines, per-ACT oracle)
# ----------------------------------------------------------------------


def _run_graphene(
    events: Sequence[ActEvent],
    scale: VerifyScale,
    threshold_offset: int = 0,
    subject: str = "graphene",
) -> tuple[list[Violation], dict[str, Any]]:
    """Stock engine + full Section III-C instrumentation + gap oracle.

    ``threshold_offset`` exists solely so tests can *weaken* the engine
    (e.g. trigger at ``T+1``) and prove the oracle catches it; the
    instrumented self-checks use the engine's own (bumped) threshold,
    the independent gap oracle always uses the true ``T``.
    """
    config = scale.config
    engines: dict[int, InstrumentedGrapheneEngine] = {}
    oracle = _GapOracle(scale.threshold, scale.window_ns)
    triggers = 0
    for step, event in enumerate(events):
        engine = engines.get(event.bank)
        if engine is None:
            engine = InstrumentedGrapheneEngine(
                config, bank=event.bank, check_every=4
            )
            engine.engine.threshold += threshold_offset
            engines[event.bank] = engine
        try:
            requests = engine.on_activate(event.row, event.time_ns)
        except (GuaranteeViolation, AssertionError) as exc:
            return (
                [Violation(subject, _classify(exc), str(exc), step)],
                {"triggers": triggers},
            )
        triggers += len(requests)
        violation = oracle.on_act(
            subject, step, event.bank, event.row, event.time_ns,
            [(event.bank, r.aggressor_row) for r in requests],
        )
        if violation is not None:
            return [violation], {"triggers": triggers}
    return [], {"triggers": triggers}


def _run_tracker(
    kind: str, events: Sequence[ActEvent], scale: VerifyScale
) -> tuple[list[Violation], dict[str, Any]]:
    """A Section-VI tracker substrate under the gap oracle."""
    subject = f"tracker:{kind}"
    config = scale.config
    engines: dict[int, TrackerBackedEngine] = {}
    oracle = _GapOracle(scale.threshold, scale.window_ns)
    triggers = 0
    for step, event in enumerate(events):
        engine = engines.get(event.bank)
        if engine is None:
            engine = TrackerBackedEngine(config, tracker=kind, bank=event.bank)
            engines[event.bank] = engine
        try:
            requests = engine.on_activate(event.row, event.time_ns)
        except Exception as exc:  # noqa: BLE001 - crash capture is the point
            return (
                [Violation(subject, "crash", f"{type(exc).__name__}: {exc}",
                           step)],
                {"triggers": triggers},
            )
        triggers += len(requests)
        violation = oracle.on_act(
            subject, step, event.bank, event.row, event.time_ns,
            [(event.bank, r.aggressor_row) for r in requests],
        )
        if violation is not None:
            return [violation], {"triggers": triggers}
    return [], {"triggers": triggers}


def _run_comet(
    events: Sequence[ActEvent],
    scale: VerifyScale,
    threshold_offset: int = 0,
    subject: str = "comet",
) -> tuple[list[Violation], dict[str, Any]]:
    """Per-bank CoMeT engines under the gap oracle.

    Deliberately *small* sketch and RAT at verify scale (64x2 counters,
    4 entries) so hash collisions and RAT evictions actually happen --
    collisions may only over-trigger, and eviction must not open a gap
    (the evicted row's sketch estimate re-triggers on its next ACT).
    ``threshold_offset`` weakens the trigger threshold to ``T+offset``
    for mutation tests; the oracle always checks the true ``T``.
    """
    from ..mitigations.comet import CoMeTMitigation

    config = scale.config
    engines: dict[int, CoMeTMitigation] = {}
    oracle = _GapOracle(scale.threshold, scale.window_ns)
    triggers = 0
    for step, event in enumerate(events):
        engine = engines.get(event.bank)
        if engine is None:
            engine = CoMeTMitigation(
                event.bank, scale.rows_per_bank, config,
                width=64, depth=2, rat_entries=4,
            )
            engine.threshold += threshold_offset
            engines[event.bank] = engine
        try:
            requests = engine.on_activate(event.row, event.time_ns)
        except Exception as exc:  # noqa: BLE001 - crash capture is the point
            return (
                [Violation(subject, "crash", f"{type(exc).__name__}: {exc}",
                           step)],
                {"triggers": triggers},
            )
        triggers += len(requests)
        violation = oracle.on_act(
            subject, step, event.bank, event.row, event.time_ns,
            [(r.bank, r.aggressor_row) for r in requests],
        )
        if violation is not None:
            return [violation], {"triggers": triggers}
    return [], {"triggers": triggers}


def _run_abacus(
    events: Sequence[ActEvent],
    scale: VerifyScale,
    threshold_offset: int = 0,
    insert_offset: int = 0,
    subject: str = "abacus",
) -> tuple[list[Violation], dict[str, Any]]:
    """The shared cross-bank ABACuS table under the gap oracle.

    All banks are attached up front (the shared table needs the full
    directive fan-out set), sized by the rank-wide budget at verify
    scale so the Misra-Gries eviction/spillover machinery is exercised.
    A trigger refreshes the row's neighborhood in *every* bank, so the
    oracle resets the gap for each directive's own bank.  The two
    offsets are mutation-test seams: ``threshold_offset`` delays the
    RAC trigger period, ``insert_offset`` re-creates the Misra-Gries
    insert-at-spillover off-by-one.
    """
    from ..mitigations.abacus import abacus_factory

    config = scale.config
    factory = abacus_factory(
        config.hammer_threshold,
        timings=scale.timings,
        reset_window_divisor=config.reset_window_divisor,
        total_banks=scale.banks,
    )
    engines = [factory(b, scale.rows_per_bank) for b in range(scale.banks)]
    state = engines[0].state
    state.threshold += threshold_offset
    state.insert_offset = insert_offset
    oracle = _GapOracle(scale.threshold, scale.window_ns)
    triggers = 0
    for step, event in enumerate(events):
        try:
            requests = engines[event.bank].on_activate(
                event.row, event.time_ns
            )
        except Exception as exc:  # noqa: BLE001 - crash capture is the point
            return (
                [Violation(subject, "crash", f"{type(exc).__name__}: {exc}",
                           step)],
                {"triggers": triggers},
            )
        triggers += len(requests)
        violation = oracle.on_act(
            subject, step, event.bank, event.row, event.time_ns,
            [(r.bank, r.aggressor_row) for r in requests],
        )
        if violation is not None:
            return [violation], {"triggers": triggers}
    return [], {"triggers": triggers}


def _run_hardware_vs_logical(
    events: Sequence[ActEvent], scale: VerifyScale
) -> tuple[list[Violation], dict[str, Any]]:
    """Lock-step CAM-level vs logical Misra-Gries comparison.

    Both models see the same per-bank stream with resets at the same
    window boundaries; every step must agree on the trigger decision,
    the spillover count and (sampled every 64 steps) the full tracked
    set -- the overflow-bit narrowing must be behaviorally invisible.
    """
    subject = "hardware-vs-logical"
    threshold = scale.threshold
    capacity = scale.config.num_entries
    count_bits = max(1, int(threshold).bit_length())
    logical: dict[int, MisraGriesTable] = {}
    hardware: dict[int, HardwareGrapheneTable] = {}
    windows: dict[int, int] = {}
    oracle = _GapOracle(threshold, scale.window_ns)
    triggers = 0
    for step, event in enumerate(events):
        bank, row = event.bank, event.row
        if bank not in logical:
            logical[bank] = MisraGriesTable(capacity)
            hardware[bank] = HardwareGrapheneTable(
                capacity, threshold, count_bits
            )
            windows[bank] = int(event.time_ns // scale.window_ns)
        window = int(event.time_ns // scale.window_ns)
        if window != windows[bank]:
            logical[bank].reset()
            hardware[bank].reset()
            windows[bank] = window
        count = logical[bank].observe(row)
        logical_trigger = count is not None and count % threshold == 0
        outcome = hardware[bank].process_activation(row)
        if logical_trigger != outcome.triggered:
            return (
                [Violation(
                    subject, "divergence",
                    f"step {step} (bank {bank} row {row}): logical "
                    f"trigger={logical_trigger} (count={count}) but "
                    f"hardware trigger={outcome.triggered} "
                    f"(path={outcome.path})",
                    step,
                )],
                {"triggers": triggers},
            )
        if logical[bank].spillover != hardware[bank].spillover:
            return (
                [Violation(
                    subject, "divergence",
                    f"step {step}: spillover {logical[bank].spillover} "
                    f"(logical) != {hardware[bank].spillover} (hardware)",
                    step,
                )],
                {"triggers": triggers},
            )
        if step % 64 == 0 and logical[bank].tracked() != hardware[bank].tracked():
            return (
                [Violation(
                    subject, "divergence",
                    f"step {step}: tracked sets diverged: "
                    f"{logical[bank].tracked()} != {hardware[bank].tracked()}",
                    step,
                )],
                {"triggers": triggers},
            )
        triggers += int(outcome.triggered)
        violation = oracle.on_act(
            subject, step, bank, row, event.time_ns,
            [(bank, row)] if outcome.triggered else [],
        )
        if violation is not None:
            return [violation], {"triggers": triggers}
    return [], {"triggers": triggers}


def _run_rank(
    events: Sequence[ActEvent], scale: VerifyScale
) -> tuple[list[Violation], dict[str, Any]]:
    """The rank-level shared table under the gap oracle."""
    subject = "rank"
    engine = RankLevelEngine(scale.rank_config)
    oracle = _GapOracle(engine.threshold, scale.window_ns)
    for step, event in enumerate(events):
        try:
            victims = engine.on_activate(event.bank, event.row, event.time_ns)
        except Exception as exc:  # noqa: BLE001 - crash capture is the point
            return (
                [Violation(subject, "crash", f"{type(exc).__name__}: {exc}",
                           step)],
                {"triggers": engine.victim_refresh_requests},
            )
        violation = oracle.on_act(
            subject, step, event.bank, event.row, event.time_ns,
            [(event.bank, event.row)] if victims else [],
        )
        if violation is not None:
            return (
                [violation],
                {"triggers": engine.victim_refresh_requests},
            )
    return [], {"triggers": engine.victim_refresh_requests}


def core_subjects(
    scale: VerifyScale = DEFAULT_SCALE,
    parallel_fastpath: bool = False,
) -> dict[str, Callable[[Sequence[ActEvent]], tuple[list[Violation], dict]]]:
    """All core-layer subjects, ready to run one stream each.

    ``parallel_fastpath`` extends the ``fastpath`` subject with a
    sharded + chunked fast-engine leg (two worker processes) so the
    multi-core dispatch path is differentially checked too.
    """
    from .fastpath_check import fastpath_subject

    subjects: dict[str, Callable] = {
        "graphene": lambda ev: _run_graphene(ev, scale),
        "comet": lambda ev: _run_comet(ev, scale),
        "abacus": lambda ev: _run_abacus(ev, scale),
        "hardware-vs-logical": lambda ev: _run_hardware_vs_logical(ev, scale),
        "rank": lambda ev: _run_rank(ev, scale),
        "fastpath": fastpath_subject(scale, parallel=parallel_fastpath),
    }
    for kind in TRACKER_KINDS:
        subjects[f"tracker:{kind}"] = (
            lambda ev, k=kind: _run_tracker(k, ev, scale)
        )
    return subjects


def weakened_graphene_subject(
    scale: VerifyScale = DEFAULT_SCALE, threshold_offset: int = 1
) -> Callable[[Sequence[ActEvent]], tuple[list[Violation], dict]]:
    """A deliberately broken engine (triggers at ``T + offset``).

    Test hook: campaigns against this subject MUST report gap
    violations, proving the oracle (and the shrinker behind it) has
    teeth.  Never part of the default subject roster.
    """
    return lambda ev: _run_graphene(
        ev, scale, threshold_offset=threshold_offset,
        subject=f"graphene-weakened+{threshold_offset}",
    )


def weakened_comet_subject(
    scale: VerifyScale = DEFAULT_SCALE, threshold_offset: int = 1
) -> Callable[[Sequence[ActEvent]], tuple[list[Violation], dict]]:
    """A deliberately broken CoMeT (both paths trigger at ``T + offset``).

    Same contract as :func:`weakened_graphene_subject`: campaigns
    against this subject MUST report gap violations.
    """
    return lambda ev: _run_comet(
        ev, scale, threshold_offset=threshold_offset,
        subject=f"comet-weakened+{threshold_offset}",
    )


def weakened_abacus_subject(
    scale: VerifyScale = DEFAULT_SCALE,
    threshold_offset: int = 0,
    insert_offset: int = 1,
) -> Callable[[Sequence[ActEvent]], tuple[list[Violation], dict]]:
    """A deliberately broken ABACuS.

    The default mutation is the Misra-Gries insert-at-spillover
    off-by-one (``insert_offset=1``): a churned row re-enters the
    shared table one count short each time, so its trigger arrives late
    and the gap oracle must catch it.  ``threshold_offset`` delays the
    RAC trigger period instead.
    """
    label = (
        f"abacus-weakened+{threshold_offset}"
        if threshold_offset
        else f"abacus-weakened-spill{insert_offset}"
    )
    return lambda ev: _run_abacus(
        ev, scale, threshold_offset=threshold_offset,
        insert_offset=insert_offset, subject=label,
    )


def weakened_subject(
    name: str, scale: VerifyScale = DEFAULT_SCALE
) -> Callable[[Sequence[ActEvent]], tuple[list[Violation], dict]]:
    """Resolve a weakened-subject label to its subject callable.

    Labels are the same strings the subjects report as their
    ``Violation.subject`` (so campaign artifacts can carry them):
    ``graphene-weakened+1``, ``comet-weakened+1``,
    ``abacus-weakened+2``, ``abacus-weakened-spill1``.
    """
    scheme, sep, mutation = name.partition("-weakened")
    if sep and mutation.startswith("+"):
        offset = int(mutation)
        if scheme == "graphene":
            return weakened_graphene_subject(scale, offset)
        if scheme == "comet":
            return weakened_comet_subject(scale, offset)
        if scheme == "abacus":
            return weakened_abacus_subject(
                scale, threshold_offset=offset, insert_offset=0
            )
    if sep and scheme == "abacus" and mutation.startswith("-spill"):
        return weakened_abacus_subject(
            scale, insert_offset=int(mutation[len("-spill"):])
        )
    raise ValueError(f"unknown weakened subject {name!r}")


# ----------------------------------------------------------------------
# Full-system mitigation layer
# ----------------------------------------------------------------------


def _mitigation_factory(scheme: str, trh: int):
    """Per-bank factory for one scheme at the verification threshold."""
    from ..analysis.scaling import para_probability_for
    from ..core.config import GrapheneConfig
    from ..mitigations import (
        abacus_factory,
        cbt_factory,
        comet_factory,
        cra_factory,
        graphene_factory,
        increased_refresh_rate_factory,
        mrloc_factory,
        no_mitigation_factory,
        oracle_factory,
        para_factory,
        prohit_factory,
        twice_factory,
    )

    if scheme == "graphene":
        return graphene_factory(
            GrapheneConfig(hammer_threshold=trh, reset_window_divisor=2)
        )
    if scheme == "twice":
        return twice_factory(trh)
    if scheme == "cbt":
        return cbt_factory(trh, num_counters=64, num_levels=8)
    if scheme == "cra":
        return cra_factory(trh, cache_entries=128)
    if scheme == "comet":
        return comet_factory(trh)
    if scheme == "abacus":
        return abacus_factory(trh)
    if scheme == "oracle":
        return oracle_factory(trh)
    if scheme == "none":
        return no_mitigation_factory()
    if scheme == "para":
        return para_factory(para_probability_for(trh), seed=1234)
    if scheme == "prohit":
        return prohit_factory(insert_probability=0.02, seed=1234)
    if scheme == "mrloc":
        return mrloc_factory(para_probability_for(trh), seed=1234)
    if scheme == "refresh-rate":
        return increased_refresh_rate_factory(multiplier=2)
    raise ValueError(f"unknown mitigation scheme {scheme!r}")


def _repace(events: Sequence[ActEvent], interval_ns: float) -> list[ActEvent]:
    """Map the verify-scale stream onto DDR4 pacing (same rows/banks)."""
    return [
        ActEvent(index * interval_ns, event.bank, event.row)
        for index, event in enumerate(events)
    ]


def _run_mitigation(
    scheme: str, events: Sequence[ActEvent], scale: VerifyScale
) -> tuple[list[Violation], dict[str, Any]]:
    """One scheme through the full simulator with the fault referee on."""
    from ..sim.simulator import simulate

    subject = f"mitigation:{scheme}"
    paced = _repace(events, interval_ns=45.0)
    duration_ns = (len(paced) + 1) * 45.0
    try:
        result = simulate(
            iter(paced),
            _mitigation_factory(scheme, scale.mitigation_trh),
            scheme=scheme,
            workload="verify",
            banks=scale.banks,
            rows_per_bank=scale.rows_per_bank,
            hammer_threshold=scale.mitigation_trh,
            track_faults=True,
            duration_ns=duration_ns,
        )
    except Exception as exc:  # noqa: BLE001 - crash capture is the point
        return (
            [Violation(subject, "crash", f"{type(exc).__name__}: {exc}")],
            {},
        )
    stats = {
        "flips": result.bit_flips,
        "directives": result.victim_refresh_directives,
        "rows_refreshed": result.victim_rows_refreshed,
    }
    if scheme in DETERMINISTIC_SCHEMES and result.bit_flips:
        return (
            [Violation(
                subject, "bit-flips",
                f"{result.bit_flips} bit flip(s) under a deterministic-"
                f"guarantee scheme (T_RH={scale.mitigation_trh}, "
                f"{len(paced)} ACTs)",
            )],
            stats,
        )
    return [], stats


# ----------------------------------------------------------------------
# One stream through everything
# ----------------------------------------------------------------------


def run_stream(
    events: Sequence[ActEvent],
    scale: VerifyScale = DEFAULT_SCALE,
    subjects: Mapping[str, Callable] | None = None,
    mitigation_schemes: Sequence[str] | None = MITIGATION_SCHEMES,
) -> StreamReport:
    """Run one stream through the chosen subjects; collect violations.

    Args:
        events: Time-sorted ACT stream (from :mod:`.generators` or a
            replayed artifact).
        scale: The verification scale the subjects are built at.
        subjects: Core-layer subjects (default: :func:`core_subjects`).
        mitigation_schemes: Full-system schemes to simulate (default:
            all; pass ``()`` to skip the mitigation layer entirely).
    """
    events = list(events)
    report = StreamReport(acts=len(events))
    if subjects is None:
        subjects = core_subjects(scale)
    for name, subject in subjects.items():
        violations, stats = subject(events)
        report.violations.extend(violations)
        report.subject_stats[name] = stats
    for scheme in mitigation_schemes or ():
        violations, stats = _run_mitigation(scheme, events, scale)
        report.violations.extend(violations)
        report.subject_stats[f"mitigation:{scheme}"] = stats
    return report
