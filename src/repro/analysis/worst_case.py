"""Worst-case victim-refresh analysis (paper Fig. 6 and the 0.34% bound).

Fig. 6 plots, for k = 1..10 (reset window = tREFW / k) on a single
bank:

* the number of table entries ``N_entry(k)`` -- which shrinks and then
  saturates as k grows (the ``(k+1)/k`` factor converges to 1);
* the worst-case number of additional (victim) refreshes relative to
  the normal refreshes of one tREFW -- which keeps growing with k
  because ``T`` shrinks linearly in ``k+1``.

Both curves are pure functions of the configuration; this module also
provides a *simulated* worst case (driving a real engine with the
refresh-maximizing pattern) so the analytic bound can be validated
against observed behavior.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import GrapheneConfig
from ..core.graphene import GrapheneEngine
from ..dram.timing import DDR4_2400, DramTimings
from ..workloads.synthetic import graphene_worst_case_rows, synthetic_events

__all__ = ["ResetWindowPoint", "reset_window_tradeoff", "simulated_worst_case"]


@dataclass(frozen=True)
class ResetWindowPoint:
    """One k value of the Fig. 6 trade-off curve."""

    k: int
    num_entries: int
    tracking_threshold: int
    #: Worst-case victim rows refreshed per bank per tREFW.
    worst_case_rows_per_trefw: int
    #: Same, relative to the normal refreshes of one tREFW (the Fig. 6
    #: left axis; multiply by 100 for percent).
    relative_additional_refreshes: float


def reset_window_tradeoff(
    hammer_threshold: int = 50_000,
    k_values: range | list[int] = range(1, 11),
    timings: DramTimings = DDR4_2400,
    rows_per_bank: int = 65536,
) -> list[ResetWindowPoint]:
    """The Fig. 6 curves: table size and worst-case refreshes vs k."""
    points = []
    for k in k_values:
        config = GrapheneConfig(
            hammer_threshold=hammer_threshold,
            timings=timings,
            rows_per_bank=rows_per_bank,
            reset_window_divisor=k,
        )
        worst_rows = config.max_victim_rows_refreshed_per_trefw()
        points.append(
            ResetWindowPoint(
                k=k,
                num_entries=config.num_entries,
                tracking_threshold=config.tracking_threshold,
                worst_case_rows_per_trefw=worst_rows,
                relative_additional_refreshes=worst_rows / rows_per_bank,
            )
        )
    return points


def simulated_worst_case(
    config: GrapheneConfig,
    windows: float = 1.0,
    seed: int = 0,
) -> tuple[int, int]:
    """Drive a real engine with the refresh-maximizing pattern.

    Returns:
        (victim_rows_refreshed, analytic_upper_bound) over ``windows``
        tREFWs; the former must never exceed the latter (asserted in
        tests), and approaches it from below because the pattern loses
        a little ACT budget to spillover warm-up after each reset.
    """
    engine = GrapheneEngine(config)
    duration_ns = windows * config.timings.trefw
    events = synthetic_events(
        graphene_worst_case_rows(config, seed=seed),
        duration_ns=duration_ns,
        timings=config.timings,
    )
    refreshed = 0
    for event in events:
        for request in engine.on_activate(event.row, event.time_ns):
            refreshed += len(request.victim_rows)
    bound = round(windows * config.max_victim_rows_refreshed_per_trefw())
    return refreshed, bound
