"""Parameter sensitivity of Graphene's configuration.

The paper derives its numbers for one timing/technology point (DDR4-2400,
64 ms tREFW, 50K threshold).  This module quantifies how the derived
configuration moves when each input moves -- the questions a memory
vendor adopting Graphene would ask:

* technology presets: DDR3 (139K threshold, slower tRC), DDR4 (50K),
  and a projected LPDDR4-class part (20K, per Kim et al. 2020);
* refresh-window sensitivity: high-temperature operation halves tREFW
  (32 ms), shrinking ``W`` and the table with it;
* tRC sensitivity: a faster core timing raises the attacker's ACT
  budget and the table size linearly;
* bank-size sensitivity: address width moves bits/entry, row count
  moves nothing else (Graphene is row-count-independent -- one of its
  scalability advantages over CBT, whose burst size is ``rows/2^l``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import GrapheneConfig
from ..dram.timing import DDR4_2400, DramTimings

__all__ = [
    "TechnologyPreset",
    "TECHNOLOGY_PRESETS",
    "configuration_for_preset",
    "sweep_parameter",
    "row_count_independence",
]


@dataclass(frozen=True)
class TechnologyPreset:
    """A named DRAM technology point."""

    name: str
    hammer_threshold: int
    timings: DramTimings
    rows_per_bank: int
    notes: str = ""


TECHNOLOGY_PRESETS: dict[str, TechnologyPreset] = {
    "ddr3": TechnologyPreset(
        name="ddr3",
        hammer_threshold=139_000,
        timings=DramTimings(trc=48.75, trfc=260.0),
        rows_per_bank=32768,
        notes="Kim et al. 2014: 139K threshold; DDR3-1600 timings",
    ),
    "ddr4": TechnologyPreset(
        name="ddr4",
        hammer_threshold=50_000,
        timings=DDR4_2400,
        rows_per_bank=65536,
        notes="the paper's evaluation point (TRRespass, 2020)",
    ),
    "lpddr4": TechnologyPreset(
        name="lpddr4",
        hammer_threshold=20_000,
        timings=DramTimings(trc=60.0, trfc=280.0),
        rows_per_bank=65536,
        notes="Kim et al. 2020: ~20K thresholds observed on LPDDR4",
    ),
    "future": TechnologyPreset(
        name="future",
        hammer_threshold=5_000,
        timings=DDR4_2400,
        rows_per_bank=131072,
        notes="projected scaling point the paper's Section V-C motivates",
    ),
}


def configuration_for_preset(
    preset: TechnologyPreset | str, reset_window_divisor: int = 2
) -> GrapheneConfig:
    """Graphene configuration for a named technology preset."""
    if isinstance(preset, str):
        preset = TECHNOLOGY_PRESETS[preset]
    return GrapheneConfig(
        hammer_threshold=preset.hammer_threshold,
        timings=preset.timings,
        rows_per_bank=preset.rows_per_bank,
        reset_window_divisor=reset_window_divisor,
    )


def sweep_parameter(
    parameter: str,
    values: list[float],
    base: GrapheneConfig | None = None,
) -> list[dict[str, object]]:
    """Re-derive the configuration while sweeping one input.

    Args:
        parameter: "trc", "trefw", "hammer_threshold" or
            "rows_per_bank".
        values: Values to substitute.
        base: Starting configuration (paper-optimized by default).

    Returns:
        One summary dict per value, with the swept value under
        ``swept``.
    """
    if base is None:
        base = GrapheneConfig.paper_optimized()
    rows = []
    for value in values:
        if parameter in ("trc", "trefw"):
            config = GrapheneConfig(
                hammer_threshold=base.hammer_threshold,
                timings=base.timings.scaled(**{parameter: value}),
                rows_per_bank=base.rows_per_bank,
                reset_window_divisor=base.reset_window_divisor,
            )
        elif parameter == "hammer_threshold":
            config = GrapheneConfig(
                hammer_threshold=int(value),
                timings=base.timings,
                rows_per_bank=base.rows_per_bank,
                reset_window_divisor=base.reset_window_divisor,
            )
        elif parameter == "rows_per_bank":
            config = GrapheneConfig(
                hammer_threshold=base.hammer_threshold,
                timings=base.timings,
                rows_per_bank=int(value),
                reset_window_divisor=base.reset_window_divisor,
            )
        else:
            raise ValueError(f"unknown parameter {parameter!r}")
        summary = config.summary()
        summary["swept"] = value
        rows.append(summary)
    return rows


def row_count_independence(
    row_counts: list[int] | None = None,
) -> dict[int, tuple[int, int]]:
    """(N_entry, entry_bits) across bank sizes.

    Demonstrates Graphene's scalability property: N_entry is a function
    of timing and threshold only; doubling the rows adds exactly one
    address bit per entry.
    """
    if row_counts is None:
        row_counts = [16384, 32768, 65536, 131072, 262144]
    out = {}
    for rows in row_counts:
        config = GrapheneConfig(
            rows_per_bank=rows, reset_window_divisor=2
        )
        out[rows] = (config.num_entries, config.entry_bits)
    return out
