"""Analytic reproductions: security, worst case, scaling, non-adjacent."""

from .non_adjacent import (
    INVERSE_SQUARE_LIMIT,
    NonAdjacentCost,
    graphene_non_adjacent_costs,
    para_distance_probabilities,
)
from .scaling import (
    PAPER_THRESHOLD_SWEEP,
    para_probability_for,
    scheme_factories,
    sweep_point,
)
from .formal import (
    MiniConfig,
    max_undetected_accumulation,
    verify_theorem_exhaustively,
)
from .statistics import (
    MeasurementSummary,
    repeat_with_seeds,
    summarize,
    wilson_interval,
)
from .sensitivity import (
    TECHNOLOGY_PRESETS,
    TechnologyPreset,
    configuration_for_preset,
    row_count_independence,
    sweep_parameter,
)
from .security import (
    ProhitAttackResult,
    derive_para_probability,
    mrloc_hit_rate_under_pattern,
    para_hazard_per_act,
    para_system_year_failure,
    para_window_failure_probability,
    para_window_failure_probability_exact,
    simulate_prohit_attack,
)
from .worst_case import (
    ResetWindowPoint,
    reset_window_tradeoff,
    simulated_worst_case,
)

__all__ = [
    "derive_para_probability",
    "para_hazard_per_act",
    "para_system_year_failure",
    "para_window_failure_probability",
    "para_window_failure_probability_exact",
    "simulate_prohit_attack",
    "ProhitAttackResult",
    "mrloc_hit_rate_under_pattern",
    "reset_window_tradeoff",
    "simulated_worst_case",
    "ResetWindowPoint",
    "PAPER_THRESHOLD_SWEEP",
    "para_probability_for",
    "scheme_factories",
    "sweep_point",
    "graphene_non_adjacent_costs",
    "para_distance_probabilities",
    "NonAdjacentCost",
    "INVERSE_SQUARE_LIMIT",
    "TechnologyPreset",
    "TECHNOLOGY_PRESETS",
    "configuration_for_preset",
    "sweep_parameter",
    "row_count_independence",
    "wilson_interval",
    "summarize",
    "MeasurementSummary",
    "repeat_with_seeds",
    "MiniConfig",
    "verify_theorem_exhaustively",
    "max_undetected_accumulation",
]
