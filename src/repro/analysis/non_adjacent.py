"""Non-adjacent (+-n) Row Hammer cost analysis (Sections III-D, V-D).

When an ACT disturbs victims up to ``n`` rows away, every scheme pays:

* **Graphene / TWiCe** -- the tracking threshold divides by the
  amplification factor ``A = 1 + mu_2 + ... + mu_n``, growing the table
  by ``A`` (at most ~1.64x for the inverse-square model, ``pi^2/6``),
  and every trigger refreshes ``2n`` rows instead of 2;
* **CBT** -- the burst refreshes grow by the same ``2(n-1)`` rows each,
  on top of its already-large bursts;
* **PARA** -- one refresh probability per distance, inflating its
  constant refresh stream by a factor ``A``.

This module tabulates those costs across radii and coupling models so
the Section V-D discussion can be reproduced quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.config import GrapheneConfig
from ..dram.faults import CouplingProfile
from ..dram.timing import DDR4_2400, DramTimings
from .security import derive_para_probability

__all__ = [
    "INVERSE_SQUARE_LIMIT",
    "NonAdjacentCost",
    "graphene_non_adjacent_costs",
    "para_distance_probabilities",
]

#: The Section III-D limit of the inverse-square amplification factor:
#: sum over 1/k^2 = pi^2 / 6 ~= 1.64.
INVERSE_SQUARE_LIMIT = math.pi**2 / 6


@dataclass(frozen=True)
class NonAdjacentCost:
    """Graphene's configuration and overhead at one blast radius."""

    blast_radius: int
    coupling_model: str
    amplification_factor: float
    tracking_threshold: int
    num_entries: int
    table_bits_per_bank: int
    victim_rows_per_refresh: int
    #: Table growth relative to the +-1 configuration.
    table_growth: float
    #: Worst-case refresh-energy increase (fraction; Fig. 6-style bound).
    worst_case_energy_increase: float


def graphene_non_adjacent_costs(
    hammer_threshold: int = 50_000,
    max_radius: int = 4,
    model: str = "inverse_square",
    timings: DramTimings = DDR4_2400,
    reset_window_divisor: int = 2,
) -> list[NonAdjacentCost]:
    """Graphene cost vs blast radius for a coupling model.

    Args:
        hammer_threshold: ``T_RH``.
        max_radius: Largest ``n`` to tabulate.
        model: "inverse_square" (``mu_i = 1/i^2``) or "uniform"
            (``mu_i = 1``, the conservative bound).
        timings: DRAM timing bundle.
        reset_window_divisor: Graphene's ``k``.
    """
    if model == "inverse_square":
        build = CouplingProfile.inverse_square
    elif model == "uniform":
        build = CouplingProfile.uniform
    else:
        raise ValueError(f"unknown coupling model {model!r}")
    baseline_bits: int | None = None
    costs = []
    for radius in range(1, max_radius + 1):
        config = GrapheneConfig(
            hammer_threshold=hammer_threshold,
            timings=timings,
            reset_window_divisor=reset_window_divisor,
            coupling=build(radius),
        )
        bits = config.table_bits_per_bank
        if baseline_bits is None:
            baseline_bits = bits
        costs.append(
            NonAdjacentCost(
                blast_radius=radius,
                coupling_model=model,
                amplification_factor=config.amplification_factor,
                tracking_threshold=config.tracking_threshold,
                num_entries=config.num_entries,
                table_bits_per_bank=bits,
                victim_rows_per_refresh=config.victim_rows_per_refresh,
                table_growth=bits / baseline_bits,
                worst_case_energy_increase=(
                    config.worst_case_refresh_energy_increase()
                ),
            )
        )
    return costs


def para_distance_probabilities(
    hammer_threshold: int,
    blast_radius: int,
    model: str = "inverse_square",
    timings: DramTimings = DDR4_2400,
) -> tuple[float, ...]:
    """Per-distance PARA probabilities ``(p_1 ... p_n)`` (Section V-D).

    A victim at distance ``i`` absorbs ``mu_i`` of the disturbance, so
    it can only be flipped by ~``T_RH / mu_i`` ACTs; the near-complete
    probability for that distance is derived against the inflated
    threshold.  The total refresh stream grows by ~``A``.
    """
    if model == "inverse_square":
        coupling = CouplingProfile.inverse_square(blast_radius)
    elif model == "uniform":
        coupling = CouplingProfile.uniform(blast_radius)
    else:
        raise ValueError(f"unknown coupling model {model!r}")
    probabilities = []
    for distance in range(1, blast_radius + 1):
        effective_threshold = max(
            8, int(hammer_threshold / coupling.mu(distance))
        )
        probabilities.append(
            derive_para_probability(effective_threshold, timings=timings)
        )
    return tuple(probabilities)
