"""Statistical utilities for Monte-Carlo and multi-seed experiments.

The security experiments estimate small probabilities from finite
trials (PRoHIT's flip rate) and the overhead experiments average over
stochastic traces.  This module provides the interval arithmetic those
reports should carry:

* Wilson score intervals for binomial proportions (robust at 0/N and
  small N, unlike the normal approximation);
* mean +- t-interval summaries for repeated-seed measurements;
* a repeat-runner that evaluates a measurement across seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = [
    "wilson_interval",
    "MeasurementSummary",
    "summarize",
    "repeat_with_seeds",
]


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: Observed successes (0 <= successes <= trials).
        trials: Number of Bernoulli trials (> 0).
        confidence: Two-sided confidence level.

    Returns:
        (low, high) bounds on the underlying probability.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes outside [0, trials]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    # Normal quantile via Acklam-style rational approximation is
    # overkill; the standard levels cover experimental use.
    z_table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    z = z_table.get(round(confidence, 2))
    if z is None:
        # Fall back to a coarse inverse via bisection on erf.
        z = _normal_quantile((1 + confidence) / 2)
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)


def _normal_quantile(q: float) -> float:
    """Inverse standard-normal CDF by bisection on erf (slow, exact
    enough for confidence bounds)."""
    lo, hi = -10.0, 10.0
    for _ in range(200):
        mid = (lo + hi) / 2
        if 0.5 * (1 + math.erf(mid / math.sqrt(2))) < q:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


#: Two-sided t critical values at 95% for small sample sizes; beyond
#: the table the normal value is close enough.
_T_95 = {
    2: 12.706, 3: 4.303, 4: 3.182, 5: 2.776, 6: 2.571, 7: 2.447,
    8: 2.365, 9: 2.306, 10: 2.262, 15: 2.145, 20: 2.093, 30: 2.045,
}


@dataclass(frozen=True)
class MeasurementSummary:
    """Mean with a 95% confidence half-width over repeated runs."""

    mean: float
    half_width_95: float
    minimum: float
    maximum: float
    samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width_95

    @property
    def high(self) -> float:
        return self.mean + self.half_width_95

    def overlaps(self, other: "MeasurementSummary") -> bool:
        """True when the two 95% intervals intersect (differences not
        statistically resolvable at this sample size)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.6g} +- {self.half_width_95:.2g} (n={self.samples})"


def summarize(values: Sequence[float]) -> MeasurementSummary:
    """Mean +- t-based 95% interval of a sample."""
    if not values:
        raise ValueError("need at least one value")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return MeasurementSummary(mean, 0.0, mean, mean, 1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stderr = math.sqrt(variance / n)
    t = _T_95.get(n)
    if t is None:
        keys = sorted(_T_95)
        t = _T_95[max(k for k in keys if k <= n)] if n > keys[0] else _T_95[2]
        if n > 30:
            t = 1.960
    return MeasurementSummary(
        mean=mean,
        half_width_95=t * stderr,
        minimum=min(values),
        maximum=max(values),
        samples=n,
    )


def repeat_with_seeds(
    measure: Callable[[int], float],
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> MeasurementSummary:
    """Evaluate ``measure(seed)`` across seeds and summarize.

    Use for trace-stochastic metrics, e.g.::

        summary = repeat_with_seeds(
            lambda s: run_fig8_cell("mcf", "para", seed=s),
        )
    """
    if not seeds:
        raise ValueError("need at least one seed")
    return summarize([measure(seed) for seed in seeds])
