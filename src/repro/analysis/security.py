"""Security analysis of the probabilistic schemes (paper Section V-A).

Three analyses live here:

1. **PARA failure probability.**  The paper's footnote-2 recurrence for
   the probability that a maximal single-row hammer defeats PARA within
   one refresh window:

       P(e_N) = P(e_{N-1}) + f * (1 - P(e_{N-T_RH-1}))

   where the per-ACT first-failure hazard is ``f = 2 * (p/2) *
   (1 - p/2)^T_RH`` (each of the two victim rows is refreshed per ACT
   with probability ``p/2``).  Both the exact dynamic program and the
   tight linear-regime closed form are provided, plus the system-year
   aggregation (64 banks, one year) and the solver that reproduces the
   paper's near-complete-protection probabilities: p = 0.00145 at
   T_RH = 50K, up to 0.05034 at 1.56K (Section V-C).

2. **PRoHIT under the Fig. 7(a) pattern.**  An event-driven Monte
   Carlo of PRoHIT's hot/cold tables fed the killer pattern, tracking
   the edge victims' disturbance between their (rare) refreshes; the
   paper reports a 0.25% bit-flip chance per tREFW at a refresh budget
   equal to PARA-0.00145's.

3. **MRLoc under the Fig. 7(b) pattern.**  Cycling more victims than
   the history queue holds drives its hit rate to zero, reducing MRLoc
   to bare PARA -- measured directly on the engine.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from ..dram.timing import DDR4_2400, DramTimings
from ..mitigations.mrloc import MRLoc
from ..workloads.adversarial import mrloc_killer_rows

__all__ = [
    "SECONDS_PER_YEAR",
    "para_hazard_per_act",
    "para_window_failure_probability",
    "para_window_failure_probability_exact",
    "para_system_year_failure",
    "derive_para_probability",
    "ProhitAttackResult",
    "simulate_prohit_attack",
    "mrloc_hit_rate_under_pattern",
]

SECONDS_PER_YEAR = 365.25 * 24 * 3600


# ----------------------------------------------------------------------
# PARA
# ----------------------------------------------------------------------


def para_hazard_per_act(p: float, hammer_threshold: int) -> float:
    """Per-ACT probability that the hammer first succeeds at this ACT.

    The attacker needs ``T_RH`` consecutive ACTs with no refresh of a
    victim; each victim dodges refresh with probability ``(1 - p/2)``
    per ACT, and there are two victims (union bound -- exact to first
    order for the tiny probabilities involved).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p outside [0, 1]")
    if hammer_threshold < 1:
        raise ValueError("hammer_threshold must be >= 1")
    half = p / 2.0
    # Work in log space: (1 - p/2)^T_RH underflows for large T_RH * p.
    log_surv = hammer_threshold * math.log1p(-half) if half < 1.0 else -math.inf
    return 2.0 * half * math.exp(log_surv)


def para_window_failure_probability(
    p: float,
    hammer_threshold: int,
    acts_per_window: int | None = None,
    timings: DramTimings = DDR4_2400,
) -> float:
    """Closed-form P(attack succeeds within one refresh window).

    Linear-regime evaluation of the recurrence: the hazard can first
    fire at ACT ``T_RH``; over a window of ``W`` ACTs,
    ``P ~= 1 - exp(-f * (W - T_RH))``.  For the probabilities the paper
    operates at (<= 1e-10 per window) this is indistinguishable from
    the exact DP (validated in the test suite).
    """
    if acts_per_window is None:
        acts_per_window = timings.max_activations_per_refresh_window
    effective = max(0, acts_per_window - hammer_threshold)
    hazard = para_hazard_per_act(p, hammer_threshold)
    return -math.expm1(-hazard * effective)


def para_window_failure_probability_exact(
    p: float,
    hammer_threshold: int,
    acts_per_window: int,
) -> float:
    """The footnote-2 recurrence, evaluated exactly by dynamic program.

    O(W) time and memory; intended for validation at reduced scales
    (the closed form is used for full-scale parameter derivation).
    """
    if acts_per_window < 0:
        raise ValueError("acts_per_window must be >= 0")
    hazard = para_hazard_per_act(p, hammer_threshold)
    failure = np.zeros(acts_per_window + 1, dtype=np.float64)
    for n in range(hammer_threshold, acts_per_window + 1):
        earlier = n - hammer_threshold - 1
        not_yet = 1.0 - (failure[earlier] if earlier >= 0 else 0.0)
        failure[n] = failure[n - 1] + hazard * not_yet
    return float(min(1.0, failure[acts_per_window]))


def para_system_year_failure(
    p: float,
    hammer_threshold: int,
    banks: int = 64,
    years: float = 1.0,
    timings: DramTimings = DDR4_2400,
) -> float:
    """P(at least one successful attack on the system within ``years``).

    The paper's system: 4 channels x 1 rank x 16 banks = 64 banks, each
    independently attackable every refresh window.
    """
    per_window = para_window_failure_probability(
        p, hammer_threshold, timings=timings
    )
    windows = years * SECONDS_PER_YEAR / (timings.trefw / 1e9)
    exposures = banks * windows
    # 1 - (1 - q)^n computed stably for tiny q.
    return -math.expm1(exposures * math.log1p(-min(per_window, 1.0 - 1e-15)))


def derive_para_probability(
    hammer_threshold: int,
    target_failure: float = 0.01,
    banks: int = 64,
    years: float = 1.0,
    timings: DramTimings = DDR4_2400,
    tolerance: float = 1e-6,
) -> float:
    """Smallest ``p`` giving near-complete protection (Section V-A).

    Near-complete protection = less than ``target_failure`` (1%) chance
    of any successful attack on the ``banks``-bank system per year.
    Reproduces the paper's p series (0.00145 at 50K ... 0.05034 at
    1.56K) to within a percent.
    """
    if not 0.0 < target_failure < 1.0:
        raise ValueError("target_failure must be in (0, 1)")
    low, high = 0.0, 1.0
    while high - low > tolerance * max(1.0, low):
        mid = (low + high) / 2.0
        failure = para_system_year_failure(
            mid, hammer_threshold, banks=banks, years=years, timings=timings
        )
        if failure > target_failure:
            low = mid
        else:
            high = mid
    return high


# ----------------------------------------------------------------------
# PRoHIT under the Fig. 7(a) pattern
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ProhitAttackResult:
    """Outcome of a PRoHIT Monte Carlo campaign."""

    trials: int
    flipped_trials: int
    total_refreshes: float
    acts_per_window: int

    @property
    def flip_probability(self) -> float:
        """P(at least one bit flip within one tREFW)."""
        return self.flipped_trials / self.trials if self.trials else 0.0

    @property
    def refreshes_per_window(self) -> float:
        return self.total_refreshes / self.trials if self.trials else 0.0


def simulate_prohit_attack(
    hammer_threshold: int,
    insert_probability: float,
    trials: int = 200,
    hot_size: int = 4,
    cold_size: int = 3,
    promotion_probability: float = 1.0,
    refresh_period: int = 1,
    timings: DramTimings = DDR4_2400,
    seed: int = 0,
) -> ProhitAttackResult:
    """Monte Carlo PRoHIT vs the Fig. 7(a) pattern, one tREFW per trial.

    Event-driven: only the (rare) sampling events and the per-tREFI
    refresh drains are simulated; between them the tables are static
    and the victims' disturbance grows deterministically at the
    pattern's per-victim rates.  This makes full-scale windows (1.36M
    ACTs) tractable.

    Victims are indexed by their offset from the pattern center ``x``:
    offsets (-5, -3, -1, +1, +3, +5) with per-period (9 ACTs)
    disturbance (1, 3, 5, 5, 3, 1) and sampling weights proportional to
    how often each victim's aggressors fire.

    ``promotion_probability`` and ``refresh_period`` model PRoHIT's
    probabilistic table management: a cold-table hit is promoted into
    the hot table only with the former probability, and the top hot
    entry is drained (refreshed) only on every ``refresh_period``-th
    REF command.  The original design manages both tables
    probabilistically but its exact constants are unpublished, so the
    Fig. 7 experiment scans these knobs under a fixed refresh budget
    equal to PARA-0.00145's (see
    :mod:`repro.experiments.fig7_security`): across plausible settings
    the flip probability sweeps from 0 through and far beyond the
    paper's reported 0.25% -- i.e. PRoHIT cannot be relied on for
    near-complete protection under this pattern, the paper's claim.
    """
    if hammer_threshold < 1:
        raise ValueError("hammer_threshold must be >= 1")
    if refresh_period < 1:
        raise ValueError("refresh_period must be >= 1")
    rng = random.Random(seed)
    offsets = (-5, -3, -1, 1, 3, 5)
    disturbance_per_period = {
        -5: 1.0, -3: 3.0, -1: 5.0, 1: 5.0, 3: 3.0, 5: 1.0,
    }
    # A victim is sampled whenever one of its aggressors fires and the
    # q-coin lands: sampling weight == per-period aggressor ACT count.
    weights = [disturbance_per_period[offset] for offset in offsets]
    total_weight = sum(weights)  # 18 victim-exposures per 9-ACT period

    intervals = timings.refreshes_per_window
    acts_per_interval = int(
        (timings.trefi - timings.trfc) / timings.trc
    )
    acts_per_window = intervals * acts_per_interval
    per_interval_disturbance = {
        offset: acts_per_interval / 9.0 * disturbance_per_period[offset]
        for offset in offsets
    }
    exposures_per_interval = acts_per_interval / 9.0 * total_weight

    flipped_trials = 0
    total_refreshes = 0
    for _ in range(trials):
        hot: list[int] = []
        cold: list[int] = []
        charge = {offset: 0.0 for offset in offsets}
        flipped = False
        refreshes = 0
        for _interval in range(intervals):
            # Disturbance accrues at the pattern's deterministic rates.
            for offset in offsets:
                charge[offset] += per_interval_disturbance[offset]
                if charge[offset] >= hammer_threshold:
                    flipped = True
            if flipped:
                break
            # Sampling events within the interval (binomial thinning).
            samples = _binomial(
                rng, exposures_per_interval, insert_probability
            )
            for _ in range(samples):
                victim = rng.choices(offsets, weights=weights)[0]
                _prohit_insert(
                    victim, hot, cold, hot_size, cold_size,
                    promotion_probability, rng,
                )
            # tREFI tick: refresh the top hot entry (every Nth tick).
            if hot and _interval % refresh_period == 0:
                refreshed = hot.pop(0)
                charge[refreshed] = 0.0
                refreshes += 1
        if flipped:
            flipped_trials += 1
        total_refreshes += refreshes
    return ProhitAttackResult(
        trials=trials,
        flipped_trials=flipped_trials,
        total_refreshes=float(total_refreshes),
        acts_per_window=acts_per_window,
    )


def _binomial(rng: random.Random, mean_events: float, probability: float) -> int:
    """Sample Binomial(n~mean_events, p) cheaply via Poisson approx."""
    lam = mean_events * probability
    if lam <= 0:
        return 0
    # Knuth's method is fine for the small lambdas involved (<~ 5).
    threshold = math.exp(-lam)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _prohit_insert(
    victim: int,
    hot: list[int],
    cold: list[int],
    hot_size: int,
    cold_size: int,
    promotion_probability: float = 1.0,
    rng: random.Random | None = None,
) -> None:
    """The PRoHIT table-management rules (mirrors the engine)."""
    if victim in hot:
        index = hot.index(victim)
        if index > 0:
            hot[index - 1], hot[index] = hot[index], hot[index - 1]
        return
    if victim in cold:
        if promotion_probability < 1.0 and (
            rng is None or rng.random() >= promotion_probability
        ):
            return
        cold.remove(victim)
        if len(hot) >= hot_size:
            cold.insert(0, hot.pop())
        hot.append(victim)
    else:
        cold.insert(0, victim)
    while len(cold) > cold_size:
        cold.pop()


# ----------------------------------------------------------------------
# MRLoc under the Fig. 7(b) pattern
# ----------------------------------------------------------------------


def mrloc_hit_rate_under_pattern(
    aggressors: int = 8,
    queue_size: int = 15,
    acts: int = 20_000,
    rows: int = 65536,
    seed: int = 0,
) -> float:
    """History-queue hit rate of MRLoc under a cycling-aggressor attack.

    With ``aggressors`` mutually non-adjacent rows, the pattern creates
    ``2 * aggressors`` victims; once that exceeds ``queue_size`` the
    queue thrashes and the hit rate collapses to zero, which is the
    Fig. 7(b) result (MRLoc degenerates to PARA).
    """
    engine = MRLoc(
        bank=0, rows=rows, queue_size=queue_size, seed=seed
    )
    pattern = mrloc_killer_rows(
        count=aggressors, rows_per_bank=rows, seed=seed
    )
    interval = 50.0
    for index in range(acts):
        engine.on_activate(next(pattern), index * interval)
    return engine.hit_rate
