"""Bounded exhaustive verification of the protection theorem.

Property-based tests sample the access-pattern space; this module
*enumerates* it.  For a miniature configuration (a handful of rows, a
tiny tracking threshold, a small table) every possible ACT sequence up
to a given length is executed against a fresh engine plus ground-truth
counters, and the Section III-C theorem -- no row's actual count grows
by ``T`` without a victim refresh -- is checked at every step of every
sequence.

With ``rows=4, length=10`` that is 4^10 = ~1M engine steps: seconds of
work for a complete proof over the bounded domain, catching any
corner case sampling could miss (and, historically in this repository's
development, the exact domain where the overflow-bit equivalence edge
was found).

Also provided: exhaustive *adversary search* -- find the sequence that
maximizes undetected accumulation, confirming the analytic worst case
(``T - 1`` per window, ``2(T-1)`` across a reset) is truly maximal.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass

from ..core.config import GrapheneConfig
from ..core.graphene import GrapheneEngine
from ..dram.timing import DDR4_2400

__all__ = [
    "MiniConfig",
    "verify_theorem_exhaustively",
    "max_undetected_accumulation",
]


@dataclass(frozen=True)
class MiniConfig:
    """A miniature, directly-specified Graphene instance.

    Bypasses the timing-based derivation so the enumeration domain
    stays tiny: the table capacity and threshold are given explicitly
    and wrapped into a :class:`GrapheneConfig`-compatible engine.
    """

    rows: int = 4
    threshold: int = 3
    capacity: int = 2

    def build_engine(self) -> GrapheneEngine:
        config = GrapheneConfig(
            hammer_threshold=max(8, self.threshold * 6),
            rows_per_bank=max(2, self.rows),
            reset_window_divisor=2,
            timings=DDR4_2400,
        )
        engine = GrapheneEngine(config)
        # Override the derived sizing with the miniature one.
        engine.threshold = self.threshold
        engine.table = type(engine.table)(self.capacity)
        return engine


def verify_theorem_exhaustively(
    mini: MiniConfig = MiniConfig(), length: int = 8
) -> int:
    """Check the theorem on *every* ACT sequence up to ``length``.

    Returns the number of sequences verified.  Raises AssertionError
    with the offending sequence on any violation.

    Note: sequences of every length <= ``length`` are covered implicitly
    because the check runs after every prefix step.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    # The theorem assumes Inequality 1: capacity > W/T - 1 with W the
    # stream length.  Below that sizing it genuinely fails (a row can
    # sit in the spillover count to T actual ACTs unseen) -- which the
    # enumerator will demonstrate if asked; see the dedicated test.
    max_length = mini.threshold * (mini.capacity + 1) - 1
    if length > max_length:
        raise ValueError(
            f"length {length} exceeds the Inequality-1 domain "
            f"(T x (N+1) - 1 = {max_length}) for this mini config; "
            "the theorem does not hold for undersized tables"
        )
    verified = 0
    interval = 50.0
    for sequence in itertools.product(range(mini.rows), repeat=length):
        engine = mini.build_engine()
        actual: Counter = Counter()
        triggers: Counter = Counter()
        for step, row in enumerate(sequence):
            requests = engine.on_activate(row, step * interval)
            actual[row] += 1
            for request in requests:
                triggers[request.aggressor_row] += 1
            budget = mini.threshold * (triggers[row] + 1)
            assert actual[row] < budget, (
                f"theorem violated by sequence {sequence[: step + 1]}: "
                f"row {row} reached {actual[row]} actual ACTs with only "
                f"{triggers[row]} refreshes (T={mini.threshold})"
            )
        verified += 1
    return verified


def max_undetected_accumulation(
    mini: MiniConfig = MiniConfig(), length: int = 8
) -> tuple[int, tuple[int, ...]]:
    """Exhaustive adversary: the most ACTs any row lands with no refresh.

    Returns ``(max_count, witness_sequence)``.  The analytic bound is
    ``T - 1`` within a single window; the search confirms no sequence
    beats it (and shows one that achieves it).
    """
    best = 0
    witness: tuple[int, ...] = ()
    interval = 50.0
    for sequence in itertools.product(range(mini.rows), repeat=length):
        engine = mini.build_engine()
        actual: Counter = Counter()
        refreshed_rows: set[int] = set()
        for step, row in enumerate(sequence):
            requests = engine.on_activate(row, step * interval)
            actual[row] += 1
            for request in requests:
                refreshed_rows.add(request.aggressor_row)
        for row, count in actual.items():
            if row not in refreshed_rows and count > best:
                best = count
                witness = sequence
    return best, witness
