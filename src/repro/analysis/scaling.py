"""Scheme configurations across Row Hammer thresholds (paper Section V-C).

Fig. 9 sweeps ``T_RH`` from 50K down to 1.56K and re-configures every
scheme at each point:

* **PARA** -- the near-complete-protection probability re-derived per
  threshold (0.00145 ... 0.05034);
* **CBT** -- counters double and levels grow by one per halving
  (CBT-128/10 ... CBT-4096/15);
* **TWiCe** -- table sized per its own analysis (entries ~ 1/T_RH);
* **Graphene** -- ``T``, ``N_entry`` and bit widths re-derived.

:func:`scheme_factories` builds the per-bank engine factories for one
threshold so the Fig. 8 harness can be re-run across the sweep; the
area side of Fig. 9(a) lives in :mod:`repro.core.area`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import GrapheneConfig
from ..dram.timing import DDR4_2400, DramTimings
from ..mitigations.abacus import abacus_factory
from ..mitigations.base import MitigationFactory
from ..mitigations.cbt import cbt_factory
from ..mitigations.comet import comet_factory
from ..mitigations.graphene import graphene_factory
from ..mitigations.para import PAPER_PARA_P_SERIES, para_factory
from ..mitigations.twice import twice_factory
from .security import derive_para_probability
from ..core.area import cbt_counters_for_threshold

__all__ = [
    "PAPER_THRESHOLD_SWEEP",
    "para_probability_for",
    "SweepPoint",
    "sweep_point",
    "scheme_factories",
]

#: The Fig. 9 x-axis: T_RH reduced by factors of 2 from 50K.
PAPER_THRESHOLD_SWEEP: tuple[int, ...] = (
    50_000, 25_000, 12_500, 6_250, 3_125, 1_562,
)


def para_probability_for(
    hammer_threshold: int, timings: DramTimings = DDR4_2400
) -> float:
    """PARA's p at a threshold: the paper's value when listed, else derived.

    The derived values agree with the paper's to within ~0.5% (checked
    in the test suite); using the published constants where available
    keeps reports directly comparable.
    """
    if hammer_threshold in PAPER_PARA_P_SERIES:
        return PAPER_PARA_P_SERIES[hammer_threshold]
    return derive_para_probability(hammer_threshold, timings=timings)


@dataclass(frozen=True)
class SweepPoint:
    """All scheme configurations at one Row Hammer threshold."""

    hammer_threshold: int
    para_p: float
    cbt_counters: int
    cbt_levels: int
    graphene_config: GrapheneConfig


def sweep_point(
    hammer_threshold: int,
    timings: DramTimings = DDR4_2400,
    reset_window_divisor: int = 2,
) -> SweepPoint:
    """Resolve every scheme's configuration at one threshold."""
    counters, levels = cbt_counters_for_threshold(hammer_threshold)
    return SweepPoint(
        hammer_threshold=hammer_threshold,
        para_p=para_probability_for(hammer_threshold, timings),
        cbt_counters=counters,
        cbt_levels=levels,
        graphene_config=GrapheneConfig(
            hammer_threshold=hammer_threshold,
            timings=timings,
            reset_window_divisor=reset_window_divisor,
        ),
    )


def scheme_factories(
    hammer_threshold: int,
    timings: DramTimings = DDR4_2400,
    reset_window_divisor: int = 2,
    seed: int | None = 1234,
) -> dict[str, MitigationFactory]:
    """Per-bank engine factories for every compared scheme.

    Returns a dict keyed by the labels used throughout the figures:
    ``para``, ``cbt``, ``twice``, ``graphene``, plus the later
    deterministic siblings ``comet`` and ``abacus``.
    """
    point = sweep_point(hammer_threshold, timings, reset_window_divisor)
    return {
        "para": para_factory(point.para_p, seed=seed),
        "cbt": cbt_factory(
            hammer_threshold,
            num_counters=point.cbt_counters,
            num_levels=point.cbt_levels,
            timings=timings,
        ),
        "twice": twice_factory(hammer_threshold, timings=timings),
        "graphene": graphene_factory(point.graphene_config),
        "comet": comet_factory(
            hammer_threshold, timings=timings,
            reset_window_divisor=reset_window_divisor,
        ),
        "abacus": abacus_factory(
            hammer_threshold, timings=timings,
            reset_window_divisor=reset_window_divisor,
        ),
    }
