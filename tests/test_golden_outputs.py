"""Golden-output tests: the deterministic experiment printouts.

The static experiments (pure derivations, no stochastic traces) must
print byte-stable headline lines.  These goldens pin the user-facing
numbers to the paper's anchors, so a regression in any derivation
surfaces as a readable text diff rather than a deep numeric assert.
"""

from __future__ import annotations

import pytest

from repro.experiments import load


def output_of(name: str, capsys) -> str:
    load(name).main()
    return capsys.readouterr().out


class TestGoldenLines:
    def test_table1_golden(self, capsys):
        out = output_of("table1", capsys)
        assert "W = 1,358,404 ACTs" in out
        assert "7.8 us" in out
        assert "350 ns" in out

    def test_table2_golden(self, capsys):
        out = output_of("table2", capsys)
        for anchor in ("1,358,404", "12,500", "108",
                       "8,333", "81", "31", "2,511"):
            assert anchor in out, anchor

    def test_table4_golden(self, capsys):
        out = output_of("table4", capsys)
        for anchor in ("3,824", "36,416", "2,511", "14.5x"):
            assert anchor in out, anchor

    def test_table5_golden(self, capsys):
        out = output_of("table5", capsys)
        assert "0.032%" in out
        assert "0.373%" in out

    def test_fig3_golden(self, capsys):
        out = output_of("fig3", capsys)
        assert "24,998" in out          # 2(T-1)
        assert "49,996" in out          # 4(T-1)
        assert "margin: 4" in out

    def test_fig6_golden(self, capsys):
        out = output_of("fig6", capsys)
        assert "0.33%" in out           # the k=1 bound
        assert "81 entries" in out

    def test_non_adjacent_golden(self, capsys):
        out = output_of("non_adjacent", capsys)
        assert "1.645" in out           # pi^2/6
        assert "+-2 Graphene -> 0 flips" in out


class TestDeterminism:
    @pytest.mark.parametrize("name", ["table1", "table2", "table4",
                                      "table5", "fig6"])
    def test_output_is_stable(self, name, capsys):
        first = output_of(name, capsys)
        second = output_of(name, capsys)
        assert first == second
