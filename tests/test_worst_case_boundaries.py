"""Worst-case analysis and reset-window boundary semantics.

Covers :mod:`repro.analysis.worst_case` (the Fig. 6 trade-off curves
and the simulated-vs-analytic refresh bound) and the engine's behavior
exactly *at* ``tREFW / k`` multiples -- the edge the straddle fuzz
generator attacks.  Runs at the verification scale
(:data:`repro.verify.generators.VERIFY_TIMINGS`) so whole windows fit
in a few hundred ACTs.
"""

from __future__ import annotations

import pytest

from repro.analysis.worst_case import (
    ResetWindowPoint,
    reset_window_tradeoff,
    simulated_worst_case,
)
from repro.core.config import GrapheneConfig
from repro.core.graphene import GrapheneEngine
from repro.core.guarantees import InstrumentedGrapheneEngine
from repro.verify.generators import VERIFY_TIMINGS


def scaled_config(k: int = 2) -> GrapheneConfig:
    return GrapheneConfig(
        hammer_threshold=144,
        timings=VERIFY_TIMINGS,
        rows_per_bank=512,
        reset_window_divisor=k,
    )


class TestResetWindowTradeoff:
    def test_one_point_per_k_with_consistent_derivation(self):
        points = reset_window_tradeoff(k_values=range(1, 11))
        assert [p.k for p in points] == list(range(1, 11))
        for point in points:
            config = GrapheneConfig(reset_window_divisor=point.k)
            assert point.num_entries == config.num_entries
            assert point.tracking_threshold == config.tracking_threshold
            assert point.worst_case_rows_per_trefw == (
                config.max_victim_rows_refreshed_per_trefw()
            )
            assert point.relative_additional_refreshes == pytest.approx(
                point.worst_case_rows_per_trefw / 65536
            )

    def test_entries_shrink_and_saturate_while_refreshes_grow(self):
        """The Fig. 6 shape: N_entry(k) is non-increasing (the (k+1)/k
        factor converges), worst-case refreshes keep growing with k
        (T shrinks linearly in k+1)."""
        points = reset_window_tradeoff(k_values=range(1, 11))
        entries = [p.num_entries for p in points]
        refreshes = [p.worst_case_rows_per_trefw for p in points]
        assert all(a >= b for a, b in zip(entries, entries[1:]))
        assert all(a < b for a, b in zip(refreshes, refreshes[1:]))

    def test_fig6_headline_numbers(self):
        """k=2 at the paper's parameters: the ~0.34% bound."""
        (point,) = reset_window_tradeoff(k_values=[2])
        assert isinstance(point, ResetWindowPoint)
        assert 0.002 < point.relative_additional_refreshes < 0.005


class TestSimulatedWorstCase:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_simulated_refreshes_never_exceed_bound(self, k):
        refreshed, bound = simulated_worst_case(scaled_config(k), windows=1.0)
        assert refreshed <= bound
        assert refreshed > 0, "worst-case pattern must trigger refreshes"

    @pytest.mark.parametrize("windows", [0.5, 1.0, 2.25])
    def test_bound_scales_with_duration(self, windows):
        refreshed, bound = simulated_worst_case(
            scaled_config(2), windows=windows
        )
        assert refreshed <= bound
        assert bound == round(
            windows * scaled_config(2).max_victim_rows_refreshed_per_trefw()
        )


class TestWindowBoundarySemantics:
    """ACTs landing exactly at t = m * (tREFW/k): the reset edge."""

    def test_act_exactly_at_boundary_belongs_to_the_new_window(self):
        config = scaled_config(2)
        engine = GrapheneEngine(config)
        window = config.reset_window_ns
        threshold = config.tracking_threshold
        row = 7
        # T-1 ACTs just before the boundary: one short of a trigger.
        for index in range(threshold - 1):
            start = window - (threshold - 1 - index)
            assert engine.on_activate(row, start) == []
        # The ACT exactly at m*window resets the table first, so it is
        # ACT #1 of the new window -- no trigger, fresh count.
        assert engine.on_activate(row, window) == []
        assert engine.table.estimated_count(row) == 1
        # T-1 more inside the new window completes a full T there.
        requests = []
        for index in range(1, threshold):
            requests.extend(engine.on_activate(row, window + index))
        assert sum(len(r.victim_rows) > 0 for r in requests) == 1

    @pytest.mark.parametrize("multiple", [1, 2, 3])
    def test_every_boundary_multiple_resets(self, multiple):
        config = scaled_config(2)
        engine = GrapheneEngine(config)
        window = config.reset_window_ns
        row = 11
        engine.on_activate(row, multiple * window - 1.0)
        assert engine.table.estimated_count(row) == 1
        engine.on_activate(row, multiple * window)
        # The pre-boundary count was wiped, not carried.
        assert engine.table.estimated_count(row) == 1
        assert engine.current_window == multiple

    def test_straddling_run_cannot_trigger_but_stays_within_guarantee(self):
        """T ACTs split across a boundary trigger nothing (each window
        sees < T), yet the instrumented engine confirms the guarantee
        still holds -- the k+1-window victim budget absorbs straddles
        by design."""
        config = scaled_config(2)
        engine = InstrumentedGrapheneEngine(config, check_every=1)
        window = config.reset_window_ns
        threshold = config.tracking_threshold
        row = 9
        half = threshold // 2
        requests = []
        for index in range(half):
            requests.extend(
                engine.on_activate(row, window - half + index)
            )
        for index in range(threshold - half):
            requests.extend(engine.on_activate(row, window + index))
        assert requests == []

    def test_instrumented_engine_survives_boundary_hammering(self):
        """Dense alternating hammering across several boundaries with
        per-ACT Lemma/Theorem checks enabled."""
        config = scaled_config(2)
        engine = InstrumentedGrapheneEngine(config, check_every=1)
        window = config.reset_window_ns
        threshold = config.tracking_threshold
        time_ns = window - 3 * threshold
        for boundary in range(1, 4):
            target = boundary * window
            while time_ns < target + 3 * threshold:
                engine.on_activate(3, time_ns)
                engine.on_activate(4, time_ns + 0.25)
                time_ns += 1.0
            time_ns = (boundary + 1) * window - 3 * threshold
