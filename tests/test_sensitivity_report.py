"""Tests for the sensitivity analysis and the report generator."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    TECHNOLOGY_PRESETS,
    configuration_for_preset,
    row_count_independence,
    sweep_parameter,
)


class TestPresets:
    def test_all_presets_derive(self):
        for name in TECHNOLOGY_PRESETS:
            config = configuration_for_preset(name)
            assert config.num_entries >= 1
            assert config.tracking_threshold >= 1

    def test_ddr4_is_the_paper_point(self):
        config = configuration_for_preset("ddr4")
        assert config.num_entries == 81
        assert config.table_bits_per_bank == 2_511

    def test_ddr3_needs_far_fewer_entries(self):
        ddr3 = configuration_for_preset("ddr3")
        ddr4 = configuration_for_preset("ddr4")
        # 139K threshold and slower tRC both shrink the table.
        assert ddr3.num_entries < ddr4.num_entries / 2

    def test_future_point_still_practical(self):
        """Even at a 5K threshold with 128K-row banks, the table stays
        a few KB per bank -- the paper's scalability claim."""
        config = configuration_for_preset("future")
        assert config.table_bits_per_bank < 30_000


class TestSweeps:
    def test_trc_sweep_moves_w_inversely(self):
        rows = sweep_parameter("trc", [30.0, 45.0, 60.0])
        ws = [row["W"] for row in rows]
        assert ws == sorted(ws, reverse=True)
        # N_entry follows W.
        entries = [row["N_entry"] for row in rows]
        assert entries == sorted(entries, reverse=True)

    def test_trefw_sweep(self):
        rows = sweep_parameter("trefw", [32e6, 64e6])
        # Halving tREFW (high-temperature mode) halves W per window.
        assert rows[0]["W"] == pytest.approx(rows[1]["W"] / 2, rel=0.01)

    def test_threshold_sweep_linear(self):
        rows = sweep_parameter(
            "hammer_threshold", [50_000, 25_000, 12_500]
        )
        entries = [row["N_entry"] for row in rows]
        assert entries[1] == pytest.approx(2 * entries[0], rel=0.05)
        assert entries[2] == pytest.approx(4 * entries[0], rel=0.05)

    def test_unknown_parameter(self):
        with pytest.raises(ValueError):
            sweep_parameter("voltage", [1.2])


class TestRowCountIndependence:
    def test_nentry_constant_across_bank_sizes(self):
        table = row_count_independence()
        entries = {n for n, _bits in table.values()}
        assert len(entries) == 1  # N_entry independent of row count

    def test_entry_bits_grow_one_per_doubling(self):
        table = row_count_independence([16384, 32768, 65536])
        bits = [table[r][1] for r in (16384, 32768, 65536)]
        assert bits[1] == bits[0] + 1
        assert bits[2] == bits[1] + 1


class TestReportGenerator:
    def test_fast_report_contains_every_section(self):
        from repro.experiments import EXPERIMENT_NAMES
        from repro.experiments.report import generate_report

        report = generate_report(fast=True)
        for name in EXPERIMENT_NAMES:
            assert f"## {name}" in report
        # Anchor numbers survive into the report.
        assert "12,500" in report
        assert "2,511" in report

    def test_report_cli_writes_file(self, tmp_path, capsys):
        from repro.experiments.report import main

        out = str(tmp_path / "report.md")
        main(["--out", out])
        assert "wrote" in capsys.readouterr().out
        text = open(out).read()
        assert text.startswith("# Graphene reproduction report")
