"""Differential fuzzing: long randomized campaigns across the stack.

Each campaign draws a random attack composition (mixture of hammer
styles, intensities, and phases), runs it against the scaled system
with and without protection, and checks the global contract:

* unprotected + sufficiently concentrated traffic  => flips happen;
* Graphene (and TWiCe)                             => zero flips, ever;
* the logical engine and the CAM-level hardware table agree on every
  trigger along the way (within the Inequality-1 domain).

These are seeded (not time-dependent), heavier than unit tests, and
act as the repository's long-haul regression net.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import GrapheneConfig
from repro.core.graphene import GrapheneEngine
from repro.core.hardware_table import HardwareGrapheneTable
from repro.dram.faults import HammerFaultModel
from repro.mitigations import graphene_factory, twice_factory
from repro.sim import simulate
from repro.workloads.trace import ActEvent

TRH = 1_200
ROWS = 2048


def random_attack_events(rng: random.Random, duration_ns: float):
    """A random mixture of hammer styles on a few focus rows."""
    focus = [rng.randrange(8, ROWS - 8) for _ in range(rng.randint(1, 5))]
    style = rng.choice(["single", "double", "rotate", "noisy"])
    time_ns = 0.0
    interval = 45.0
    index = 0
    while time_ns < duration_ns:
        if style == "single":
            row = focus[0]
        elif style == "double":
            row = focus[0] + (1 if index % 2 else -1)
        elif style == "rotate":
            row = focus[index % len(focus)]
        else:  # noisy
            row = (
                focus[0]
                if index % 3 else rng.randrange(ROWS)
            )
        yield ActEvent(time_ns, 0, row)
        time_ns += interval
        # Random micro-pauses (phase shifts).
        if rng.random() < 0.001:
            time_ns += rng.uniform(1e4, 2e5)
        index += 1


@pytest.mark.parametrize("seed", range(6))
def test_protected_campaigns_never_flip(seed):
    rng = random.Random(seed)
    duration = 6e6
    config = GrapheneConfig(
        hammer_threshold=TRH, rows_per_bank=ROWS, reset_window_divisor=2
    )
    for factory, name in (
        (graphene_factory(config), "graphene"),
        (twice_factory(TRH), "twice"),
    ):
        result = simulate(
            random_attack_events(random.Random(seed), duration),
            factory, name, f"fuzz-{seed}",
            rows_per_bank=ROWS, hammer_threshold=TRH,
            duration_ns=duration,
        )
        assert result.bit_flips == 0, (name, seed)


@pytest.mark.parametrize("seed", range(4))
def test_logical_and_hardware_tables_agree_under_fuzz(seed):
    """Random streams within the sizing domain: identical triggers."""
    rng = random.Random(100 + seed)
    capacity, threshold = 6, 40
    budget = threshold * (capacity + 1) - 1
    engine_config = GrapheneConfig(
        hammer_threshold=8 * threshold, rows_per_bank=64,
        reset_window_divisor=2,
    )
    engine = GrapheneEngine(engine_config)
    engine.threshold = threshold
    engine.table = type(engine.table)(capacity)
    hardware = HardwareGrapheneTable(capacity, threshold, count_bits=8)
    for step in range(budget):
        row = rng.choice([5, 5, 9, 13, rng.randrange(64)])
        requests = engine.on_activate(row, step * 50.0)
        outcome = hardware.process_activation(row)
        assert bool(requests) == outcome.triggered, (seed, step)


@pytest.mark.parametrize("seed", range(3))
def test_unprotected_concentrated_campaigns_flip(seed):
    """Control arm: the same campaigns do flip without protection when
    traffic concentrates (single/double styles)."""
    from repro.mitigations import no_mitigation_factory

    rng = random.Random(seed)
    # Force a concentrated style by rejecting diffuse draws.
    while rng.choice(["single", "double", "rotate", "noisy"]) not in (
        "single", "double"
    ):
        pass
    events = [
        ActEvent(i * 45.0, 0, 1000 + (1 if i % 2 else -1))
        for i in range(3 * TRH)
    ]
    result = simulate(
        iter(events), no_mitigation_factory(), "none", "control",
        rows_per_bank=ROWS, hammer_threshold=TRH,
        duration_ns=3 * TRH * 45.0,
    )
    assert result.bit_flips > 0
