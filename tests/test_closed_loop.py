"""Tests for the closed-loop multicore performance model."""

from __future__ import annotations

import pytest

from repro.core.config import GrapheneConfig
from repro.mitigations import (
    graphene_factory,
    increased_refresh_rate_factory,
    no_mitigation_factory,
)
from repro.sim.closed_loop import (
    CoreProfile,
    core_profile_for,
    run_closed_loop,
    weighted_speedup_reduction,
)


def tiny_profile(think: float = 100.0) -> CoreProfile:
    return CoreProfile(
        name="tiny",
        think_time_ns=think,
        row_hit_fraction=0.4,
        working_set_rows=2048,
        zipf_exponent=0.6,
    )


class TestProfileDerivation:
    def test_derives_from_workload(self):
        profile = core_profile_for("mcf")
        assert profile.name == "mcf"
        assert profile.think_time_ns > 0
        assert 0.0 <= profile.row_hit_fraction < 1.0

    def test_act_rate_calibration(self):
        """The closed loop must land near the workload's per-bank rate."""
        from repro.workloads.spec_like import REALISTIC_PROFILES

        profile = core_profile_for("omnetpp")
        result = run_closed_loop(
            profile, no_mitigation_factory(), "none", duration_ns=4e6,
            seed=3,
        )
        measured = result.acts / result.banks / (result.duration_ns / 1e9)
        target = REALISTIC_PROFILES["omnetpp"].acts_per_second_per_bank
        assert measured == pytest.approx(target, rel=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreProfile("x", -1.0, 0.5, 100, 0.5)
        with pytest.raises(ValueError):
            CoreProfile("x", 10.0, 1.0, 100, 0.5)


class TestClosedLoopMechanics:
    def test_all_cores_progress(self):
        result = run_closed_loop(
            tiny_profile(), no_mitigation_factory(), "none",
            duration_ns=2e6, cores=4, banks=4, rows_per_bank=8192,
            seed=1,
        )
        assert all(count > 0 for count in result.requests_completed)
        assert result.total_requests == sum(result.requests_completed)

    def test_row_hits_do_not_activate(self):
        """Only misses issue ACTs; the hit rate shows up in the split."""
        result = run_closed_loop(
            tiny_profile(), no_mitigation_factory(), "none",
            duration_ns=2e6, cores=4, banks=4, rows_per_bank=8192,
            seed=1,
        )
        assert result.row_hits > 0
        assert result.acts > 0
        assert result.row_hit_rate == pytest.approx(
            result.row_hits / (result.row_hits + result.acts)
        )

    def test_think_time_throttles_throughput(self):
        fast = run_closed_loop(
            tiny_profile(think=20.0), no_mitigation_factory(), "none",
            duration_ns=1e6, cores=2, banks=4, rows_per_bank=8192, seed=2,
        )
        slow = run_closed_loop(
            tiny_profile(think=400.0), no_mitigation_factory(), "none",
            duration_ns=1e6, cores=2, banks=4, rows_per_bank=8192, seed=2,
        )
        assert fast.total_requests > 2 * slow.total_requests

    def test_reproducible(self):
        a = run_closed_loop(
            tiny_profile(), no_mitigation_factory(), "none",
            duration_ns=1e6, cores=2, banks=2, rows_per_bank=4096, seed=7,
        )
        b = run_closed_loop(
            tiny_profile(), no_mitigation_factory(), "none",
            duration_ns=1e6, cores=2, banks=2, rows_per_bank=4096, seed=7,
        )
        assert a.requests_completed == b.requests_completed

    def test_validation(self):
        with pytest.raises(ValueError):
            run_closed_loop(
                tiny_profile(), no_mitigation_factory(), "none",
                duration_ns=1e5, cores=0,
            )


class TestWeightedSpeedup:
    def test_zero_reduction_for_silent_scheme(self):
        """Graphene issues no refreshes on benign traffic, so the
        closed-loop run is bit-identical to the baseline."""
        config = GrapheneConfig(
            hammer_threshold=50_000, rows_per_bank=8192,
            reset_window_divisor=2,
        )
        base = run_closed_loop(
            tiny_profile(), no_mitigation_factory(), "none",
            duration_ns=2e6, cores=4, banks=4, rows_per_bank=8192, seed=4,
        )
        protected = run_closed_loop(
            tiny_profile(), graphene_factory(config), "graphene",
            duration_ns=2e6, cores=4, banks=4, rows_per_bank=8192, seed=4,
        )
        assert protected.victim_rows_refreshed == 0
        assert weighted_speedup_reduction(protected, base) == 0.0

    def test_heavy_refresh_scheme_costs_throughput(self):
        """Doubling the refresh rate visibly slows the cores -- the
        permanent tax the paper criticizes (Section II-B)."""
        base = run_closed_loop(
            tiny_profile(think=20.0), no_mitigation_factory(), "none",
            duration_ns=4e6, cores=4, banks=2, rows_per_bank=65536, seed=4,
        )
        taxed = run_closed_loop(
            tiny_profile(think=20.0),
            increased_refresh_rate_factory(multiplier=8),
            "refresh-rate",
            duration_ns=4e6, cores=4, banks=2, rows_per_bank=65536, seed=4,
        )
        reduction = weighted_speedup_reduction(taxed, base)
        assert reduction > 0.005
        assert taxed.victim_rows_refreshed > 0

    def test_mismatched_runs_rejected(self):
        a = run_closed_loop(
            tiny_profile(), no_mitigation_factory(), "none",
            duration_ns=5e5, cores=2, banks=2, rows_per_bank=4096, seed=1,
        )
        b = run_closed_loop(
            tiny_profile(), no_mitigation_factory(), "none",
            duration_ns=5e5, cores=4, banks=2, rows_per_bank=4096, seed=1,
        )
        with pytest.raises(ValueError):
            weighted_speedup_reduction(a, b)
