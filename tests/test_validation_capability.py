"""Tests for trace validation and the capability-matrix experiment."""

from __future__ import annotations

import pytest

from repro.dram.timing import DDR4_2400
from repro.workloads.trace import ActEvent
from repro.workloads.validation import assert_valid, validate_trace


class TestTraceValidation:
    def test_clean_generated_trace_passes(self):
        from repro.workloads import synthetic_events, s3_rows

        events = list(
            synthetic_events(s3_rows(target=5), duration_ns=2e5)
        )
        report = validate_trace(events)
        assert report.ok, report.summary()
        assert report.min_bank_spacing_ns >= DDR4_2400.trc - 1e-6

    def test_unsorted_detected(self):
        events = [ActEvent(100.0, 0, 1), ActEvent(50.0, 0, 2)]
        report = validate_trace(events)
        assert not report.ok
        assert report.violations[0].kind == "unsorted"

    def test_trc_violation_detected(self):
        events = [ActEvent(0.0, 0, 1), ActEvent(10.0, 0, 2)]
        report = validate_trace(events)
        assert any(v.kind == "trc" for v in report.violations)

    def test_different_banks_may_act_closely(self):
        """tRC is per bank; cross-bank ACTs at tRRD-ish spacing are
        legal (until tFAW kicks in)."""
        events = [
            ActEvent(0.0, 0, 1), ActEvent(8.0, 1, 1),
            ActEvent(16.0, 2, 1), ActEvent(24.0, 3, 1),
        ]
        report = validate_trace(events)
        assert all(v.kind != "trc" for v in report.violations)

    def test_tfaw_violation_detected(self):
        # 5 ACTs to 5 banks within 20 ns: breaks the 30 ns tFAW.
        events = [ActEvent(i * 5.0, i, 1) for i in range(5)]
        report = validate_trace(events)
        assert any(v.kind == "tfaw" for v in report.violations)

    def test_row_range_detected(self):
        events = [ActEvent(0.0, 0, 70_000)]
        report = validate_trace(events, rows_per_bank=65536)
        assert report.violations[0].kind == "row-range"

    def test_assert_valid_raises(self):
        with pytest.raises(ValueError, match="INVALID"):
            assert_valid([ActEvent(0.0, 0, 1), ActEvent(1.0, 0, 2)])

    def test_violation_cap(self):
        events = [ActEvent(float(i), 0, 1) for i in range(100)]
        report = validate_trace(events, max_violations=5)
        assert len(report.violations) == 5
        assert not report.ok

    def test_realistic_profile_traces_are_valid(self):
        from repro.workloads import REALISTIC_PROFILES, profile_events

        events = profile_events(
            REALISTIC_PROFILES["mix-blend"], duration_ns=3e5, seed=2
        )
        # Single-bank generated traces honor tRC by construction; the
        # per-rank tFAW check does not apply to one bank at benign rates.
        report = validate_trace(events)
        assert report.ok, report.summary()


class TestCapabilityMatrix:
    def test_matrix_verdicts(self):
        from repro.experiments.capability_matrix import run

        data = run(hammer_threshold=2_000, duration_ns=4e6)
        # The control is compromised; every deterministic scheme clean.
        assert data["none"]["attack_flips"] > 0
        for scheme in ("graphene", "twice", "cbt", "cra"):
            assert data[scheme]["attack_flips"] == 0, scheme
            assert data[scheme]["attack_rows_refreshed"] > 0, scheme
        # Graphene/TWiCe cost nothing on the benign workload.
        assert data["graphene"]["benign_rows_refreshed"] == 0
        assert data["twice"]["benign_rows_refreshed"] == 0
        # The refresh-rate patch pays heavily and still loses.
        assert data["refresh-rate-x2"]["attack_flips"] > 0
        assert data["refresh-rate-x2"]["benign_energy_increase"] > 0.5
