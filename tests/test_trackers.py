"""Tests for the alternative frequent-elements trackers (Section VI)."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trackers import (
    CountMinSketch,
    LossyCountingTable,
    SpaceSavingTable,
    tracker_table_bits,
)


class TestSpaceSaving:
    def test_exact_until_full(self):
        table = SpaceSavingTable(4)
        for item, times in (("a", 3), ("b", 2)):
            for _ in range(times):
                table.observe(item)
        assert table.estimated_count("a") == 3
        assert table.guaranteed_count("a") == 3

    def test_replacement_inherits_minimum(self):
        table = SpaceSavingTable(2)
        for _ in range(5):
            table.observe("a")
        table.observe("b")
        result = table.observe("c")  # evicts b (count 1)
        assert result == 2
        assert "b" not in table
        assert table.guaranteed_count("c") == 1  # error recorded

    @given(
        st.lists(st.integers(min_value=0, max_value=25), max_size=600),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_overestimate_property(self, stream, capacity):
        """Estimated >= actual for tracked items; heavy hitters with
        count > W/capacity are always tracked."""
        table = SpaceSavingTable(capacity)
        actual: Counter = Counter()
        for item in stream:
            table.observe(item)
            actual[item] += 1
        for item, estimate in table.tracked().items():
            assert estimate >= actual[item]
        cutoff = table.observations / capacity
        for item, count in actual.items():
            if count > cutoff:
                assert item in table

    @given(st.lists(st.integers(min_value=0, max_value=12), max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_per_item_estimate_monotone(self, stream):
        """The safety property the tracker-backed engine relies on: a
        row's estimate never decreases across its tenures."""
        table = SpaceSavingTable(3)
        last_seen: dict[int, int] = {}
        for item in stream:
            estimate = table.observe(item)
            assert estimate >= last_seen.get(item, 0) + 1
            last_seen[item] = estimate

    def test_reset(self):
        table = SpaceSavingTable(2)
        table.observe("a")
        table.reset()
        assert len(table) == 0
        assert table.observations == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSavingTable(0)


class TestLossyCounting:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            LossyCountingTable(0.0)
        with pytest.raises(ValueError):
            LossyCountingTable(1.0)

    def test_frequent_item_survives_pruning(self):
        table = LossyCountingTable(epsilon=0.1)  # bucket width 10
        for i in range(100):
            table.observe("hot")
            if i % 3 == 0:
                table.observe(f"cold{i}")
        assert "hot" in table
        assert table.estimated_count("hot") >= 100

    def test_rare_items_pruned(self):
        table = LossyCountingTable(epsilon=0.1)
        table.observe("once")
        for i in range(50):
            table.observe(f"filler{i % 7}")
        assert "once" not in table

    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_overestimate_property(self, stream):
        table = LossyCountingTable(epsilon=0.05)
        actual: Counter = Counter()
        for item in stream:
            estimate = table.observe(item)
            actual[item] += 1
            assert estimate >= actual[item] or item not in table
        # Guarantee: true count > epsilon * W implies tracked.
        for item, count in actual.items():
            if count > 0.05 * len(stream):
                assert item in table


class TestCountMin:
    def test_never_underestimates(self):
        sketch = CountMinSketch(width=64, depth=4)
        actual: Counter = Counter()
        for i in range(2_000):
            item = i % 37
            sketch.observe(item)
            actual[item] += 1
        for item, count in actual.items():
            assert sketch.estimated_count(item) >= count

    def test_exact_when_sparse(self):
        sketch = CountMinSketch(width=1024, depth=4)
        for _ in range(50):
            sketch.observe("x")
        assert sketch.estimated_count("x") == 50

    def test_collisions_inflate_small_width(self):
        sketch = CountMinSketch(width=2, depth=1)
        for i in range(100):
            sketch.observe(i)
        # With 2 counters and 100 distinct items, estimates are heavily
        # inflated but never below the true count (1).
        assert sketch.estimated_count(0) >= 1
        assert sketch.estimated_count(0) > 10

    def test_reset(self):
        sketch = CountMinSketch(width=16, depth=2)
        sketch.observe("x")
        sketch.reset()
        assert sketch.estimated_count("x") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)


class TestTableBits:
    def test_space_saving_bits(self):
        bits = tracker_table_bits(SpaceSavingTable(81), 16, 14)
        assert bits == 81 * (16 + 28)

    def test_count_min_bits(self):
        sketch = CountMinSketch(width=128, depth=4)
        assert tracker_table_bits(sketch, 16, 14) == 128 * 4 * 32

    def test_lossy_counting_bits_positive(self):
        table = LossyCountingTable(epsilon=0.01)
        assert tracker_table_bits(table, 16, 14) > 0

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            tracker_table_bits(object(), 16, 14)
